#!/usr/bin/env python3
"""Design-space study: replacing an 8x8 crossbar with a multiplexed bus.

Regenerates the Section 7 trade-off narrative: a designer who wants
crossbar-class bandwidth without n*m crosspoints scans the (m, r) plane
of the single-bus system, with and without memory buffers, and reads off
the cheapest equivalent designs.  Also reproduces the multiple-bus
comparison ("four buses are needed").

Run:  python examples/design_space.py
"""

from repro import Priority, SystemConfig, simulate
from repro.analysis.tradeoffs import crossbar_target, find_crossbar_equivalent
from repro.models import minimum_buses_matching_rate

CYCLES = 60_000
PROCESSORS = 8
CROSSBAR_SIZE = 8


def scan_memory_counts() -> None:
    target = crossbar_target(CROSSBAR_SIZE, CROSSBAR_SIZE)
    print(f"8x8 crossbar target EBW: {target:.3f}")
    print()
    print("m    r=4      r=8      r=12   (unbuffered single-bus EBW)")
    for m in (8, 10, 12, 14, 16):
        row = [f"{m:<4}"]
        for r in (4, 8, 12):
            config = SystemConfig(
                PROCESSORS, m, r, priority=Priority.PROCESSORS
            )
            ebw = simulate(config, cycles=CYCLES, seed=9).ebw
            marker = "*" if ebw >= target else " "
            row.append(f"{ebw:6.3f}{marker} ")
        print("  ".join(row))
    print("(* = reaches the crossbar target)")


def cheapest_equivalent() -> None:
    print()
    result = find_crossbar_equivalent(
        processors=PROCESSORS,
        crossbar_size=CROSSBAR_SIZE,
        memory_options=[10, 12, 14, 16],
        memory_cycle_ratio=8,
        cycles=CYCLES,
        seed=9,
    )
    if result.found:
        print(
            f"cheapest unbuffered equivalent at r=8: m={result.config.memories} "
            f"(EBW {result.achieved_ebw:.3f} vs target {result.target_ebw:.3f})"
        )
    degraded = find_crossbar_equivalent(
        processors=PROCESSORS,
        crossbar_size=CROSSBAR_SIZE,
        memory_options=[10],
        memory_cycle_ratio=8,
        tolerance=0.05,
        cycles=CYCLES,
        seed=9,
    )
    if degraded.found:
        print(
            "with 5% tolerance (the paper's note): m=10 suffices "
            f"(EBW {degraded.achieved_ebw:.3f})"
        )


def buffered_design() -> None:
    print()
    target = crossbar_target(16, 16)
    config = SystemConfig(
        16, 16, 18, priority=Priority.PROCESSORS, buffered=True
    )
    ebw = simulate(config, cycles=CYCLES, seed=9).ebw
    print(
        "Section 7: 'a buffered single-bus system with r=18 performs like "
        "a 16x16 crossbar'"
    )
    print(f"  buffered 16x16, r=18 : EBW {ebw:.3f}")
    print(f"  16x16 crossbar       : EBW {target:.3f}")


def multiple_bus_comparison() -> None:
    print()
    crossbar_rate = crossbar_target(CROSSBAR_SIZE, CROSSBAR_SIZE) / 10.0
    buses = minimum_buses_matching_rate(
        processors=PROCESSORS,
        modules=10,
        memory_cycle_ratio=8,
        target_requests_per_bus_cycle=crossbar_rate,
    )
    print(
        "multiple-bus network (ref [5]) matching the same target with "
        f"m=10: {buses} buses needed (the paper's Section 7 figure: four)"
    )


def sensitivity_at_design_point() -> None:
    print()
    print("sensitivity around the chosen design (m=14, r=8):")
    from repro.analysis import sensitivity_analysis

    base = SystemConfig(PROCESSORS, 14, 8, priority=Priority.PROCESSORS)
    report = sensitivity_analysis(base, cycles=CYCLES, seed=9)
    print(report.summary())


def main() -> None:
    scan_memory_counts()
    cheapest_equivalent()
    buffered_design()
    multiple_bus_comparison()
    sensitivity_at_design_point()


if __name__ == "__main__":
    main()
