#!/usr/bin/env python3
"""Section 6 study: what one buffer per memory module buys, and why the
exponential (product-form) shortcut misprices it.

Three acts:

1. sweep r for an 8x8 system with and without buffers (the Figure 5
   story): buffering recovers the interference lost to the "only idle
   modules may be addressed" rule;
2. vary the buffer depth (library extension - the paper fixes depth 1);
3. compare the constant-service machine against the exponential
   characterisation (MVA, geometric-service machine) and measure the
   pessimism the paper reports in Section 6.

Run:  python examples/buffered_memory.py
"""

from repro import Priority, SystemConfig, simulate
from repro.bus import MultiplexedBusSystem
from repro.models import crossbar_exact_ebw
from repro.queueing import product_form_ebw

CYCLES = 60_000


def buffering_sweep() -> None:
    print("r     unbuffered  buffered   crossbar  (8x8, p=1)")
    crossbar = crossbar_exact_ebw(SystemConfig(8, 8, 1)).ebw
    for r in (2, 4, 6, 8, 10, 12, 16, 24):
        base = SystemConfig(8, 8, r, priority=Priority.PROCESSORS)
        plain = simulate(base, cycles=CYCLES, seed=21).ebw
        buffered = simulate(base.with_buffers(), cycles=CYCLES, seed=21).ebw
        beats = "  <- beats crossbar" if buffered > crossbar else ""
        print(
            f"{r:<5} {plain:9.3f} {buffered:9.3f} {crossbar:9.3f}{beats}"
        )
    print()
    print(
        "note the Section 6 shape: the buffered curve peaks above the "
        "crossbar, then decays toward it as r grows."
    )


def depth_sweep() -> None:
    print()
    print("buffer depth sweep (8x8, r=10) - extension beyond the paper:")
    base = SystemConfig(8, 8, 10, priority=Priority.PROCESSORS)
    unbuffered = simulate(base, cycles=CYCLES, seed=22).ebw
    print(f"  depth 0 (paper Section 2): EBW {unbuffered:.3f}")
    for depth in (1, 2, 4, 8):
        ebw = simulate(base.with_buffers(depth), cycles=CYCLES, seed=22).ebw
        print(f"  depth {depth}                  : EBW {ebw:.3f}")
    print("  (depth 1 captures nearly the whole gain - the paper's design)")


def product_form_comparison() -> None:
    print()
    print("constant vs exponential service characterisation (Section 6):")
    print("m  r   machine  geom-machine  MVA     EBW-pess  delay-disc")
    for m, r in [(4, 8), (6, 8), (8, 8), (8, 12), (16, 12)]:
        config = SystemConfig(
            8, m, r, priority=Priority.PROCESSORS, buffered=True
        )
        machine = MultiplexedBusSystem(config, seed=23).run(CYCLES).ebw
        geometric = (
            MultiplexedBusSystem(config, seed=23, geometric_access_times=True)
            .run(CYCLES)
            .ebw
        )
        mva = product_form_ebw(config)
        exponential = min(geometric, mva)
        pessimism = 100 * (machine - exponential) / machine
        cycle = r + 2
        delay_machine = 8 * cycle / machine - cycle
        delay_exponential = 8 * cycle / exponential - cycle
        delay_disc = 100 * (delay_exponential - delay_machine) / delay_machine
        print(
            f"{m:<2} {r:<4} {machine:7.3f} {geometric:10.3f} {mva:8.3f}"
            f" {pessimism:8.1f}% {delay_disc:9.1f}%"
        )
    print()
    print(
        "the exponential side is pessimistic everywhere; on the queueing-"
        "delay metric the discrepancy exceeds the paper's 25% figure."
    )


def main() -> None:
    buffering_sweep()
    depth_sweep()
    product_form_comparison()


if __name__ == "__main__":
    main()
