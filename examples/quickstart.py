#!/usr/bin/env python3
"""Quickstart: simulate one multiplexed single-bus system and read the report.

This is the five-minute tour of the library: configure the machine of the
paper's Figure 1, simulate it cycle-accurately, compare with the Section 4
analytical model and with a crossbar of the same size.

Run:  python examples/quickstart.py
"""

import os

from repro import Priority, SystemConfig, simulate
from repro.models import crossbar_exact_ebw, processor_priority_ebw

# Overridable so smoke tests can run the full workflow quickly.
CYCLES = int(os.environ.get("REPRO_QUICKSTART_CYCLES", "100000"))


def main() -> None:
    # The paper's favourite running example: 8 processors, 16 memory
    # modules, memory cycle 8 bus cycles, priority to processors (g').
    config = SystemConfig(
        processors=8,
        memories=16,
        memory_cycle_ratio=8,
        priority=Priority.PROCESSORS,
    )

    print("== cycle-accurate simulation ==")
    result = simulate(config, cycles=CYCLES, seed=1)
    print(result.summary())

    print()
    print("== Section 4 reduced Markov chain (same system) ==")
    model = processor_priority_ebw(config)
    print(model.summary())
    gap = abs(model.ebw - result.ebw) / result.ebw
    print(f"model vs simulation gap: {100 * gap:.1f}%")

    print()
    print("== crossbar of the same size (basic cycle (r+2)t) ==")
    crossbar = crossbar_exact_ebw(config)
    print(f"crossbar EBW            : {crossbar.ebw:.3f}")
    print(
        "single-bus / crossbar   : "
        f"{result.ebw / crossbar.ebw:.2f}x "
        f"(with {config.processors + config.memories} connections instead of "
        f"{config.processors * config.memories})"
    )

    print()
    print("== the same machine with Section 6 memory buffers ==")
    buffered = simulate(config.with_buffers(), cycles=CYCLES, seed=1)
    print(f"buffered EBW            : {buffered.ebw:.3f}")
    print(f"unbuffered EBW          : {result.ebw:.3f}")
    print(f"buffering gain          : {100 * (buffered.ebw / result.ebw - 1):.1f}%")


if __name__ == "__main__":
    main()
