#!/usr/bin/env python3
"""Simulation methodology: warm-up, replications and analytic bounds.

The paper reports single simulation numbers; a modern reproduction should
show *how much* to trust each number.  This example demonstrates the
library's statistical tooling on one system:

1. Welch's procedure locates the initial transient and justifies the
   default warm-up;
2. independent replications put a confidence interval on the EBW, with a
   sequential stopping rule for a target precision;
3. operational-analysis bounds bracket the product-form solution without
   simulation, and the Section 2 ceiling falls out of the bus bottleneck.

Run:  python examples/simulation_methodology.py
"""

from repro import Priority, SystemConfig
from repro.analysis import (
    averaged_replications,
    suggest_warmup,
    welch_moving_average,
)
from repro.des import ebw_estimator, replicate, replicate_until
from repro.queueing import (
    asymptotic_bounds,
    balanced_job_bounds,
    buffered_bus_network,
    solve_mva,
)

CONFIG = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS)


def warmup_study() -> None:
    print("== 1. warm-up analysis (Welch's procedure) ==")
    intervals, interval_cycles = 20, 500
    series = averaged_replications(
        CONFIG,
        replications=5,
        intervals=intervals,
        interval_cycles=interval_cycles,
        base_seed=11,
    )
    smoothed = welch_moving_average(series, window=2)
    warmup_intervals = suggest_warmup(series, window=2, tolerance=0.03)
    print("interval EBW (smoothed):")
    print("  " + "  ".join(f"{v:5.2f}" for v in smoothed))
    print(
        f"suggested warm-up: {warmup_intervals} intervals "
        f"= {warmup_intervals * interval_cycles} cycles "
        f"(the library default discards 25% of the window)"
    )


def replication_study() -> None:
    print()
    print("== 2. independent replications ==")
    estimator = ebw_estimator(CONFIG, cycles=20_000)
    fixed = replicate(estimator, replications=5, base_seed=100)
    print(f"5 replications : EBW {fixed.summary()}")
    sequential = replicate_until(
        estimator, relative_precision=0.005, base_seed=100
    )
    print(
        f"sequential     : {sequential.replications} replications reach "
        f"0.5% precision: {sequential.summary()}"
    )


def bounds_study() -> None:
    print()
    print("== 3. analytic bounds on the product-form model ==")
    network = buffered_bus_network(CONFIG.with_buffers())
    mva = solve_mva(network)
    loose = asymptotic_bounds(network)
    tight = balanced_job_bounds(network)
    scale = CONFIG.processor_cycle  # throughput -> EBW units
    print(f"asymptotic bounds : [{loose.lower * scale:.3f}, {loose.upper * scale:.3f}]")
    print(f"balanced-job      : [{tight.lower * scale:.3f}, {tight.upper * scale:.3f}]")
    print(f"exact MVA         :  {mva.throughput * scale:.3f}")
    print(
        f"bus-bottleneck ceiling 1/Dmax = {loose.upper * scale:.3f} "
        f"(the Section 2 bound (r+2)/2 = {CONFIG.max_ebw})"
    )


def main() -> None:
    warmup_study()
    replication_study()
    bounds_study()


if __name__ == "__main__":
    main()
