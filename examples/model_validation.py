#!/usr/bin/env python3
"""Cross-validation sweep: every analytical model against the simulator.

The paper validates its models in Section 5 by comparing them with
simulations.  This example redoes that validation across a parameter
sweep and prints the per-model error profile, which is how we establish
the tolerances used in the test suite and EXPERIMENTS.md.

Run:  python examples/model_validation.py
"""

from repro import Priority, SystemConfig, simulate
from repro.models import (
    approximate_memory_priority_ebw,
    exact_memory_priority_ebw,
    processor_priority_ebw,
)

CYCLES = 60_000


def validate_memory_priority() -> None:
    print("priority to memories (Section 3 models vs simulation)")
    print("n  m  r   sim     exact    err%    approx   err%")
    worst_exact = worst_approx = 0.0
    for n, m, r in [
        (4, 4, 6),
        (6, 8, 8),
        (8, 8, 8),
        (8, 16, 8),
        (8, 16, 12),
        (8, 4, 4),
    ]:
        config = SystemConfig(n, m, r, priority=Priority.MEMORIES)
        sim = simulate(config, cycles=CYCLES, seed=33).ebw
        exact = exact_memory_priority_ebw(config).ebw
        approx = approximate_memory_priority_ebw(config).ebw
        err_exact = 100 * (exact - sim) / sim
        err_approx = 100 * (approx - sim) / sim
        worst_exact = max(worst_exact, abs(err_exact))
        worst_approx = max(worst_approx, abs(err_approx))
        print(
            f"{n:<2} {m:<2} {r:<3} {sim:6.3f}  {exact:6.3f} {err_exact:+6.1f}%"
            f"  {approx:6.3f} {err_approx:+6.1f}%"
        )
    print(
        f"worst |error|: exact {worst_exact:.1f}%  approx {worst_approx:.1f}%"
    )


def validate_processor_priority() -> None:
    print()
    print("priority to processors (Section 4 reduced chain vs simulation)")
    print("m   r   sim     chain    err%")
    worst = 0.0
    for m, r in [(4, 4), (4, 12), (8, 4), (8, 8), (12, 8), (16, 8), (16, 12)]:
        config = SystemConfig(8, m, r, priority=Priority.PROCESSORS)
        sim = simulate(config, cycles=CYCLES, seed=34).ebw
        model = processor_priority_ebw(config).ebw
        err = 100 * (model - sim) / sim
        worst = max(worst, abs(err))
        print(f"{m:<3} {r:<3} {sim:6.3f}  {model:6.3f} {err:+6.1f}%")
    print(f"worst |error|: {worst:.1f}%")
    print(
        "(compare the paper's Section 5 claim of <= 5% 'in almost any "
        "case' for its own chain)"
    )


def main() -> None:
    validate_memory_priority()
    validate_processor_priority()


if __name__ == "__main__":
    main()
