"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.core.config import SystemConfig
from repro.core.policy import Priority

# Property tests run simulations and chain solves; allow them time but
# keep example counts bounded so the suite stays fast.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep every test's result cache away from the user's home cache.

    The experiment runner caches by default; without this, tests that
    invoke ``main()`` would write to (and read stale entries from)
    ``~/.cache/repro-single-bus``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def small_config() -> SystemConfig:
    """A tiny system for fast unit-level simulations."""
    return SystemConfig(
        processors=2,
        memories=2,
        memory_cycle_ratio=2,
        priority=Priority.PROCESSORS,
    )


@pytest.fixture
def paper_config() -> SystemConfig:
    """The paper's favourite running example: 8 processors, 16 modules."""
    return SystemConfig(
        processors=8,
        memories=16,
        memory_cycle_ratio=8,
        priority=Priority.PROCESSORS,
    )


@pytest.fixture
def buffered_config() -> SystemConfig:
    """A Section 6 buffered system."""
    return SystemConfig(
        processors=8,
        memories=8,
        memory_cycle_ratio=8,
        priority=Priority.PROCESSORS,
        buffered=True,
    )
