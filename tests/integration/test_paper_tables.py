"""Integration tests: the paper's tables, reproduced and pinned.

Tables 1 and 2 are deterministic model outputs and must match the
printed values to their three decimals.  Table 3(b) uses the
reconstructed Section 4 chain (the scan's transition table is
OCR-damaged), so it is pinned to the printed values with the tolerance
established in EXPERIMENTS.md.  Tables 3(a) and 4 are stochastic; spot
cells are checked with simulation tolerances.
"""

from __future__ import annotations

import pytest

from repro.bus import simulate
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.experiments import paper_data
from repro.models.approx_memory_priority import approximate_memory_priority_ebw
from repro.models.exact_memory_priority import exact_memory_priority_ebw
from repro.models.processor_priority import processor_priority_ebw


class TestTable1DigitExact:
    @pytest.mark.parametrize(
        "n,m", list(paper_data.TABLE1_EXACT_MEMORY_PRIORITY.keys())
    )
    def test_cell(self, n, m):
        config = SystemConfig(n, m, min(n, m) + 7, priority=Priority.MEMORIES)
        ebw = exact_memory_priority_ebw(config).ebw
        reference = paper_data.TABLE1_EXACT_MEMORY_PRIORITY[(n, m)]
        # Half an ulp of the printed third decimal.
        assert ebw == pytest.approx(reference, abs=5.1e-4)


class TestTable2DigitExact:
    @pytest.mark.parametrize(
        "n,m", list(paper_data.TABLE2_APPROX_MEMORY_PRIORITY.keys())
    )
    def test_cell(self, n, m):
        config = SystemConfig(n, m, min(n, m) + 7, priority=Priority.MEMORIES)
        ebw = approximate_memory_priority_ebw(config).ebw
        reference = paper_data.TABLE2_APPROX_MEMORY_PRIORITY[(n, m)]
        # One ulp of the printed third decimal: the paper truncated
        # rather than rounded some cells (2.77853 prints as 2.778).
        assert ebw == pytest.approx(reference, abs=1.1e-3)

    def test_first_row_equals_table1(self):
        # n = 2 rows of Tables 1 and 2 coincide (the memoryless profile
        # is exact for two processors).
        for m in (2, 4, 6, 8):
            assert paper_data.TABLE2_APPROX_MEMORY_PRIORITY[(2, m)] == (
                paper_data.TABLE1_EXACT_MEMORY_PRIORITY[(2, m)]
            )


class TestTable3bReconstruction:
    """The reconstructed chain against the paper's printed Table 3(b).

    The worst deviation of the reconstruction from the printed table is
    0.28 EBW (8.8%), concentrated where the bus is far from saturation;
    in the saturated regime (r <= 4) the reconstruction matches to the
    printed digits.  Both the paper's chain and the reconstruction stay
    within ~7% of the underlying simulation (see EXPERIMENTS.md).
    """

    @pytest.mark.parametrize("m,r", list(paper_data.TABLE3B_APPROX_MODEL.keys()))
    def test_cell_within_reconstruction_tolerance(self, m, r):
        config = SystemConfig(8, m, r, priority=Priority.PROCESSORS)
        ebw = processor_priority_ebw(config).ebw
        reference = paper_data.TABLE3B_APPROX_MODEL[(m, r)]
        assert ebw == pytest.approx(reference, abs=0.30)

    @pytest.mark.parametrize("m", paper_data.TABLE3_M_VALUES)
    def test_saturated_cells_digit_exact(self, m):
        config = SystemConfig(8, m, 2, priority=Priority.PROCESSORS)
        ebw = processor_priority_ebw(config).ebw
        reference = paper_data.TABLE3B_APPROX_MODEL[(m, 2)]
        assert ebw == pytest.approx(reference, abs=5e-3)


@pytest.mark.slow
class TestTable3aSimulation:
    """Spot-check the stochastic Table 3(a) cells (full grid is the
    ``table3a`` experiment; these cells cover all regimes)."""

    @pytest.mark.parametrize(
        "m,r,tolerance",
        [
            (4, 2, 0.02),
            (4, 12, 0.05),
            (8, 8, 0.05),
            (10, 10, 0.05),
            (16, 6, 0.02),
            (16, 12, 0.06),
        ],
    )
    def test_cell(self, m, r, tolerance):
        config = SystemConfig(8, m, r, priority=Priority.PROCESSORS)
        result = simulate(config, cycles=16_000, seed=123)
        reference = paper_data.TABLE3A_SIMULATION[(m, r)]
        assert result.ebw == pytest.approx(reference, rel=tolerance)


@pytest.mark.slow
class TestTable4Simulation:
    """Spot-check the buffered Table 4 cells."""

    @pytest.mark.parametrize(
        "m,r",
        [(4, 6), (4, 24), (8, 10), (8, 24), (12, 12), (16, 6), (16, 16), (16, 24)],
    )
    def test_cell(self, m, r):
        config = SystemConfig(
            8, m, r, priority=Priority.PROCESSORS, buffered=True
        )
        result = simulate(config, cycles=16_000, seed=123)
        reference = paper_data.TABLE4_BUFFERED_SIMULATION[(m, r)]
        assert result.ebw == pytest.approx(reference, rel=0.05)

    def test_table4_peak_structure(self):
        # Each Table 4 row rises to a peak and then declines toward the
        # crossbar value; verify on the m=8 row.
        row = [
            paper_data.TABLE4_BUFFERED_SIMULATION[(8, r)]
            for r in paper_data.TABLE4_R_VALUES
        ]
        peak = row.index(max(row))
        assert 0 < peak < len(row) - 1
        assert row[-1] < max(row)
