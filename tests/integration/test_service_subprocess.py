"""End-to-end tests for the distributed sweep service.

These drive the real ``repro-experiments`` CLI with real subprocess
workers over stdio pipes - the exact production configuration - and
byte-compare against the serial path.  One test kills a worker
mid-lease with the built-in chaos hook to prove retries preserve the
bytes.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

_SPEC_TEXT = json.dumps(
    {
        "name": "service-e2e",
        "description": "tiny spec for service subprocess tests",
        "cycles": 120,
        "base": {"processors": 2, "memories": 2, "memory_cycle_ratio": 2},
        "grid": [
            {"field": "request_probability", "values": [0.25, 0.5, 1.0]}
        ],
        "replications": {"count": 2, "base_seed": 7},
    }
)


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "service-e2e.json"
    path.write_text(_SPEC_TEXT, encoding="utf-8")
    return str(path)


def _run_cli(*argv: str, cache_dir=None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    if cache_dir is not None:
        env["REPRO_CACHE_DIR"] = str(cache_dir)
    process = subprocess.run(
        [sys.executable, "-m", "repro.experiments", *argv],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
    )
    assert process.returncode == 0, process.stderr
    return process


class TestSweepServe:
    def test_served_stdout_is_byte_identical_to_serial(self, spec_file):
        serial = _run_cli("scenario", spec_file, "--no-cache")
        served = _run_cli(
            "sweep-serve", spec_file, "--workers", "3", "--no-cache"
        )
        assert served.stdout == serial.stdout
        assert "[sweep-serve service-e2e:" in served.stderr

    def test_chaos_killed_worker_does_not_change_the_bytes(self, spec_file):
        serial = _run_cli("scenario", spec_file, "--no-cache")
        served = _run_cli(
            "sweep-serve",
            spec_file,
            "--workers",
            "3",
            "--lease-size",
            "2",
            "--chaos-kill-after",
            "1",
            "--no-cache",
        )
        assert served.stdout == serial.stdout

    def test_workers_share_one_concurrent_store(self, spec_file, tmp_path):
        """Cold run populates the sharded store; a warm rerun serves
        every unit from cache, and the store has no litter."""
        store = tmp_path / "store"
        cold = _run_cli(
            "sweep-serve", spec_file, "--workers", "2", cache_dir=store
        )
        warm = _run_cli(
            "sweep-serve", spec_file, "--workers", "2", cache_dir=store
        )
        assert warm.stdout == cold.stdout
        assert "6 from cache" in warm.stderr
        assert list(store.rglob("*.tmp")) == []
        assert list(store.glob("*.json")) == []
        assert list(store.glob("[0-9a-f][0-9a-f]/*.json"))

    def test_cache_stats_reports_probe_and_dispatch(
        self, spec_file, tmp_path
    ):
        """A warm ``sweep-serve --cache-stats`` run shows every unit
        resolved by the pre-lease probe and nothing dispatched."""
        store = tmp_path / "store"
        cold = _run_cli(
            "sweep-serve",
            spec_file,
            "--workers",
            "2",
            "--cache-stats",
            cache_dir=store,
        )
        assert "[cache-stats probe_hits=0 dispatched=6" in cold.stderr
        warm = _run_cli(
            "sweep-serve",
            spec_file,
            "--workers",
            "2",
            "--cache-stats",
            cache_dir=store,
        )
        assert warm.stdout == cold.stdout
        assert "[cache-stats probe_hits=6 dispatched=0" in warm.stderr


class TestScenarioWorkersFlag:
    def test_workers_flag_matches_serial_bytes(self, spec_file):
        serial = _run_cli("scenario", spec_file, "--no-cache")
        served = _run_cli(
            "scenario", spec_file, "--workers", "3", "--no-cache"
        )
        assert served.stdout == serial.stdout

    def test_workers_flag_composes_with_shard(self, spec_file):
        serial = _run_cli(
            "scenario", spec_file, "--shard", "2/3", "--no-cache"
        )
        served = _run_cli(
            "scenario",
            spec_file,
            "--shard",
            "2/3",
            "--workers",
            "2",
            "--no-cache",
        )
        assert served.stdout == serial.stdout
