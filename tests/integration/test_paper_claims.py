"""Integration: the qualitative and design-space claims of the paper.

Each test reproduces one sentence of the paper's Sections 3, 6 and 7.
Simulation lengths are chosen to keep the suite fast while leaving
comfortable statistical margins; the full-strength versions run in the
benchmark harness.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.analysis.tradeoffs import crossbar_target, minimum_r_beating_crossbar
from repro.bus import simulate
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.models.crossbar import crossbar_exact_ebw
from repro.queueing.mva import product_form_ebw

CYCLES = 12_000


def ebw(n, m, r, buffered=False, p=1.0, seed=17):
    config = SystemConfig(
        n,
        m,
        r,
        request_probability=p,
        priority=Priority.PROCESSORS,
        buffered=buffered,
    )
    return simulate(config, cycles=CYCLES, seed=seed).ebw


class TestSection2Bounds:
    def test_max_ebw_attainable_when_r_below_min(self):
        # Section 7: "The maximum network bandwidth equals (r+2)/2; this
        # value is attainable with r < MIN(n, m)".
        for n, m, r in [(8, 8, 4), (8, 16, 6), (16, 16, 8)]:
            assert r < min(n, m)
            assert ebw(n, m, r) == pytest.approx((r + 2) / 2, rel=0.01)

    def test_crossbar_lower_bound_at_large_r(self):
        # Section 7: "For larger values of r, the crossbar EBW acts as a
        # lower bound value to the multiplexed single-bus EBW."
        crossbar = crossbar_exact_ebw(SystemConfig(8, 8, 1)).ebw
        assert ebw(8, 8, 24) >= crossbar * 0.95


class TestSection7CrossbarEquivalents:
    def test_8x8_crossbar_attained_with_m14_r8(self):
        # "The 8x8 crossbar EBW value is attained with m=14 and r=8 in
        # the single-bus system."
        target = crossbar_target(8, 8)
        assert ebw(8, 14, 8) >= target * 0.99

    def test_only_5_percent_lost_with_m10(self):
        # "...only a 5% degradation is suffered if m=10."
        target = crossbar_target(8, 8)
        achieved = ebw(8, 10, 8)
        degradation = (target - achieved) / target
        assert degradation == pytest.approx(0.05, abs=0.04)

    def test_buffered_r18_performs_like_16x16_crossbar(self):
        # "...a buffered single-bus system with r=18 performs like a
        # 16x16 crossbar."
        target = crossbar_target(16, 16)
        achieved = ebw(16, 16, 18, buffered=True)
        assert achieved == pytest.approx(target, rel=0.05)

    def test_buffered_saturation_until_r_near_min(self):
        # "The multiplexed single-bus with memory buffers operates in
        # saturation (no underutilization) until r approaches MIN(n,m)."
        n = m = 8
        for r in (2, 4, 6):
            assert ebw(n, m, r, buffered=True) >= 0.97 * (r + 2) / 2

    def test_buffered_beats_crossbar_until_r_min_plus_2(self):
        # "EBW values better than those of a crossbar system are
        # attainable with r <= MIN(n,m)+2."
        crossbar = crossbar_target(8, 8)
        assert ebw(8, 8, min(8, 8) + 2, buffered=True) >= crossbar


class TestSection7LoadClaims:
    def test_p_04_r8_exceeds_crossbar_8x16(self):
        # "With p >= 0.4, a value of r=8 is enough to exceed the crossbar
        # performance, in a system with 8 processors and 16 memories."
        r = minimum_r_beating_crossbar(
            processors=8,
            memories=16,
            request_probability=0.4,
            r_options=[4, 6, 8],
            cycles=CYCLES,
            seed=23,
        )
        assert r is not None and r <= 8

    def test_p_03_r12_matches_crossbar_8x16(self):
        # "if the value of p equals 0.3, r=12 is enough to get equal or
        # better results than the crossbar in a 8x16 system."
        r = minimum_r_beating_crossbar(
            processors=8,
            memories=16,
            request_probability=0.3,
            r_options=[8, 10, 12],
            cycles=CYCLES,
            seed=23,
        )
        assert r is not None and r <= 12


class TestSection6Claims:
    def test_buffering_gain_grows_with_crowding(self):
        # Section 6: "the effect of buffering is proportionally larger as
        # the difference (n-m) increases".
        gain_crowded = ebw(8, 4, 10, buffered=True) / ebw(8, 4, 10)
        gain_matched = ebw(8, 16, 10, buffered=True) / ebw(8, 16, 10)
        assert gain_crowded > gain_matched

    def test_buffering_gain_fades_at_light_load(self):
        # Section 7: "the positive influence of buffering becomes less
        # effective as p decreases."
        gain_heavy = ebw(8, 8, 8, buffered=True, p=1.0) / ebw(8, 8, 8, p=1.0)
        gain_light = ebw(8, 8, 8, buffered=True, p=0.3) / ebw(8, 8, 8, p=0.3)
        assert gain_heavy > gain_light * 0.999

    def test_exponential_model_pessimistic(self):
        # Section 6: exponential characterisation errs pessimistic.
        config = SystemConfig(
            8, 8, 8, priority=Priority.PROCESSORS, buffered=True
        )
        machine = simulate(config, cycles=CYCLES, seed=29).ebw
        assert product_form_ebw(config) < machine

    def test_exponential_ebw_pessimism_is_large(self):
        # Section 6 direction: exponential characterisation pessimistic;
        # on EBW the shortfall reaches ~15-17% (see EXPERIMENTS.md).
        worst = 0.0
        for m, r in [(6, 8), (8, 8), (8, 12)]:
            config = SystemConfig(
                8, m, r, priority=Priority.PROCESSORS, buffered=True
            )
            machine = simulate(config, cycles=CYCLES, seed=31).ebw
            pessimism = (machine - product_form_ebw(config)) / machine
            worst = max(worst, pessimism)
        assert worst > 0.12

    def test_exponential_discrepancy_exceeds_25_percent_on_delay(self):
        # Section 6: "large discrepancies, which exceeded 25%".  The
        # paper does not name its metric; on mean queueing delay (the
        # response time beyond the uncontended r+2, via Little's law)
        # the discrepancy comfortably exceeds 25%.
        worst = 0.0
        for m, r in [(6, 8), (8, 8), (8, 12)]:
            config = SystemConfig(
                8, m, r, priority=Priority.PROCESSORS, buffered=True
            )
            machine = simulate(config, cycles=CYCLES, seed=31).ebw
            exponential = product_form_ebw(config)
            n, cycle = 8, r + 2
            delay_machine = n * cycle / machine - cycle
            delay_exponential = n * cycle / exponential - cycle
            worst = max(
                worst, (delay_exponential - delay_machine) / delay_machine
            )
        assert worst > 0.25
