"""Statistical equivalence of the batch kernel, and its cache namespace.

The batch kernel is deliberately *not* bit-identical to the exact
kernels; its acceptance contract is statistical: over a fleet of
configurations, batch-kernel EBW and mean-latency replication means must
agree with fast-kernel means within declared confidence bounds.  The
runs are seeded, so the test is deterministic - the bounds document how
close the two samplers are, they do not absorb flakiness.

The second half pins the cache consequence of non-bit-identity: batch
results live under the ``simulation-batch@1`` engine token and can never
collide with - or be served from - ``simulation@1`` entries.
"""

from __future__ import annotations

import math
import statistics

import pytest

np = pytest.importorskip("numpy")

from repro.bus.batch import BATCH_ENGINE_TOKEN  # noqa: E402
from repro.core.config import SystemConfig  # noqa: E402
from repro.core.policy import Priority, TieBreak  # noqa: E402
from repro.parallel.cache import ResultCache, fingerprint  # noqa: E402
from repro.parallel.fleet import replicate_batch, run_fleet  # noqa: E402
from repro.parallel.workers import SimulationCase, run_case  # noqa: E402
from repro.scenarios.compiler import compile_scenario  # noqa: E402
from repro.scenarios.execute import run_units  # noqa: E402
from repro.scenarios.spec import (  # noqa: E402
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
)

REPLICATIONS = 8
CYCLES = 4_000
Z = 4.0
"""Welch-bound multiplier: the declared confidence bound (z = 4
corresponds to ~99.994% for a normal difference of means).  Seeded runs
make the test deterministic; the bound documents equivalence quality."""

EQUIVALENCE_FLEET = [
    SystemConfig(4, 4, 4),
    SystemConfig(8, 8, 8),
    SystemConfig(16, 16, 8),
    SystemConfig(8, 16, 8, priority=Priority.MEMORIES),
    SystemConfig(8, 4, 6, tie_break=TieBreak.FCFS),
    SystemConfig(8, 16, 8, request_probability=0.5),
    SystemConfig(6, 6, 2, request_probability=0.8, priority=Priority.MEMORIES),
    SystemConfig(8, 8, 8, buffered=True),
    SystemConfig(4, 8, 4, buffered=True, buffer_depth=2),
    SystemConfig(
        8, 8, 12, buffered=True, priority=Priority.MEMORIES,
        tie_break=TieBreak.FCFS,
    ),
    SystemConfig(2, 2, 3, request_probability=0.3),
]
"""The >= 10-configuration equivalence fleet (both priorities, both
tie-breaks, buffering, partial load)."""


def _welch_bound(a, b) -> float:
    return Z * math.sqrt(
        statistics.variance(a) / len(a) + statistics.variance(b) / len(b)
    )


def _means(results):
    ebw = statistics.fmean(r.ebw for r in results)
    latency = statistics.fmean(r.mean_latency for r in results)
    return ebw, latency


@pytest.mark.parametrize(
    "config", EQUIVALENCE_FLEET, ids=lambda c: c.describe()
)
def test_batch_agrees_with_fast_within_confidence_bounds(config):
    fast = [
        run_case(SimulationCase(config, CYCLES, seed, kernel="fast"))
        for seed in range(REPLICATIONS)
    ]
    batch = run_fleet(
        [
            SimulationCase(config, CYCLES, seed, kernel="batch")
            for seed in range(REPLICATIONS)
        ]
    )
    fast_ebw, fast_latency = _means(fast)
    batch_ebw, batch_latency = _means(batch)
    ebw_bound = _welch_bound(
        [r.ebw for r in fast], [r.ebw for r in batch]
    ) + 1e-12
    latency_bound = _welch_bound(
        [r.mean_latency for r in fast], [r.mean_latency for r in batch]
    ) + 1e-9 * fast_latency
    assert abs(fast_ebw - batch_ebw) <= ebw_bound, (
        f"EBW means diverge: fast {fast_ebw:.6f} vs batch {batch_ebw:.6f} "
        f"(bound {ebw_bound:.6f})"
    )
    assert abs(fast_latency - batch_latency) <= latency_bound, (
        f"mean latency diverges: fast {fast_latency:.4f} vs batch "
        f"{batch_latency:.4f} (bound {latency_bound:.4f})"
    )


GEOMETRIC_FLEET = [
    SystemConfig(4, 4, 4),
    SystemConfig(8, 8, 8, buffered=True),
    SystemConfig(
        8, 16, 8, request_probability=0.5, priority=Priority.MEMORIES
    ),
    SystemConfig(4, 8, 6, tie_break=TieBreak.FCFS),
]
"""Geometric-access equivalence fleet: the Section 6 product-form lever
through both buffering modes, partial load and FCFS."""


@pytest.mark.parametrize(
    "config", GEOMETRIC_FLEET, ids=lambda c: c.describe()
)
def test_batch_geometric_access_agrees_with_fast(config):
    """Geometric access times through the batch kernel pass the same
    Welch gate as the constant-access path: per-row inverse-CDF draws
    from the dedicated ``access-times`` stream must reproduce the fast
    kernel's EBW and mean-latency statistics, not just run."""
    from repro.bus import simulate

    fast = [
        simulate(
            config, cycles=CYCLES, seed=seed, kernel="fast",
            geometric_access_times=True,
        )
        for seed in range(REPLICATIONS)
    ]
    batch = [
        simulate(
            config, cycles=CYCLES, seed=seed, kernel="batch",
            geometric_access_times=True,
        )
        for seed in range(REPLICATIONS)
    ]
    fast_ebw, fast_latency = _means(fast)
    batch_ebw, batch_latency = _means(batch)
    ebw_bound = _welch_bound(
        [r.ebw for r in fast], [r.ebw for r in batch]
    ) + 1e-12
    latency_bound = _welch_bound(
        [r.mean_latency for r in fast], [r.mean_latency for r in batch]
    ) + 1e-9 * fast_latency
    assert abs(fast_ebw - batch_ebw) <= ebw_bound, (
        f"geometric EBW means diverge: fast {fast_ebw:.6f} vs batch "
        f"{batch_ebw:.6f} (bound {ebw_bound:.6f})"
    )
    assert abs(fast_latency - batch_latency) <= latency_bound, (
        f"geometric mean latency diverges: fast {fast_latency:.4f} vs "
        f"batch {batch_latency:.4f} (bound {latency_bound:.4f})"
    )


def test_replicate_batch_matches_fleet_estimates():
    config = SystemConfig(8, 8, 8)
    replication = replicate_batch(
        config, replications=5, base_seed=3, cycles=2_000
    )
    direct = run_fleet(
        [
            SimulationCase(config, 2_000, seed, kernel="batch")
            for seed in range(3, 8)
        ]
    )
    assert replication.estimates == tuple(r.ebw for r in direct)
    assert replication.seeds == (3, 4, 5, 6, 7)
    assert 0.0 < replication.mean <= config.max_ebw


# ----------------------------------------------------------------------
# Cache namespace separation.
# ----------------------------------------------------------------------
def _scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="batch-cache-namespace",
        description="cache separation fixture",
        base={"processors": 3, "memories": 3},
        grid=(GridAxis("memory_cycle_ratio", (2, 3)),),
        cycles=500,
        plan=ReplicationPlan(2, 5),
    )


def test_batch_payloads_use_their_own_engine_token():
    spec = _scenario()
    exact_units = compile_scenario(spec, kernel="fast")
    batch_units = compile_scenario(spec, kernel="batch")
    for exact, batch in zip(exact_units, batch_units):
        exact_payload = exact.payload()
        batch_payload = batch.payload()
        assert exact_payload["engine"] == "simulation@1"
        assert batch_payload["engine"] == BATCH_ENGINE_TOKEN
        assert fingerprint(exact_payload) != fingerprint(batch_payload)
    reference_units = compile_scenario(spec, kernel="reference")
    for exact, reference in zip(exact_units, reference_units):
        assert exact.payload() == reference.payload()


def test_batch_and_exact_entries_never_collide_in_cache(tmp_path):
    spec = _scenario()
    cache = ResultCache(cache_dir=tmp_path, version_tag="test")
    exact_units = compile_scenario(spec, kernel="fast")
    batch_units = compile_scenario(spec, kernel="batch")

    exact_first = run_units(exact_units, cache=cache)
    assert not any(result.cached for result in exact_first)
    # Batch sees a warm cache full of exact entries - and none match.
    batch_first = run_units(batch_units, cache=cache)
    assert not any(result.cached for result in batch_first)
    # Each kernel is served from its own namespace on the rerun.
    exact_again = run_units(exact_units, cache=cache)
    batch_again = run_units(batch_units, cache=cache)
    assert all(result.cached for result in exact_again)
    assert all(result.cached for result in batch_again)
    for fresh, cached in zip(exact_first, exact_again):
        assert fresh.ebw == cached.ebw
    for fresh, cached in zip(batch_first, batch_again):
        assert fresh.ebw == cached.ebw
    # The two kernels genuinely computed different numbers somewhere;
    # had they shared entries, the second run would have masked it.
    assert [r.ebw for r in exact_first] != [r.ebw for r in batch_first]
