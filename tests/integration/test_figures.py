"""Integration: the figure experiments reproduce the paper's shapes.

The benchmarks run these at measurement strength; here short runs verify
the qualitative structure that the paper reads off each figure, keeping
the assertion thresholds generous enough for the reduced cycle counts.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import paper_data
from repro.experiments.figure2 import check_claims as check_figure2
from repro.experiments.figure2 import run as run_figure2
from repro.experiments.figure3 import run as run_figure3
from repro.experiments.figure5 import check_claims as check_figure5
from repro.experiments.figure5 import run as run_figure5
from repro.experiments.figure6 import run as run_figure6

CYCLES = 3_000
SEED = 99


@pytest.fixture(scope="module")
def figure2_result():
    # The near-crossbar claim needs tighter statistics than the shape
    # checks, hence the longer window for this figure.
    return run_figure2(cycles=8_000, seed=SEED)


@pytest.fixture(scope="module")
def figure3_result():
    return run_figure3(cycles=CYCLES, seed=SEED)


@pytest.fixture(scope="module")
def figure5_result():
    return run_figure5(cycles=CYCLES, seed=SEED)


@pytest.fixture(scope="module")
def figure6_result():
    return run_figure6(cycles=CYCLES, seed=SEED)


class TestFigure2:
    def test_claims(self, figure2_result):
        checks = check_figure2(figure2_result)
        assert checks.processors_beat_memories
        assert checks.ebw_above_crossbar_at_large_r

    def test_ebw_grows_with_r(self, figure2_result):
        for n, m in paper_data.FIGURE2_SYSTEMS:
            row = f"{n}x{m} priority=processors"
            first = figure2_result.measured[(row, "r=2")]
            last = figure2_result.measured[(row, "r=24")]
            assert last > first

    def test_saturation_region(self, figure2_result):
        # 16x16 saturates at (r+2)/2 for r < 16.
        for r in (2, 4, 6, 8):
            value = figure2_result.measured[
                ("16x16 priority=processors", f"r={r}")
            ]
            assert value == pytest.approx((r + 2) / 2, rel=0.02)


class TestFigure3:
    def test_utilisation_monotone_in_p(self, figure3_result):
        # For every r, utilisation at light load beats heavy load.
        for r in paper_data.FIGURE3_R_VALUES:
            light = figure3_result.measured[(f"r={r}", "p=0.1")]
            heavy = figure3_result.measured[(f"r={r}", "p=1")]
            assert light > heavy

    def test_larger_r_more_efficient_at_heavy_load(self, figure3_result):
        heavy = [
            figure3_result.measured[(f"r={r}", "p=1")]
            for r in paper_data.FIGURE3_R_VALUES
        ]
        assert heavy[0] < heavy[-1]


class TestFigure5:
    def test_claims(self, figure5_result):
        checks = check_figure5(figure5_result)
        assert checks.buffered_dominates_unbuffered
        assert checks.buffered_exceeds_crossbar_somewhere

    def test_buffered_peak_then_decay(self, figure5_result):
        row = [
            figure5_result.measured[("8x8 with buffers", f"r={r}")]
            for r in paper_data.FIGURE5_R_VALUES
        ]
        peak_index = row.index(max(row))
        assert 0 < peak_index < len(row) - 1
        assert row[-1] < max(row)


class TestFigure6:
    def test_buffered_utilisation_dominates_unbuffered(
        self, figure3_result, figure6_result
    ):
        for r in (8, 12, 16):
            buffered = figure6_result.measured[(f"r={r}", "p=1")]
            unbuffered = figure3_result.measured[(f"r={r}", "p=1")]
            assert buffered >= unbuffered * 0.97

    def test_gap_closes_at_light_load(self, figure3_result, figure6_result):
        gap_heavy = (
            figure6_result.measured[("r=12", "p=1")]
            - figure3_result.measured[("r=12", "p=1")]
        )
        gap_light = (
            figure6_result.measured[("r=12", "p=0.2")]
            - figure3_result.measured[("r=12", "p=0.2")]
        )
        assert gap_heavy > gap_light - 0.02
