"""Integration: analytical models cross-validated against the simulator.

These tests close the loop the paper closes in its Section 5: the
analytical models and the simulation must agree within a few percent,
for both priority policies.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from repro.bus import simulate
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.models.approx_memory_priority import approximate_memory_priority_ebw
from repro.models.exact_memory_priority import exact_memory_priority_ebw
from repro.models.processor_priority import processor_priority_ebw


class TestMemoryPriorityModels:
    @pytest.mark.parametrize("n,m,r", [(4, 4, 6), (8, 8, 8), (8, 16, 8), (6, 4, 4)])
    def test_exact_chain_tracks_simulation(self, n, m, r):
        # The Section 3.1.1 chain lumps a processor cycle into one step;
        # it tracks the cycle-accurate simulation within ~10%.
        config = SystemConfig(n, m, r, priority=Priority.MEMORIES)
        model = exact_memory_priority_ebw(config).ebw
        sim = simulate(config, cycles=15_000, seed=7).ebw
        assert model == pytest.approx(sim, rel=0.10)

    @pytest.mark.parametrize("n,m,r", [(8, 8, 8), (8, 16, 8)])
    def test_approximate_close_to_exact(self, n, m, r):
        config = SystemConfig(n, m, r, priority=Priority.MEMORIES)
        exact = exact_memory_priority_ebw(config).ebw
        approx = approximate_memory_priority_ebw(config).ebw
        assert approx == pytest.approx(exact, rel=0.09)


class TestProcessorPriorityModel:
    @pytest.mark.parametrize(
        "m,r",
        [(4, 2), (4, 12), (6, 6), (8, 8), (10, 6), (12, 10), (16, 12)],
    )
    def test_reduced_chain_tracks_simulation(self, m, r):
        # The paper claims <= 5% disagreement "in almost any case" for
        # its chain; the reconstruction achieves <= ~7.5% on the grid.
        config = SystemConfig(8, m, r, priority=Priority.PROCESSORS)
        model = processor_priority_ebw(config).ebw
        sim = simulate(config, cycles=15_000, seed=11).ebw
        assert model == pytest.approx(sim, rel=0.08)

    def test_saturated_regime_exact(self):
        config = SystemConfig(8, 8, 2, priority=Priority.PROCESSORS)
        model = processor_priority_ebw(config).ebw
        sim = simulate(config, cycles=15_000, seed=11).ebw
        assert model == pytest.approx(sim, rel=0.005)


class TestPolicyOrdering:
    @pytest.mark.parametrize("n,m,r", [(8, 8, 8), (8, 16, 8), (4, 4, 6)])
    def test_processor_priority_wins(self, n, m, r):
        # Section 3: "the EBWs yielded by the bus arbitration policy g'
        # are better than those obtained using policy g''" (p = 1).
        g_prime = simulate(
            SystemConfig(n, m, r, priority=Priority.PROCESSORS),
            cycles=15_000,
            seed=3,
        ).ebw
        g_second = simulate(
            SystemConfig(n, m, r, priority=Priority.MEMORIES),
            cycles=15_000,
            seed=3,
        ).ebw
        assert g_prime >= g_second * 0.99


class TestBufferingOrdering:
    @pytest.mark.parametrize("n,m,r", [(8, 8, 8), (8, 4, 12), (8, 16, 10)])
    def test_buffers_never_hurt(self, n, m, r):
        config = SystemConfig(n, m, r, priority=Priority.PROCESSORS)
        unbuffered = simulate(config, cycles=15_000, seed=5).ebw
        buffered = simulate(config.with_buffers(), cycles=15_000, seed=5).ebw
        assert buffered >= unbuffered * 0.99

    def test_deeper_buffers_do_not_hurt(self):
        config = SystemConfig(8, 4, 12, priority=Priority.PROCESSORS)
        depth1 = simulate(config.with_buffers(1), cycles=15_000, seed=5).ebw
        depth4 = simulate(config.with_buffers(4), cycles=15_000, seed=5).ebw
        assert depth4 >= depth1 * 0.99
