"""Concurrent-store contract tests for :class:`ResultCache`.

The sweep service points any number of worker processes at one shared
cache directory, so the store must guarantee, under real multi-process
concurrency:

* a reader never observes a torn or corrupt entry, even mid-
  ``os.replace`` (atomic rename semantics);
* writers racing on one key are idempotent (content-addressed keys
  make the bytes identical, so last-writer-wins changes nothing);
* a writer killed between temp-file write and rename leaves no
  readable corruption and no permanent litter (``clear`` sweeps the
  orphan);
* entries written by the old flat layout stay readable through the new
  sharded store.

The stress tests drive real subprocesses (not threads) because the
bugs these protect against - torn reads, leaked temp files, eviction
of healthy entries - only manifest across process boundaries.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap

from repro.parallel.cache import ResultCache


def _run_python(source: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(source), *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


_HAMMER_SOURCE = """
    import sys

    from repro.parallel.cache import ResultCache

    cache_dir, worker_id, rounds, keys = (
        sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
    )
    cache = ResultCache(cache_dir=cache_dir, version_tag="stress")

    def expected(slot):
        # Deterministic value per key: every writer writes identical
        # content, so any successful read has exactly one legal answer.
        return {"slot": slot, "payload": [slot * 0.5, "x" * 64]}

    for round_number in range(rounds):
        slot = (worker_id + round_number) % keys
        key = cache.key({"slot": slot})
        value = cache.get(key)
        if value is not None and value != expected(slot):
            print(f"CORRUPT READ: slot {slot} gave {value!r}")
            sys.exit(1)
        cache.put(key, expected(slot))
        value = cache.get(key)
        if value != expected(slot):
            print(f"CORRUPT READ-AFTER-WRITE: slot {slot} gave {value!r}")
            sys.exit(1)
    sys.exit(0)
"""


class TestMultiprocessStress:
    def test_overlapping_writers_and_readers_never_corrupt(self, tmp_path):
        """>= 4 processes hammering overlapping keys: zero corrupt
        reads, zero evictions, zero leaked temp files."""
        cache_dir = tmp_path / "shared"
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    textwrap.dedent(_HAMMER_SOURCE),
                    str(cache_dir),
                    str(worker_id),
                    "120",
                    "7",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for worker_id in range(5)
        ]
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=120)
            assert worker.returncode == 0, f"worker failed: {stdout}{stderr}"
        # No staging litter, and every entry left behind is readable
        # and exact.
        assert list(cache_dir.rglob("*.tmp")) == []
        survivor = ResultCache(cache_dir=cache_dir, version_tag="stress")
        for slot in range(7):
            key = survivor.key({"slot": slot})
            value = survivor.get(key)
            assert value == {"slot": slot, "payload": [slot * 0.5, "x" * 64]}
        assert survivor.stats.evictions == 0

    def test_reader_mid_replace_sees_old_or_new_never_torn(self, tmp_path):
        """One writer rewrites a key in a tight loop while a reader
        polls it; the reader must only ever see a complete entry."""
        cache_dir = tmp_path / "shared"
        cache = ResultCache(cache_dir=cache_dir, version_tag="stress")
        key = cache.key({"slot": 0})
        cache.put(key, {"slot": 0, "payload": [0.0, "x" * 64]})
        writer = subprocess.Popen(
            [
                sys.executable,
                "-c",
                textwrap.dedent(_HAMMER_SOURCE),
                str(cache_dir),
                "0",
                "400",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        torn = 0
        while writer.poll() is None:
            value = cache.get(key)
            if value is not None and value != {
                "slot": 0,
                "payload": [0.0, "x" * 64],
            }:
                torn += 1
        stdout, stderr = writer.communicate(timeout=60)
        assert writer.returncode == 0, f"writer failed: {stdout}{stderr}"
        assert torn == 0
        assert cache.stats.evictions == 0


class TestCrashInjection:
    def test_writer_killed_between_temp_write_and_replace(self, tmp_path):
        """Kill a worker in the narrowest window - temp file fully
        written, rename not yet issued.  No corrupt entry may ever be
        readable, and the orphan is swept by clear()."""
        cache_dir = tmp_path / "shared"
        crash = _run_python(
            """
            import os
            import sys

            from repro.parallel.cache import ResultCache

            cache = ResultCache(cache_dir=sys.argv[1], version_tag="stress")
            key = cache.key({"slot": "crash"})

            def killed_mid_store(src, dst):
                os._exit(9)  # SIGKILL-equivalent: no cleanup runs

            os.replace = killed_mid_store
            cache.put(key, {"big": "value"})
            """,
            str(cache_dir),
        )
        assert crash.returncode == 9
        cache = ResultCache(cache_dir=cache_dir, version_tag="stress")
        key = cache.key({"slot": "crash"})
        # The orphaned temp file exists but is invisible to readers.
        orphans = list(cache_dir.rglob("*.tmp"))
        assert len(orphans) == 1
        assert cache.get(key) is None
        assert cache.stats.evictions == 0  # nothing to destroy
        # Maintenance sweeps the litter; the key stores cleanly after.
        cache.clear()
        assert list(cache_dir.rglob("*.tmp")) == []
        cache.put(key, {"big": "value"})
        assert cache.get(key) == {"big": "value"}

    def test_writer_killed_mid_temp_write_leaves_no_readable_entry(
        self, tmp_path
    ):
        """Kill during the temp write itself (partial JSON on disk)."""
        cache_dir = tmp_path / "shared"
        crash = _run_python(
            """
            import os
            import pathlib
            import sys

            from repro.parallel.cache import ResultCache

            cache = ResultCache(cache_dir=sys.argv[1], version_tag="stress")
            key = cache.key({"slot": "partial"})
            real_write_text = pathlib.Path.write_text

            def killed_mid_write(self, text, **kwargs):
                real_write_text(self, text[: len(text) // 2], **kwargs)
                os._exit(9)

            pathlib.Path.write_text = killed_mid_write
            cache.put(key, {"big": "value"})
            """,
            str(cache_dir),
        )
        assert crash.returncode == 9
        cache = ResultCache(cache_dir=cache_dir, version_tag="stress")
        key = cache.key({"slot": "partial"})
        assert cache.get(key) is None
        assert cache.stats.evictions == 0
        assert cache.sweep_orphans() == 1


class TestGetManyFailureEdges:
    """The planner's bulk probe inherits ``get``'s per-key semantics:
    a proven-corrupt entry is evicted and counted a miss, a transient
    I/O failure is counted a miss *without* eviction (the entry another
    process just paid for stays on disk for the next reader)."""

    def test_corrupt_entry_mid_probe_is_a_miss_with_one_eviction(
        self, tmp_path
    ):
        cache = ResultCache(cache_dir=tmp_path, version_tag="stress")
        keys = [cache.key({"slot": slot}) for slot in range(4)]
        for slot, key in enumerate(keys):
            cache.put(key, {"slot": slot})
        cache.path_for(keys[2]).write_text("{torn", encoding="utf-8")
        probe = ResultCache(cache_dir=tmp_path, version_tag="stress")
        found = probe.get_many(keys)
        assert set(found) == {keys[0], keys[1], keys[3]}
        assert probe.stats.hits == 3
        assert probe.stats.misses == 1
        assert probe.stats.evictions == 1
        assert probe.stats.transient_errors == 0
        # Proven corruption is destroyed, so the recompute stores clean.
        assert not probe.path_for(keys[2]).exists()

    def test_transient_oserror_mid_probe_is_a_miss_not_an_eviction(
        self, tmp_path, monkeypatch
    ):
        import pathlib

        cache = ResultCache(cache_dir=tmp_path, version_tag="stress")
        keys = [cache.key({"slot": slot}) for slot in range(3)]
        for slot, key in enumerate(keys):
            cache.put(key, {"slot": slot})
        target = cache.path_for(keys[1])
        real_read_text = pathlib.Path.read_text
        fired = []

        def flaky_read_text(self, *args, **kwargs):
            if self == target and not fired:
                fired.append(True)
                raise PermissionError("transient probe failure")
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "read_text", flaky_read_text)
        probe = ResultCache(cache_dir=tmp_path, version_tag="stress")
        found = probe.get_many(keys)
        assert keys[1] not in found
        assert set(found) == {keys[0], keys[2]}
        assert probe.stats.hits == 2
        assert probe.stats.misses == 1
        assert probe.stats.transient_errors == 1
        assert probe.stats.evictions == 0
        # The entry was left alone; the next probe serves it intact.
        assert target.exists()
        assert probe.get(keys[1]) == {"slot": 1}

    def test_get_many_under_write_hammer_never_evicts(self, tmp_path):
        """Bulk probes racing real writer processes: a mid-replace read
        may miss but must never destroy or misreport an entry."""
        cache_dir = tmp_path / "shared"
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    textwrap.dedent(_HAMMER_SOURCE),
                    str(cache_dir),
                    str(worker_id),
                    "120",
                    "7",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for worker_id in range(3)
        ]
        probe = ResultCache(cache_dir=cache_dir, version_tag="stress")
        slot_keys = [probe.key({"slot": slot}) for slot in range(7)]
        while any(worker.poll() is None for worker in workers):
            found = probe.get_many(slot_keys)
            for key, value in found.items():
                slot = value["slot"]
                assert key == slot_keys[slot]
                assert value == {"slot": slot, "payload": [slot * 0.5, "x" * 64]}
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=120)
            assert worker.returncode == 0, f"worker failed: {stdout}{stderr}"
        assert probe.stats.evictions == 0
        final = probe.get_many(slot_keys)
        assert set(final) == set(slot_keys)


class TestLegacyLayout:
    def test_flat_entries_survive_concurrent_era(self, tmp_path):
        """A cache directory populated by the pre-sharding release
        keeps serving hits through the new store."""
        cache_dir = tmp_path / "shared"
        cache_dir.mkdir()
        old_entries = {}
        writer = ResultCache(cache_dir=cache_dir, version_tag="legacy")
        for slot in range(6):
            key = writer.key({"slot": slot})
            value = {"slot": slot, "ebw": slot * 1.25}
            # Write exactly what the old flat layout wrote.
            (cache_dir / f"{key}.json").write_text(
                json.dumps(
                    {"key": key, "version": "legacy", "value": value},
                    sort_keys=True,
                ),
                encoding="utf-8",
            )
            old_entries[key] = value
        reader = ResultCache(cache_dir=cache_dir, version_tag="legacy")
        assert len(reader) == 6
        for key, value in old_entries.items():
            assert reader.get(key) == value
        assert reader.stats.hits == 6
        # All promoted into the sharded layout, none double counted.
        assert len(reader) == 6
        assert list(cache_dir.glob("*.json")) == []
        assert len(list(cache_dir.glob("[0-9a-f][0-9a-f]/*.json"))) == 6
