"""Smoke tests for the example scripts.

Every example must at least compile; the fastest one also runs end to
end in a subprocess so its printed workflow stays healthy.  The longer
examples are exercised indirectly (their building blocks are covered by
the unit and integration suites) to keep the test run short.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamplesCompile:
    def test_examples_exist(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "design_space.py",
            "buffered_memory.py",
            "model_validation.py",
            "simulation_methodology.py",
        } <= names

    @pytest.mark.parametrize(
        "path", ALL_EXAMPLES, ids=lambda p: p.name
    )
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "path", ALL_EXAMPLES, ids=lambda p: p.name
    )
    def test_has_main_guard_and_docstring(self, path):
        source = path.read_text(encoding="utf-8")
        assert '"""' in source.split("\n", 2)[-1] or source.lstrip().startswith(
            ('"""', "#!")
        )
        assert 'if __name__ == "__main__":' in source


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self):
        import os

        env = dict(os.environ)
        # Smoke-test quality: the printed workflow, not the statistics,
        # is under test here.
        env["REPRO_QUICKSTART_CYCLES"] = "8000"
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        out = completed.stdout
        assert "cycle-accurate simulation" in out
        assert "EBW" in out
        assert "crossbar" in out
        assert "buffered" in out
