"""Integration tests for ``EvaluationMethod.BANDWIDTH``.

The combinational bandwidth model is wired through the scenario layer as
a first-class analytic method.  These tests close the loop end to end:

* scenario results equal :func:`repro.models.bandwidth.ebw_from_busy_distribution`
  applied to the Section 3.2 busy distribution directly;
* like the other analytic methods, its cache keys ignore seed and cycle
  count, so replications and ``--cycles`` overrides share one entry;
* the model tracks the cycle-accurate simulator within the accuracy the
  paper attributes to the combinational approximation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.models.bandwidth import (
    combinational_bandwidth_ebw,
    combinational_busy_pmf,
    ebw_from_busy_distribution,
)
from repro.models.combinatorics import distinct_modules_pmf
from repro.parallel.cache import ResultCache, fingerprint
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import (
    EvaluationMethod,
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
)


def bandwidth_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="bandwidth-test",
        base={"processors": 4},
        grid=(
            GridAxis("memories", (2, 4)),
            GridAxis("memory_cycle_ratio", (2, 4)),
        ),
        method=EvaluationMethod.BANDWIDTH,
        plan=ReplicationPlan(1, 7),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestScenarioMatchesDirectModel:
    def test_results_equal_ebw_from_busy_distribution(self):
        results = run_units(compile_scenario(bandwidth_spec()))
        assert len(results) == 4
        for result in results:
            config = result.unit.config
            # p = 1: the busy profile is exactly the classic
            # distinct-modules distribution.
            expected = ebw_from_busy_distribution(
                distinct_modules_pmf(config.processors, config.memories),
                config.memory_cycle_ratio,
            )
            assert result.ebw == expected

    def test_partial_load_matches_direct_model(self):
        spec = bandwidth_spec(
            base={
                "processors": 4,
                "memory_cycle_ratio": 3,
                "request_probability": 0.6,
            },
            grid=(GridAxis("memories", (2, 4)),),
        )
        for result in run_units(compile_scenario(spec)):
            config = result.unit.config
            expected = ebw_from_busy_distribution(
                combinational_busy_pmf(config), config.memory_cycle_ratio
            )
            assert result.ebw == expected

    def test_registered_study_runs(self):
        spec = get_scenario("bandwidth-vs-simulation")
        assert spec.method is EvaluationMethod.BANDWIDTH
        results = run_units(compile_scenario(spec))
        assert len(results) == spec.grid_size()
        assert all(0.0 < r.ebw <= r.unit.config.max_ebw for r in results)


class TestBandwidthCacheSharing:
    def test_payload_ignores_seed_and_cycles(self):
        spec_a = bandwidth_spec(plan=ReplicationPlan(1, 7), cycles=50_000)
        spec_b = bandwidth_spec(plan=ReplicationPlan(1, 999), cycles=123)
        for unit_a, unit_b in zip(
            compile_scenario(spec_a), compile_scenario(spec_b)
        ):
            assert unit_a.seed != unit_b.seed
            assert fingerprint(unit_a.payload()) == fingerprint(unit_b.payload())

    def test_cache_entries_shared_across_seeds(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path, version_tag="test")
        first = run_units(compile_scenario(bandwidth_spec()), cache=cache)
        reseeded = bandwidth_spec(plan=ReplicationPlan(2, 4242), cycles=77)
        second = run_units(compile_scenario(reseeded), cache=cache)
        # Every reseeded/re-cycled unit is served from the entries the
        # first run stored - and replications collapse onto one key.
        assert all(result.cached for result in second)
        assert len(cache) == len(first)
        by_config = {
            (r.unit.config.memories, r.unit.config.memory_cycle_ratio): r.ebw
            for r in first
        }
        for result in second:
            key = (
                result.unit.config.memories,
                result.unit.config.memory_cycle_ratio,
            )
            assert result.ebw == by_config[key]

    def test_simulation_payloads_still_depend_on_seed(self):
        spec = bandwidth_spec(method=EvaluationMethod.SIMULATION)
        unit = compile_scenario(spec)[0]
        other = dataclasses.replace(unit, seed=unit.seed + 1)
        assert fingerprint(unit.payload()) != fingerprint(other.payload())


class TestModelProperties:
    def test_rejects_buffered_configurations(self):
        with pytest.raises(ConfigurationError):
            combinational_bandwidth_ebw(SystemConfig(4, 4, 2, buffered=True))
        # Through the scenario layer the rejection surfaces at
        # evaluation time, as a curated library error.
        spec = bandwidth_spec(base={"processors": 4, "buffered": True})
        with pytest.raises(ConfigurationError):
            run_units(compile_scenario(spec))

    def test_busy_pmf_is_a_distribution(self):
        for p in (0.3, 0.7, 1.0):
            config = SystemConfig(5, 3, 2, request_probability=p)
            pmf = combinational_busy_pmf(config)
            assert sum(pmf.values()) == pytest.approx(1.0)
            assert all(0.0 <= value <= 1.0 for value in pmf.values())
            assert all(0 <= busy <= config.memories for busy in pmf)
            if p == 1.0:
                assert 0 not in pmf

    @pytest.mark.slow
    def test_tracks_simulated_ebw(self):
        from repro.bus import simulate

        # The paper presents the combinational model as a usable
        # approximation of the unbuffered machine; hold it to a
        # generous-but-meaningful accuracy band.
        for n, m, r in ((4, 4, 2), (8, 8, 4), (8, 16, 8)):
            config = SystemConfig(n, m, r)
            model = combinational_bandwidth_ebw(config).ebw
            simulated = simulate(config, cycles=40_000, seed=1985).ebw
            assert model == pytest.approx(simulated, rel=0.30)
