"""Golden-output pin: every registered scenario through the engine layer.

Runs every scenario in the registry - every evaluation method, workload
and metric family the declarative layer exposes - in ``--fast`` mode
(fast kernel, reduced cycles, no cache) and asserts the rendered report
matches ``tests/golden/scenario_goldens.txt`` byte for byte.  This is
the guard rail for the engine refactor and every future one: any change
that perturbs dispatch, kernels, caching glue or report rendering shows
up as a golden diff.

Regenerate after an *intentional* output change with::

    REPRO_REGENERATE_GOLDENS=1 python -m pytest \
        tests/integration/test_scenario_goldens.py -q

and commit the updated golden file alongside the change.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "golden"
    / "scenario_goldens.txt"
)
GOLDEN_CYCLES = 1_200
"""Cycles per unit: small enough for CI, long enough to exercise
warm-up, batching and the latency pipeline."""

_HEADER = "== "


def generate_report() -> str:
    """One deterministic text block per registered scenario."""
    from repro.scenarios.execute import render_report, run_scenario
    from repro.scenarios.registry import all_scenarios

    blocks = []
    for spec in all_scenarios():
        runnable = dataclasses.replace(spec, cycles=GOLDEN_CYCLES)
        report = render_report(run_scenario(runnable, kernel="fast"))
        blocks.append(f"{_HEADER}{spec.name} cycles={GOLDEN_CYCLES}\n{report}")
    return "\n".join(blocks) + "\n"


def test_all_registered_scenarios_match_golden():
    actual = generate_report()
    if os.environ.get("REPRO_REGENERATE_GOLDENS"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(actual, encoding="utf-8")
    expected = GOLDEN_PATH.read_text(encoding="utf-8")
    if actual != expected:
        actual_blocks = {
            block.splitlines()[0]: block
            for block in actual.split(_HEADER)
            if block
        }
        expected_blocks = {
            block.splitlines()[0]: block
            for block in expected.split(_HEADER)
            if block
        }
        changed = sorted(
            name
            for name in set(actual_blocks) | set(expected_blocks)
            if actual_blocks.get(name) != expected_blocks.get(name)
        )
        raise AssertionError(
            "scenario reports diverge from tests/golden/scenario_goldens.txt "
            f"for: {', '.join(changed)}; if the change is intentional, "
            "regenerate with REPRO_REGENERATE_GOLDENS=1 (see module docstring)"
        )


def test_fast_and_reference_kernels_share_report_bytes():
    """Spot-check the kernel contract at the report level (one scenario)."""
    from repro.scenarios.execute import render_report, run_scenario
    from repro.scenarios.registry import get_scenario

    spec = dataclasses.replace(get_scenario("hot_spot"), cycles=400)
    fast = render_report(run_scenario(spec, kernel="fast"))
    reference = render_report(run_scenario(spec, kernel="reference"))
    assert fast == reference
