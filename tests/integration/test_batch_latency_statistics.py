"""Statistical equivalence gate for batch-kernel latency percentiles.

The batch kernel's latency distributions come from the vectorized
:class:`~repro.metrics.FleetQuantileSketch`, driven by a different (but
equally valid) RNG stream layout than the exact kernels' scalar
:class:`~repro.metrics.StreamingQuantiles` pipeline.  The numbers are
therefore *statistically* - not bit- - equivalent: over seeded
replication fleets, batch and fast replication means of every latency
statistic (wait/service/total mean, p50, p90, p99) must agree within a
Welch-style confidence bound.  Seeded runs make the gate deterministic;
the bound documents equivalence quality rather than absorbing flakiness.

CI runs this module as its own job (see ``.github/workflows/ci.yml``)
because it is the acceptance gate for ``--kernel batch --metrics
latency``; locally it rides along with the integration suite.

The cache half pins that batch latency payloads live under the
``simulation-batch@1`` engine token *and* the ``latency@1`` metrics
token, so they can never be served from fast-kernel or plain-batch
entries.
"""

from __future__ import annotations

import math
import statistics

import pytest

np = pytest.importorskip("numpy")

from repro.bus.batch import BATCH_ENGINE_TOKEN  # noqa: E402
from repro.core.config import SystemConfig  # noqa: E402
from repro.core.policy import Priority, TieBreak  # noqa: E402
from repro.metrics import LATENCY_METRICS_TOKEN  # noqa: E402
from repro.parallel.cache import ResultCache, fingerprint  # noqa: E402
from repro.parallel.fleet import run_fleet  # noqa: E402
from repro.parallel.workers import SimulationCase, run_case  # noqa: E402
from repro.scenarios.compiler import compile_scenario  # noqa: E402
from repro.scenarios.execute import run_units  # noqa: E402
from repro.scenarios.spec import (  # noqa: E402
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
)

REPLICATIONS = 8
CYCLES = 4_000
Z = 4.0
"""Welch-bound multiplier, as in ``test_batch_statistics.py``."""

LATENCY_FLEET = [
    SystemConfig(8, 8, 8),
    SystemConfig(8, 16, 8, priority=Priority.MEMORIES),
    SystemConfig(8, 4, 6, tie_break=TieBreak.FCFS),
    SystemConfig(8, 16, 8, request_probability=0.5),
    SystemConfig(8, 8, 8, buffered=True),
    SystemConfig(4, 8, 4, buffered=True, buffer_depth=2),
    SystemConfig(
        8, 8, 12, buffered=True, priority=Priority.MEMORIES,
        tie_break=TieBreak.FCFS,
    ),
]
"""Unbuffered and buffered points across priorities and tie-breaks."""

STATISTICS = [
    ("wait", "mean"),
    ("wait", "p50_value"),
    ("wait", "p90_value"),
    ("wait", "p99_value"),
    ("service", "mean"),
    ("total", "mean"),
    ("total", "p50_value"),
    ("total", "p90_value"),
    ("total", "p99_value"),
]


def _welch_bound(a, b) -> float:
    return Z * math.sqrt(
        statistics.variance(a) / len(a) + statistics.variance(b) / len(b)
    )


def _samples(results, component, field):
    return [getattr(getattr(r.latency, component), field) for r in results]


@pytest.mark.parametrize("config", LATENCY_FLEET, ids=lambda c: c.describe())
def test_batch_latency_statistics_match_fast_within_bounds(config):
    fast = [
        run_case(
            SimulationCase(
                config, CYCLES, seed, kernel="fast", collect_latency=True
            )
        )
        for seed in range(REPLICATIONS)
    ]
    batch = run_fleet(
        [
            SimulationCase(
                config, CYCLES, seed, kernel="batch", collect_latency=True
            )
            for seed in range(REPLICATIONS)
        ]
    )
    assert all(r.latency is not None for r in fast + list(batch))
    for component, field in STATISTICS:
        fast_samples = _samples(fast, component, field)
        batch_samples = _samples(batch, component, field)
        fast_mean = statistics.fmean(fast_samples)
        batch_mean = statistics.fmean(batch_samples)
        bound = _welch_bound(fast_samples, batch_samples)
        bound += 1e-9 * max(abs(fast_mean), 1.0)
        assert abs(fast_mean - batch_mean) <= bound, (
            f"{component}.{field} diverges: fast {fast_mean:.4f} vs "
            f"batch {batch_mean:.4f} (bound {bound:.4f})"
        )


GEOMETRIC_LATENCY_FLEET = [
    SystemConfig(4, 4, 4),
    SystemConfig(8, 8, 8, buffered=True),
    SystemConfig(
        8, 16, 8, request_probability=0.5, priority=Priority.MEMORIES
    ),
    SystemConfig(4, 8, 6, tie_break=TieBreak.FCFS),
]
"""Geometric-access latency fleet: the combination the batch kernel
used to reject outright."""


@pytest.mark.parametrize(
    "config", GEOMETRIC_LATENCY_FLEET, ids=lambda c: c.describe()
)
def test_batch_geometric_latency_statistics_match_fast(config):
    """Geometric access times with latency collection: the per-access
    service spans fed into the fleet sketch must reproduce the fast
    kernel's wait/service/total statistics, not just populate a
    report."""
    from repro.bus import simulate

    fast = [
        simulate(
            config, cycles=CYCLES, seed=seed, kernel="fast",
            collect_latency=True, geometric_access_times=True,
        )
        for seed in range(REPLICATIONS)
    ]
    batch = [
        simulate(
            config, cycles=CYCLES, seed=seed, kernel="batch",
            collect_latency=True, geometric_access_times=True,
        )
        for seed in range(REPLICATIONS)
    ]
    assert all(r.latency is not None for r in fast + batch)
    # Geometric service spans really vary (the sketch saw the draws,
    # not the constant r).
    assert any(
        r.latency.service.p99_value > r.latency.service.p50_value
        for r in batch
    )
    for component, field in STATISTICS:
        fast_samples = _samples(fast, component, field)
        batch_samples = _samples(batch, component, field)
        fast_mean = statistics.fmean(fast_samples)
        batch_mean = statistics.fmean(batch_samples)
        bound = _welch_bound(fast_samples, batch_samples)
        bound += 1e-9 * max(abs(fast_mean), 1.0)
        assert abs(fast_mean - batch_mean) <= bound, (
            f"geometric {component}.{field} diverges: fast "
            f"{fast_mean:.4f} vs batch {batch_mean:.4f} "
            f"(bound {bound:.4f})"
        )


def test_batch_latency_counts_are_internally_consistent():
    config = SystemConfig(4, 8, 4, buffered=True, buffer_depth=2)
    results = run_fleet(
        [
            SimulationCase(
                config, 2_000, seed, kernel="batch", collect_latency=True
            )
            for seed in range(4)
        ]
    )
    for result in results:
        report = result.latency
        assert report is not None
        assert report.total.count == result.completions
        assert report.wait.count == report.total.count
        assert report.service.count == report.total.count
        # total = wait + service + response delay + 2 transfer cycles,
        # so the total mean dominates the component means.
        assert report.total.mean >= report.wait.mean + report.service.mean


def test_latency_collection_never_changes_batch_counters():
    config = SystemConfig(8, 8, 8, buffered=True)
    cases = [
        SimulationCase(config, 1_500, seed, kernel="batch")
        for seed in range(3)
    ]
    plain = run_fleet(cases)
    collected = run_fleet(
        [
            SimulationCase(
                config, 1_500, seed, kernel="batch", collect_latency=True
            )
            for seed in range(3)
        ]
    )
    for a, b in zip(plain, collected):
        assert a.completions == b.completions
        assert a.total_latency == b.total_latency
        assert a.memory_busy_cycles == b.memory_busy_cycles
        assert a.ebw == b.ebw


# ----------------------------------------------------------------------
# Cache namespace: batch latency entries are doubly tokenized.
# ----------------------------------------------------------------------
def _scenario(metrics=()) -> ScenarioSpec:
    return ScenarioSpec(
        name="batch-latency-cache",
        description="latency cache separation fixture",
        base={"processors": 3, "memories": 3, "buffered": True},
        grid=(GridAxis("memory_cycle_ratio", (2, 3)),),
        cycles=500,
        plan=ReplicationPlan(2, 5),
        metrics=metrics,
    )


def test_batch_latency_payloads_carry_both_tokens():
    latency_units = compile_scenario(_scenario(("latency",)), kernel="batch")
    plain_units = compile_scenario(_scenario(), kernel="batch")
    fast_units = compile_scenario(_scenario(("latency",)), kernel="fast")
    for latency, plain, fast in zip(latency_units, plain_units, fast_units):
        latency_payload = latency.payload()
        assert latency_payload["engine"] == BATCH_ENGINE_TOKEN
        assert LATENCY_METRICS_TOKEN in latency_payload["metrics"]
        # Distinct from the same unit without latency, and from the fast
        # kernel collecting the same metrics.
        assert fingerprint(latency_payload) != fingerprint(plain.payload())
        assert fingerprint(latency_payload) != fingerprint(fast.payload())


def test_batch_latency_entries_round_trip_through_cache(tmp_path):
    cache = ResultCache(cache_dir=tmp_path, version_tag="test")
    units = compile_scenario(_scenario(("latency",)), kernel="batch")
    cold = run_units(units, cache=cache)
    assert not any(result.cached for result in cold)
    warm = run_units(units, cache=cache)
    assert all(result.cached for result in warm)
    for fresh, cached in zip(cold, warm):
        assert fresh.ebw == cached.ebw
        assert fresh.latency is not None and cached.latency is not None
        assert fresh.latency.payload() == cached.latency.payload()
