"""Property tests for the analytical models."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.models.approx_memory_priority import approximate_memory_priority_ebw
from repro.models.bandwidth import ebw_weight
from repro.models.combinatorics import (
    distinct_modules_pmf,
    sole_requester_probability,
    stirling2,
    surjections,
)
from repro.models.exact_memory_priority import exact_memory_priority_ebw
from repro.models.processor_priority import ProcessorPriorityChain

sizes = st.integers(min_value=1, max_value=8)
ratios = st.integers(min_value=1, max_value=12)


class TestCombinatoricsProperties:
    @given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=12))
    def test_stirling_recurrence(self, n, k):
        if n >= 1 and k >= 1:
            assert stirling2(n, k) == k * stirling2(n - 1, k) + stirling2(
                n - 1, k - 1
            )

    @given(st.integers(min_value=1, max_value=10))
    def test_surjections_onto_n_is_factorial(self, n):
        import math

        assert surjections(n, n) == math.factorial(n)

    @given(sizes, sizes)
    def test_distinct_pmf_is_distribution(self, n, m):
        pmf = distinct_modules_pmf(n, m)
        assert abs(sum(pmf.values()) - 1.0) < 1e-12
        assert all(1 <= j <= min(n, m) for j in pmf)

    @given(st.integers(min_value=2, max_value=10))
    def test_sole_requester_probability_in_unit_interval(self, n):
        for c in range(1, n + 1):
            p2 = sole_requester_probability(n, c)
            assert 0.0 <= p2 <= 1.0


class TestBandwidthProperties:
    @given(st.integers(min_value=0, max_value=40), ratios)
    def test_weight_bounds(self, x, r):
        weight = ebw_weight(x, r)
        assert 0.0 <= weight <= (r + 2) / 2 + 1e-12
        if 1 <= x:
            assert weight >= 1.0 - 1e-12


class TestModelProperties:
    @given(sizes, sizes, ratios)
    def test_exact_model_bounds(self, n, m, r):
        config = SystemConfig(n, m, r, priority=Priority.MEMORIES)
        ebw = exact_memory_priority_ebw(config).ebw
        assert 0.0 < ebw <= config.max_ebw + 1e-9
        # EBW can never exceed the number of processors or modules per
        # processor cycle either.
        assert ebw <= min(n, m) + 1e-9

    @given(sizes, sizes, ratios)
    def test_approximate_model_bounds(self, n, m, r):
        config = SystemConfig(n, m, r, priority=Priority.MEMORIES)
        ebw = approximate_memory_priority_ebw(config).ebw
        assert 0.0 < ebw <= config.max_ebw + 1e-9

    @given(sizes, sizes, ratios)
    def test_reduced_chain_bounds(self, n, m, r):
        chain = ProcessorPriorityChain(n, m, r)
        ebw = chain.ebw()
        assert 0.0 < ebw <= (r + 2) / 2 + 1e-9
        assert 0.0 <= chain.bus_idle_probability() <= 1.0

    @given(sizes, sizes, ratios)
    def test_reduced_chain_rows_sum_to_one(self, n, m, r):
        chain = ProcessorPriorityChain(n, m, r)
        for state in chain.chain.states:
            assert sum(chain.transition(state).values()) == pytest.approx(1.0)

    @given(sizes, sizes)
    def test_reduced_chain_state_count_formula(self, n, m):
        # For r > v the reachable count is (3v^2+3v-2)/2, except in the
        # degenerate v=1 systems (single processor or single module)
        # where exactly 3 states cycle: request on bus, access in
        # progress, response on bus.
        v = min(n, m)
        chain = ProcessorPriorityChain(n, m, v + 3)
        if v == 1:
            assert chain.state_count == 3
        else:
            assert chain.state_count == (3 * v * v + 3 * v - 2) // 2

    @given(st.integers(min_value=2, max_value=8), ratios)
    def test_more_memories_do_not_hurt_exact_model(self, n, r):
        config_small = SystemConfig(n, 4, r, priority=Priority.MEMORIES)
        config_large = SystemConfig(n, 8, r, priority=Priority.MEMORIES)
        assert (
            exact_memory_priority_ebw(config_large).ebw
            >= exact_memory_priority_ebw(config_small).ebw - 1e-9
        )
