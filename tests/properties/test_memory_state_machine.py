"""Stateful property test of the memory-module state machine.

Hypothesis drives random but legal sequences of the three external
operations (deliver a request, advance a cycle, take a response) against
a :class:`~repro.bus.memory.MemoryModule` and cross-checks it against a
simple reference model of what must hold: FIFO ordering, request
conservation, capacity limits and service-time lower bounds.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.bus.memory import MemoryModule, PendingRequest


class MemoryModuleMachine(RuleBasedStateMachine):
    """Random walks over the buffered module's external interface."""

    def __init__(self) -> None:
        super().__init__()
        self.access_cycles = 3
        self.depth = 2
        self.module = MemoryModule(
            index=0,
            access_cycles=self.access_cycles,
            input_depth=self.depth,
            output_depth=self.depth,
        )
        self.cycle = 0
        self.next_processor = 0
        self.delivered: list[int] = []  # processors, in delivery order
        self.returned: list[int] = []  # processors, in response order
        self.delivery_cycle: dict[int, int] = {}

    # ------------------------------------------------------------------
    @precondition(lambda self: self.module.can_accept())
    @rule()
    def deliver(self) -> None:
        processor = self.next_processor
        self.next_processor += 1
        self.module.deliver_request(
            PendingRequest(processor=processor, issue_cycle=self.cycle)
        )
        self.delivered.append(processor)
        self.delivery_cycle[processor] = self.cycle

    @rule(steps=st.integers(min_value=1, max_value=6))
    def advance(self, steps: int) -> None:
        for _ in range(steps):
            self.cycle += 1
            self.module.tick(self.cycle)

    @precondition(lambda self: self.module.response_ready)
    @rule()
    def take(self) -> None:
        response = self.module.take_response()
        self.returned.append(response.processor)
        # Service-time lower bound: a response can only exist after the
        # request's delivery plus one full access.
        assert (
            self.cycle >= self.delivery_cycle[response.processor] + self.access_cycles
        )

    # ------------------------------------------------------------------
    @invariant()
    def conservation(self) -> None:
        inside = self.module.in_flight()
        assert inside == len(self.delivered) - len(self.returned)
        assert 0 <= inside <= 2 + 2 * self.depth

    @invariant()
    def fifo_order(self) -> None:
        # Responses come back in exactly the delivery order (single
        # module, FIFO buffers - Section 6 hypothesis 2).
        assert self.returned == self.delivered[: len(self.returned)]

    @invariant()
    def acceptance_consistent(self) -> None:
        if self.module.can_accept():
            assert self.module.input_backlog < self.depth or (
                not self.module.accessing and not self.module.stalled
            )


TestMemoryModuleStateMachine = MemoryModuleMachine.TestCase
TestMemoryModuleStateMachine.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None
)


class UnbufferedModuleMachine(RuleBasedStateMachine):
    """The same walk over the unbuffered (Section 2) module."""

    def __init__(self) -> None:
        super().__init__()
        self.access_cycles = 2
        self.module = MemoryModule(index=0, access_cycles=self.access_cycles)
        self.cycle = 0
        self.next_processor = 0
        self.outstanding: int | None = None
        self.delivered_at = 0

    @precondition(lambda self: self.module.can_accept())
    @rule()
    def deliver(self) -> None:
        processor = self.next_processor
        self.next_processor += 1
        self.module.deliver_request(
            PendingRequest(processor=processor, issue_cycle=self.cycle)
        )
        self.outstanding = processor
        self.delivered_at = self.cycle

    @rule(steps=st.integers(min_value=1, max_value=5))
    def advance(self, steps: int) -> None:
        for _ in range(steps):
            self.cycle += 1
            self.module.tick(self.cycle)

    @precondition(lambda self: self.module.response_ready)
    @rule()
    def take(self) -> None:
        response = self.module.take_response()
        assert response.processor == self.outstanding
        assert self.cycle >= self.delivered_at + self.access_cycles
        self.outstanding = None

    @invariant()
    def one_request_at_a_time(self) -> None:
        # Hypothesis (h): the module holds at most one request, and it
        # accepts a new one only when completely empty.
        assert self.module.in_flight() in (0, 1)
        if self.outstanding is not None:
            assert not self.module.can_accept()
        else:
            assert self.module.can_accept()


TestUnbufferedModuleStateMachine = UnbufferedModuleMachine.TestCase
TestUnbufferedModuleStateMachine.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
