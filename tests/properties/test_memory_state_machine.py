"""Stateful property tests of the memory-module and bus-system machines.

Hypothesis drives random but legal sequences of the three external
operations (deliver a request, advance a cycle, take a response) against
a :class:`~repro.bus.memory.MemoryModule` and cross-checks it against a
simple reference model of what must hold: FIFO ordering, request
conservation, capacity limits and service-time lower bounds.

:class:`BusSystemAuditMachine` promotes the system-level
:meth:`~repro.bus.system.MultiplexedBusSystem.audit` invariants - which
used to be exercised only implicitly by example-based tests - into a
stateful property: after *every* step of a random schedule over a fleet
of diverse systems, every conservation invariant must hold, the bus
accounting must balance, and the latency tracker must agree with the
completion counter.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.bus.memory import MemoryModule, PendingRequest
from repro.bus.system import MultiplexedBusSystem
from repro.core.config import SystemConfig
from repro.core.policy import Priority


class MemoryModuleMachine(RuleBasedStateMachine):
    """Random walks over the buffered module's external interface."""

    def __init__(self) -> None:
        super().__init__()
        self.access_cycles = 3
        self.depth = 2
        self.module = MemoryModule(
            index=0,
            access_cycles=self.access_cycles,
            input_depth=self.depth,
            output_depth=self.depth,
        )
        self.cycle = 0
        self.next_processor = 0
        self.delivered: list[int] = []  # processors, in delivery order
        self.returned: list[int] = []  # processors, in response order
        self.delivery_cycle: dict[int, int] = {}

    # ------------------------------------------------------------------
    @precondition(lambda self: self.module.can_accept())
    @rule()
    def deliver(self) -> None:
        processor = self.next_processor
        self.next_processor += 1
        self.module.deliver_request(
            PendingRequest(processor=processor, issue_cycle=self.cycle)
        )
        self.delivered.append(processor)
        self.delivery_cycle[processor] = self.cycle

    @rule(steps=st.integers(min_value=1, max_value=6))
    def advance(self, steps: int) -> None:
        for _ in range(steps):
            self.cycle += 1
            self.module.tick(self.cycle)

    @precondition(lambda self: self.module.response_ready)
    @rule()
    def take(self) -> None:
        response = self.module.take_response()
        self.returned.append(response.processor)
        # Service-time lower bound: a response can only exist after the
        # request's delivery plus one full access.
        assert (
            self.cycle >= self.delivery_cycle[response.processor] + self.access_cycles
        )

    # ------------------------------------------------------------------
    @invariant()
    def conservation(self) -> None:
        inside = self.module.in_flight()
        assert inside == len(self.delivered) - len(self.returned)
        assert 0 <= inside <= 2 + 2 * self.depth

    @invariant()
    def fifo_order(self) -> None:
        # Responses come back in exactly the delivery order (single
        # module, FIFO buffers - Section 6 hypothesis 2).
        assert self.returned == self.delivered[: len(self.returned)]

    @invariant()
    def acceptance_consistent(self) -> None:
        if self.module.can_accept():
            assert self.module.input_backlog < self.depth or (
                not self.module.accessing and not self.module.stalled
            )


TestMemoryModuleStateMachine = MemoryModuleMachine.TestCase
TestMemoryModuleStateMachine.settings = settings(
    max_examples=30, stateful_step_count=60, deadline=None
)


class UnbufferedModuleMachine(RuleBasedStateMachine):
    """The same walk over the unbuffered (Section 2) module."""

    def __init__(self) -> None:
        super().__init__()
        self.access_cycles = 2
        self.module = MemoryModule(index=0, access_cycles=self.access_cycles)
        self.cycle = 0
        self.next_processor = 0
        self.outstanding: int | None = None
        self.delivered_at = 0

    @precondition(lambda self: self.module.can_accept())
    @rule()
    def deliver(self) -> None:
        processor = self.next_processor
        self.next_processor += 1
        self.module.deliver_request(
            PendingRequest(processor=processor, issue_cycle=self.cycle)
        )
        self.outstanding = processor
        self.delivered_at = self.cycle

    @rule(steps=st.integers(min_value=1, max_value=5))
    def advance(self, steps: int) -> None:
        for _ in range(steps):
            self.cycle += 1
            self.module.tick(self.cycle)

    @precondition(lambda self: self.module.response_ready)
    @rule()
    def take(self) -> None:
        response = self.module.take_response()
        assert response.processor == self.outstanding
        assert self.cycle >= self.delivered_at + self.access_cycles
        self.outstanding = None

    @invariant()
    def one_request_at_a_time(self) -> None:
        # Hypothesis (h): the module holds at most one request, and it
        # accepts a new one only when completely empty.
        assert self.module.in_flight() in (0, 1)
        if self.outstanding is not None:
            assert not self.module.can_accept()
        else:
            assert self.module.can_accept()


TestUnbufferedModuleStateMachine = UnbufferedModuleMachine.TestCase
TestUnbufferedModuleStateMachine.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)


AUDIT_CONFIGS = (
    SystemConfig(2, 2, 2),
    SystemConfig(4, 2, 3, request_probability=0.6),
    SystemConfig(3, 4, 2, priority=Priority.MEMORIES),
    SystemConfig(4, 4, 4, buffered=True),
    SystemConfig(2, 3, 5, request_probability=0.4, buffered=True, buffer_depth=2),
)
"""Diverse fleet: unbuffered/buffered, both priorities, partial load."""


class BusSystemAuditMachine(RuleBasedStateMachine):
    """Random schedules over whole systems; audit() after every step."""

    def __init__(self) -> None:
        super().__init__()
        self.systems = [
            MultiplexedBusSystem(config, seed=11 + index, collect_latency=True)
            for index, config in enumerate(AUDIT_CONFIGS)
        ]

    @rule(
        system=st.integers(min_value=0, max_value=len(AUDIT_CONFIGS) - 1),
        steps=st.integers(min_value=1, max_value=7),
    )
    def advance(self, system: int, steps: int) -> None:
        machine = self.systems[system]
        for _ in range(steps):
            machine.step()
            # The conservation invariants must hold after *every* bus
            # cycle, not just at quiescent points.
            machine.audit()

    @invariant()
    def audits_pass(self) -> None:
        for machine in self.systems:
            machine.audit()

    @invariant()
    def bus_accounting_balances(self) -> None:
        for machine in self.systems:
            # Every completion is exactly one response transfer, and no
            # response can outrun its request transfer.
            assert machine.completions == machine.response_transfers
            assert machine.response_transfers <= machine.request_transfers
            # The request/response gap equals the requests currently
            # inside the modules.
            in_flight = sum(module.in_flight() for module in machine.modules)
            assert (
                machine.request_transfers - machine.response_transfers
                == in_flight
            )

    @invariant()
    def latency_tracker_agrees(self) -> None:
        for machine in self.systems:
            assert machine.latency is not None
            assert machine.latency.count == machine.completions
            if machine.completions:
                r = machine.config.memory_cycle_ratio
                summary = machine.latency.total.summary()
                assert summary.min_value >= r + 2


TestBusSystemAuditMachine = BusSystemAuditMachine.TestCase
TestBusSystemAuditMachine.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
