"""Property tests for the Markov substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.markov.chain import DiscreteTimeMarkovChain
from repro.markov.occupancy import OccupancyChain, canonical


@st.composite
def random_irreducible_chain(draw):
    """A random chain with strictly positive rows (hence irreducible)."""
    size = draw(st.integers(min_value=2, max_value=6))
    rows = []
    for _ in range(size):
        weights = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0),
                min_size=size,
                max_size=size,
            )
        )
        total = sum(weights)
        rows.append({j: w / total for j, w in enumerate(weights)})
    return DiscreteTimeMarkovChain(list(range(size)), rows)


class TestChainProperties:
    @given(random_irreducible_chain())
    def test_stationary_is_distribution(self, chain):
        pi = chain.stationary_distribution()
        assert np.all(pi >= -1e-12)
        assert np.isclose(pi.sum(), 1.0)

    @given(random_irreducible_chain())
    def test_stationary_is_fixed_point(self, chain):
        pi = chain.stationary_distribution()
        assert np.allclose(pi @ chain.transition_matrix(), pi, atol=1e-9)

    @given(random_irreducible_chain())
    def test_power_matches_direct(self, chain):
        direct = chain.stationary_distribution("direct")
        power = chain.stationary_distribution("power")
        assert np.allclose(direct, power, atol=1e-7)

    @given(random_irreducible_chain())
    def test_positive_chains_are_irreducible(self, chain):
        assert chain.is_irreducible()


class TestOccupancyProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=9) | st.none(),
    )
    def test_rows_are_distributions(self, n, m, b):
        chain = OccupancyChain(n, m, service_width=b)
        for state in chain.chain.states:
            row = chain.transition(state)
            assert abs(sum(row.values()) - 1.0) < 1e-9
            for successor in row:
                assert sum(successor) == n
                assert len(successor) <= m

    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
    )
    def test_busy_distribution_properties(self, n, m):
        chain = OccupancyChain(n, m, service_width=None)
        busy = chain.busy_distribution()
        assert abs(sum(busy.values()) - 1.0) < 1e-9
        assert all(1 <= x <= min(n, m) for x in busy)

    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=1, max_value=6),
    )
    def test_width_monotonicity(self, n, m, b):
        # More service width can only increase mean completions.
        narrow = OccupancyChain(n, m, service_width=b).expected_completions()
        wide = OccupancyChain(n, m, service_width=b + 1).expected_completions()
        assert wide >= narrow - 1e-9

    @given(
        st.lists(st.integers(min_value=0, max_value=9), max_size=8)
    )
    def test_canonical_idempotent(self, counts):
        once = canonical(counts)
        assert canonical(once) == once
        assert list(once) == sorted(once, reverse=True)
        assert all(v > 0 for v in once)
