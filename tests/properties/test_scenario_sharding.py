"""Property test: sharded scenario runs merge byte-identically.

The scenario compiler's multi-machine contract: compiling a scenario,
splitting its work units into ``k`` shards, running each shard
independently, and merging the shard reports produces *exactly* the
bytes of the unsharded run - for every ``k`` and every assignment of
shards to (possibly repeated, possibly reordered) "machines".
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.compiler import (
    compile_scenario,
    merge_units,
    shard_units,
)
from repro.scenarios.execute import merge_reports, render_report, run_units
from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec
from repro.workloads.spec import HotSpotWorkload

CYCLES = 200
"""Tiny runs: the property is exact equality, not statistical strength."""


def build_spec(
    r_count: int,
    replications: int,
    base_seed: int,
    hot: bool,
    metrics: tuple[str, ...] = (),
) -> ScenarioSpec:
    workload = HotSpotWorkload(hot_fraction=0.0) if hot else None
    grid = [
        GridAxis("memory_cycle_ratio", tuple(range(1, r_count + 1))),
        GridAxis("buffered", (False, True)),
    ]
    if hot:
        grid.append(GridAxis("workload.hot_fraction", (0.0, 0.5)))
    kwargs = {}
    if workload is not None:
        kwargs["workload"] = workload
    return ScenarioSpec(
        name="property",
        base={"processors": 2, "memories": 2},
        grid=tuple(grid),
        cycles=CYCLES,
        plan=ReplicationPlan(replications, base_seed),
        metrics=metrics,
        **kwargs,
    )


class TestShardUnionProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        r_count=st.integers(min_value=1, max_value=3),
        replications=st.integers(min_value=1, max_value=3),
        base_seed=st.integers(min_value=0, max_value=1_000),
        hot=st.booleans(),
        with_latency=st.booleans(),
        shard_count=st.integers(min_value=1, max_value=5),
        data=st.data(),
    )
    def test_merged_shards_equal_unsharded_run(
        self, r_count, replications, base_seed, hot, with_latency, shard_count, data
    ):
        metrics = ("latency",) if with_latency else ()
        spec = build_spec(r_count, replications, base_seed, hot, metrics)
        units = compile_scenario(spec)
        unsharded = render_report(run_units(units))
        if with_latency:
            # The byte-identity contract must cover the percentile
            # columns, not just the mean-bandwidth ones.
            assert "lat_p99=" in unsharded and "wait_p50=" in unsharded
        else:
            assert "lat_" not in unsharded

        # Shards execute in an arbitrary machine order.
        order = data.draw(
            st.permutations(list(range(1, shard_count + 1))),
            label="shard execution order",
        )
        reports = [
            render_report(run_units(shard_units(units, index, shard_count)))
            for index in order
        ]
        assert merge_reports(reports) == unsharded

    @settings(max_examples=4, deadline=None)
    @given(
        r_count=st.integers(min_value=1, max_value=2),
        base_seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_worker_count_invisible_in_latency_columns(self, r_count, base_seed):
        spec = build_spec(r_count, 2, base_seed, hot=False, metrics=("latency",))
        units = compile_scenario(spec)
        serial = render_report(run_units(units, jobs=1))
        pooled = render_report(run_units(units, jobs=3))
        assert serial == pooled

    @settings(max_examples=12, deadline=None)
    @given(
        r_count=st.integers(min_value=1, max_value=3),
        replications=st.integers(min_value=1, max_value=2),
        shard_count=st.integers(min_value=1, max_value=6),
    )
    def test_shards_partition_exactly(self, r_count, replications, shard_count):
        spec = build_spec(r_count, replications, 0, hot=False)
        units = compile_scenario(spec)
        shards = [
            shard_units(units, index, shard_count)
            for index in range(1, shard_count + 1)
        ]
        assert merge_units(shards) == units
        sizes = sorted(len(shard) for shard in shards)
        assert sizes[-1] - sizes[0] <= 1
