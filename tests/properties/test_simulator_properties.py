"""Property tests for the cycle-accurate simulator.

Random small configurations are simulated for a few hundred cycles with
conservation audits after every step; the invariants here are the
machine-level truths any parameterisation must satisfy.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus import MultiplexedBusSystem
from repro.bus.trace import TraceEventKind, TraceRecorder
from repro.core.config import SystemConfig
from repro.core.policy import Priority, TieBreak


@st.composite
def system_configs(draw):
    return SystemConfig(
        processors=draw(st.integers(min_value=1, max_value=6)),
        memories=draw(st.integers(min_value=1, max_value=6)),
        memory_cycle_ratio=draw(st.integers(min_value=1, max_value=6)),
        request_probability=draw(st.sampled_from([0.3, 0.7, 1.0])),
        priority=draw(st.sampled_from(list(Priority))),
        buffered=draw(st.booleans()),
        tie_break=draw(st.sampled_from(list(TieBreak))),
    )


class TestInvariants:
    @given(system_configs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_conservation_under_random_configs(self, config, seed):
        system = MultiplexedBusSystem(config, seed=seed)
        for _ in range(300):
            system.step()
            system.audit()

    @given(system_configs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20)
    def test_transfer_accounting(self, config, seed):
        recorder = TraceRecorder()
        system = MultiplexedBusSystem(config, seed=seed, trace=recorder)
        cycles = 250
        for _ in range(cycles):
            system.step()
        # Exactly one bus event per cycle.
        assert len(recorder.bus_events()) == cycles
        # Responses never outnumber requests; the gap is bounded by the
        # requests that can sit inside the machine.
        capacity = config.processors
        assert system.response_transfers <= system.request_transfers
        assert system.request_transfers - system.response_transfers <= capacity
        assert system.completions == system.response_transfers

    @given(system_configs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15)
    def test_ebw_bounds(self, config, seed):
        system = MultiplexedBusSystem(config, seed=seed)
        cycles = 800
        result = system.run(cycles, warmup=100)
        # Steady state obeys EBW <= (r+2)/2; a finite window can exceed
        # it by at most the n completions whose request transfers
        # happened before the window opened.
        edge_allowance = config.processors * config.processor_cycle / cycles
        assert 0.0 <= result.ebw <= config.max_ebw + edge_allowance + 1e-9
        assert 0.0 <= result.bus_utilization <= 1.0
        assert 0.0 <= result.memory_utilization <= 1.0

    @given(system_configs())
    @settings(max_examples=10)
    def test_determinism(self, config):
        results = [
            MultiplexedBusSystem(config, seed=99).run(400, warmup=50)
            for _ in range(2)
        ]
        assert results[0].completions == results[1].completions
        assert results[0].total_latency == results[1].total_latency

    @given(system_configs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15)
    def test_latency_at_least_processor_cycle(self, config, seed):
        recorder = TraceRecorder()
        system = MultiplexedBusSystem(config, seed=seed, trace=recorder)
        for _ in range(400):
            system.step()
        # Every response arrives at least r+1 cycles after its request
        # transfer (access + response transfer).
        pending: dict[int, int] = {}
        for event in recorder.events:
            if event.kind is TraceEventKind.REQUEST_TRANSFER:
                pending[event.processor] = event.cycle
            elif event.kind is TraceEventKind.RESPONSE_TRANSFER:
                started = pending.pop(event.processor, None)
                if started is not None:
                    assert (
                        event.cycle - started
                        >= config.memory_cycle_ratio + 1
                    )
