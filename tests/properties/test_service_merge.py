"""Property tests: the sweep service merge is exactly invariant.

Acceptance contract of the distributed sweep service: whatever the
lease sizing, the plan mode, the cache warmth, the batch backend, the
worker count, the shard designator, or a worker killed mid-lease, the
coordinator's merged output is byte-identical to the serial
:func:`run_units` report.  Loopback transports make the schedule
deterministic and cheap, so hypothesis can sweep crash timings that
subprocess tests could never afford.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.compiler import compile_scenario, shard_units
from repro.scenarios.execute import render_report, run_units
from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec
from repro.service.coordinator import Coordinator
from repro.service.transports import LoopbackTransport

_SPEC = ScenarioSpec(
    name="service-merge-property",
    base={
        "processors": 3,
        "memories": 3,
        "memory_cycle_ratio": 2,
    },
    grid=(GridAxis("request_probability", (0.5, 1.0)),),
    cycles=150,
    plan=ReplicationPlan(replications=3, base_seed=11),
    description="tiny fleet for service merge properties",
)

_UNITS = compile_scenario(_SPEC)
_SERIAL = render_report(run_units(_UNITS, jobs=1, cache=None))


def _workers(count: int, kill: tuple[int, int] | None) -> list[LoopbackTransport]:
    transports = []
    for index in range(count):
        fail_after = None
        if kill is not None and kill[0] == index:
            fail_after = kill[1]
        transports.append(
            LoopbackTransport(f"w{index}", fail_after_results=fail_after)
        )
    return transports


class TestMergeInvariance:
    @settings(max_examples=40, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=4),
        lease_size=st.integers(min_value=1, max_value=8),
    )
    def test_invariant_to_workers_and_lease_size(self, workers, lease_size):
        coordinator = Coordinator(
            _SPEC,
            _workers(workers, None),
            lease_size=lease_size,
            cache_enabled=False,
        )
        assert render_report(coordinator.run()) == _SERIAL

    @settings(max_examples=40, deadline=None)
    @given(
        workers=st.integers(min_value=2, max_value=4),
        lease_size=st.integers(min_value=1, max_value=6),
        killed_worker=st.integers(min_value=0, max_value=3),
        fail_after=st.integers(min_value=1, max_value=5),
    )
    def test_invariant_to_mid_run_worker_kill(
        self, workers, lease_size, killed_worker, fail_after
    ):
        """One worker dies abruptly after its n-th result; the healthy
        rest absorb the retried lease and the bytes do not move."""
        coordinator = Coordinator(
            _SPEC,
            _workers(workers, (killed_worker % workers, fail_after)),
            lease_size=lease_size,
            cache_enabled=False,
        )
        results = coordinator.run()
        assert render_report(results) == _SERIAL
        indices = [result.unit.index for result in results]
        assert indices == sorted(set(indices))  # no duplicates, no holes

    @settings(max_examples=20, deadline=None)
    @given(
        shard_count=st.integers(min_value=1, max_value=3),
        workers=st.integers(min_value=1, max_value=3),
        lease_size=st.integers(min_value=1, max_value=4),
    )
    def test_sharded_service_equals_sharded_serial(
        self, shard_count, workers, lease_size
    ):
        """--shard composes with the service: each served shard equals
        its serial counterpart, so the full cross-machine merge does."""
        reports = []
        serial_reports = []
        for shard_index in range(1, shard_count + 1):
            coordinator = Coordinator(
                _SPEC,
                _workers(workers, None),
                shard=(shard_index, shard_count),
                lease_size=lease_size,
                cache_enabled=False,
            )
            reports.append(render_report(coordinator.run()))
            serial_reports.append(
                render_report(
                    run_units(
                        shard_units(_UNITS, shard_index, shard_count),
                        jobs=1,
                        cache=None,
                    )
                )
            )
        assert reports == serial_reports


def _batch_backends() -> list[str]:
    """Batch backends runnable here: numpy always; the JIT family only
    where numba is importable (the registry instances always JIT)."""
    backends = ["numpy"]
    try:
        import numba  # noqa: F401
    except ImportError:
        return backends
    backends.append("numba-parallel")
    return backends


class TestPlanInvariance:
    """Any plan the sweep planner can produce reproduces serial bytes:
    probe outcome x grouping mode x lease composition x backend are
    pure wall-clock levers."""

    @settings(max_examples=40, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=4),
        lease_size=st.one_of(
            st.none(), st.integers(min_value=1, max_value=8)
        ),
        plan_mode=st.sampled_from(("affine", "contiguous")),
    )
    def test_invariant_to_plan_shape(self, workers, lease_size, plan_mode):
        coordinator = Coordinator(
            _SPEC,
            _workers(workers, None),
            lease_size=lease_size,
            plan_mode=plan_mode,
            cache_enabled=False,
        )
        assert render_report(coordinator.run()) == _SERIAL

    def test_warm_probe_replays_the_same_bytes_with_zero_dispatch(
        self, tmp_path
    ):
        store = tmp_path / "store"
        reports = []
        coordinators = []
        for _ in range(2):
            coordinator = Coordinator(
                _SPEC,
                _workers(2, None),
                cache_enabled=True,
                cache_dir=str(store),
            )
            reports.append(render_report(coordinator.run()))
            coordinators.append(coordinator)
        assert reports[0] == reports[1] == _SERIAL
        assert coordinators[0].units_dispatched == len(_UNITS)
        assert coordinators[1].units_dispatched == 0

    @pytest.mark.parametrize("backend", _batch_backends())
    def test_batch_backends_match_their_serial_bytes(self, backend):
        serial = render_report(
            run_units(
                compile_scenario(_SPEC, kernel="batch", backend=backend),
                jobs=1,
                cache=None,
            )
        )
        coordinator = Coordinator(
            _SPEC,
            _workers(2, None),
            kernel="batch",
            backend=backend,
            cache_enabled=False,
        )
        assert render_report(coordinator.run()) == serial


class TestRetryAccounting:
    def test_killed_worker_forces_a_retry_without_duplicates(self):
        # fail_after=1 with lease_size=2 dies mid-lease by
        # construction: one result of the two-unit lease is streamed,
        # the other position must be re-leased to a healthy worker.
        coordinator = Coordinator(
            _SPEC,
            _workers(3, (0, 1)),
            lease_size=2,
            cache_enabled=False,
        )
        results = coordinator.run()
        assert render_report(results) == _SERIAL
        assert coordinator.leases_retried >= 1
        indices = [result.unit.index for result in results]
        assert indices == sorted(set(indices))  # no duplicates, no holes
