"""Property tests: batch fleet execution is composition invariant.

The batch kernel's reproducibility contract (see :mod:`repro.bus.batch`)
says a fleet row's result is a pure function of the row's own
``(config, workload, seed, cycles, warmup)`` - never of which other rows
share the lockstep call, in what order, or on which shard.  These
properties drive randomized fleets through
:class:`~repro.bus.batch.BatchBusKernel` and the scenario layer and
assert exact equality:

* permuting fleet rows permutes the results and changes no bytes;
* splitting a fleet into single-row fleets reproduces each row exactly;
* a batch-kernel scenario executed as ``k`` shards merges to stdout
  byte-identical to the unsharded run, under any worker count.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.bus.batch import BatchBusKernel, run_batch  # noqa: E402
from repro.core.config import SystemConfig  # noqa: E402
from repro.core.policy import Priority, TieBreak  # noqa: E402
from repro.parallel.fleet import group_fleets, run_fleet  # noqa: E402
from repro.parallel.workers import SimulationCase  # noqa: E402
from repro.scenarios.execute import (  # noqa: E402
    merge_reports,
    render_report,
    run_units,
)
from repro.scenarios.compiler import (  # noqa: E402
    compile_scenario,
    shard_units,
)
from repro.scenarios.spec import (  # noqa: E402
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
)
from repro.workloads.spec import (  # noqa: E402
    HotSpotWorkload,
    RequestMixWorkload,
    TraceWorkload,
)


def result_key(result):
    """Every field of a batch SimulationResult that must be invariant."""
    return (
        result.config,
        result.cycles,
        result.completions,
        result.request_transfers,
        result.response_transfers,
        result.memory_busy_cycles,
        result.total_latency,
        result.batch_ebws,
        result.seed,
        result.warmup_cycles,
    )


@st.composite
def fleet_shapes(draw):
    buffered = draw(st.booleans())
    return dict(
        processors=draw(st.integers(min_value=1, max_value=5)),
        memories=draw(st.integers(min_value=1, max_value=5)),
        memory_cycle_ratio=draw(st.integers(min_value=1, max_value=5)),
        priority=draw(st.sampled_from(list(Priority))),
        tie_break=draw(st.sampled_from(list(TieBreak))),
        buffered=buffered,
        buffer_depth=draw(st.sampled_from([1, 2, 3])) if buffered else 1,
    )


@st.composite
def fleet_rows(draw, shape):
    """(config, seed, workload) rows sharing one lockstep shape."""
    rows = []
    for _ in range(draw(st.integers(min_value=2, max_value=6))):
        seed = draw(st.integers(min_value=0, max_value=2**31))
        p = draw(st.sampled_from([0.3, 0.7, 1.0]))
        config = SystemConfig(request_probability=p, **shape)
        kind = draw(st.sampled_from(["uniform", "hot_spot", "trace", "mix"]))
        if kind == "hot_spot":
            workload = HotSpotWorkload(
                hot_fraction=draw(st.sampled_from([0.0, 0.4, 1.0])),
                hot_module=draw(
                    st.integers(min_value=0, max_value=config.memories - 1)
                ),
            )
        elif kind == "trace":
            length = draw(st.integers(min_value=1, max_value=4))
            workload = TraceWorkload(
                tuple(
                    tuple(
                        draw(
                            st.integers(
                                min_value=0, max_value=config.memories - 1
                            )
                        )
                        for _ in range(length)
                    )
                    for _ in range(config.processors)
                )
            )
        elif kind == "mix":
            workload = RequestMixWorkload(
                tuple(
                    draw(st.sampled_from([0.4, 0.9, 1.0]))
                    for _ in range(config.processors)
                )
            )
        else:
            workload = None
        rows.append((config, seed, workload))
    return rows


class TestFleetComposition:
    @given(st.data(), fleet_shapes())
    @settings(max_examples=25, deadline=None)
    def test_permutation_and_single_row_invariance(self, data, shape):
        rows = data.draw(fleet_rows(shape))
        cases = [
            SimulationCase(
                config, 400, seed, warmup=80, workload=workload, kernel="batch"
            )
            for config, seed, workload in rows
        ]
        full = run_fleet(cases)
        permutation = data.draw(st.permutations(range(len(cases))))
        permuted = run_fleet([cases[i] for i in permutation])
        for j, i in enumerate(permutation):
            assert result_key(permuted[j]) == result_key(full[i])
        # Single-row fleets (the simulate(kernel="batch") path) agree.
        for case, result in zip(cases, full):
            targets = (
                case.workload.build_targets(case.config, case.seed)
                if case.workload is not None
                else None
            )
            probabilities = (
                case.workload.request_probabilities(case.config)
                if case.workload is not None
                else None
            )
            single = run_batch(
                case.config,
                cycles=case.cycles,
                seed=case.seed,
                warmup=case.warmup,
                targets=targets,
                request_probabilities=probabilities,
            )
            assert result_key(single) == result_key(result)

    @given(fleet_shapes(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_replication_block_equals_separate_kernels(self, shape, seed):
        config = SystemConfig(**shape)
        block = BatchBusKernel(
            [config] * 4, [seed + i for i in range(4)]
        ).run(300, warmup=50)
        for i, result in enumerate(block):
            alone = BatchBusKernel([config], [seed + i]).run(300, warmup=50)
            assert result_key(alone[0]) == result_key(result)


def _batch_scenario(replications: int = 3) -> ScenarioSpec:
    return ScenarioSpec(
        name="batch-shard-property",
        description="fleet invariance fixture",
        base={"processors": 3, "memories": 4, "priority": Priority.PROCESSORS},
        grid=(
            GridAxis("memory_cycle_ratio", (2, 4)),
            GridAxis("request_probability", (0.5, 1.0)),
        ),
        cycles=600,
        plan=ReplicationPlan(replications, 11),
    )


class TestShardInvariance:
    def test_sharded_batch_reports_merge_byte_identically(self):
        spec = _batch_scenario()
        units = compile_scenario(spec, kernel="batch")
        unsharded = render_report(run_units(units, jobs=1))
        for shard_count in (2, 3):
            shard_reports = []
            for shard_index in range(1, shard_count + 1):
                shard = shard_units(units, shard_index, shard_count)
                shard_reports.append(render_report(run_units(shard, jobs=1)))
            assert merge_reports(shard_reports) == unsharded

    def test_worker_count_changes_no_bytes(self):
        spec = _batch_scenario()
        units = compile_scenario(spec, kernel="batch")
        serial = render_report(run_units(units, jobs=1))
        pooled = render_report(run_units(units, jobs=2))
        assert pooled == serial

    def test_grouping_is_deterministic(self):
        spec = _batch_scenario()
        units = compile_scenario(spec, kernel="batch")
        cases = [unit.case() for unit in units]
        assert group_fleets(cases) == group_fleets(list(cases))


class TestSeedStreams:
    def test_distinct_seeds_distinct_results(self):
        config = SystemConfig(4, 4, 4)
        results = BatchBusKernel([config] * 3, [1, 2, 3]).run(2_000)
        keys = {result_key(result) for result in results}
        assert len(keys) == 3

    def test_same_seed_same_result(self):
        config = SystemConfig(4, 4, 4)
        first, second = BatchBusKernel([config] * 2, [9, 9]).run(2_000)
        assert result_key(
            dataclasses.replace(first, seed=0)
        ) == result_key(dataclasses.replace(second, seed=0))
