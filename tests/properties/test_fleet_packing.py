"""Property tests: shape-packed super-fleets are bit-identical.

The fleet-packing gate.  The batch kernel packs rows of heterogeneous
shapes (``n``, ``m``, access time ``r``, buffer depth) into one padded
lockstep program; the packing contract says padded lanes are inert and
**never consume a draw**, so every row's counters, latency sketches and
per-row Philox draw sequence are a pure function of the row alone -
identical whether the row runs packed with strangers, in its
homogeneous shape group, or in a singleton kernel.  That is what
licenses packing to ship under the unchanged ``simulation-batch@1``
cache token with byte-identical scenario stdout.

These properties drive randomized *heterogeneous* fleets - mixed
shapes sharing only the :data:`~repro.bus.batch.PACK_FIELDS` - through
three groupings (one packed kernel, per-shape kernels, one kernel per
row) on the numpy and numba backends and assert exact equality of

* every counter of every row's ``SimulationResult``;
* the per-row latency quantile sketches (identical percentile
  reports); and
* each row's RNG end-state: after the run, the row's streams must
  produce identical *future* draws, proving packing changed the
  consumption of no stream.  A packed kernel may *instantiate* a
  stream a homogeneous kernel does not need (a constant-``r`` row
  packed with geometric neighbours, a ``p=1`` row packed with partial
  load): the row never consumes from it, so comparison applies
  wherever both kernels hold the stream.

The layer above is covered too: :func:`repro.parallel.fleet.run_fleet`
with ``pack=True``/``pack=False`` and the scenario executor's packed
task grouping must produce identical bytes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.bus.backends import (  # noqa: E402
    NumbaBackend,
    NumbaParallelBackend,
)
from repro.bus.batch import BatchBusKernel, fleet_shape  # noqa: E402
from repro.core.config import SystemConfig  # noqa: E402
from repro.core.policy import Priority, TieBreak  # noqa: E402
from repro.parallel.fleet import run_fleet  # noqa: E402
from repro.parallel.workers import SimulationCase  # noqa: E402
from repro.workloads.spec import (  # noqa: E402
    HotSpotWorkload,
    RequestMixWorkload,
    TraceWorkload,
)


def _numba_importable() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


BACKENDS = [
    pytest.param("numpy", id="numpy"),
    pytest.param(lambda: NumbaBackend(jit=False), id="numba-interpreted"),
    pytest.param(
        lambda: NumbaParallelBackend(jit=False),
        id="numba-parallel-interpreted",
    ),
    pytest.param(
        lambda: NumbaBackend(jit=True),
        id="numba-jit",
        marks=pytest.mark.skipif(
            not _numba_importable(),
            reason="numba not installed ([batch-jit] extra)",
        ),
    ),
]


def result_key(result):
    """Every field of a batch SimulationResult that must coincide."""
    return (
        result.config,
        result.cycles,
        result.completions,
        result.request_transfers,
        result.response_transfers,
        result.memory_busy_cycles,
        result.total_latency,
        result.batch_ebws,
        result.seed,
        result.warmup_cycles,
    )


def latency_key(result):
    """The latency report's full byte surface (or None)."""
    if result.latency is None:
        return None
    report = result.latency
    return tuple(
        (
            summary.count,
            summary.mean,
            summary.p50_value,
            summary.p90_value,
            summary.p99_value,
            summary.max_value,
        )
        for summary in (report.wait, report.service, report.total)
    )


def row_tails(kernel, row: int, draws: int = 3):
    """The next ``draws`` draws of one row's four RNG streams.

    Drawing through the lanes API per row proves the row consumed
    exactly the same number of variates from every stream, regardless
    of which other rows shared the kernel.  ``None`` marks a stream the
    kernel never instantiated.
    """
    tails = []
    index = np.array([row])
    for lanes in (
        kernel._targets_lanes,
        kernel._think_lanes,
        kernel._arb_lanes,
        kernel._access_lanes,
    ):
        if lanes is None:
            tails.append(None)
            continue
        tails.append(
            tuple(float(lanes.take_rows(index)[0]) for _ in range(draws))
        )
    return tails


def assert_tails_match(packed_tails, sub_tails):
    """Per-stream end-state equality wherever both kernels hold it.

    Packing may instantiate streams a smaller grouping does not need
    (the row never consumes from them - proven by the streams it *does*
    share staying identical); a stream the smaller kernel holds must
    exist in the packed kernel with the identical tail.
    """
    for packed, sub in zip(packed_tails, sub_tails):
        if sub is None:
            continue
        assert packed == sub


@st.composite
def packed_fleet_specs(draw):
    """Heterogeneous rows sharing only the pack fields."""
    buffered = draw(st.booleans())
    pack = dict(
        priority=draw(st.sampled_from(list(Priority))),
        tie_break=draw(st.sampled_from(list(TieBreak))),
        buffered=buffered,
    )
    geometric = draw(st.booleans())
    collect_latency = draw(st.booleans())
    rows = []
    for _ in range(draw(st.integers(min_value=2, max_value=5))):
        config = SystemConfig(
            processors=draw(st.integers(min_value=1, max_value=4)),
            memories=draw(st.integers(min_value=1, max_value=4)),
            memory_cycle_ratio=draw(st.integers(min_value=1, max_value=4)),
            request_probability=draw(st.sampled_from([0.3, 0.7, 1.0])),
            buffer_depth=draw(st.sampled_from([1, 2, 3])) if buffered else 1,
            **pack,
        )
        seed = draw(st.integers(min_value=0, max_value=2**31))
        kind = draw(st.sampled_from(["uniform", "hot_spot", "trace", "mix"]))
        if kind == "hot_spot":
            workload = HotSpotWorkload(
                hot_fraction=draw(st.sampled_from([0.0, 0.4, 1.0])),
                hot_module=draw(
                    st.integers(min_value=0, max_value=config.memories - 1)
                ),
            )
        elif kind == "trace":
            length = draw(st.integers(min_value=1, max_value=4))
            workload = TraceWorkload(
                tuple(
                    tuple(
                        draw(
                            st.integers(
                                min_value=0, max_value=config.memories - 1
                            )
                        )
                        for _ in range(length)
                    )
                    for _ in range(config.processors)
                )
            )
        elif kind == "mix":
            workload = RequestMixWorkload(
                tuple(
                    draw(st.sampled_from([0.4, 0.9, 1.0]))
                    for _ in range(config.processors)
                )
            )
        else:
            workload = None
        rows.append((config, seed, workload))
    return rows, geometric, collect_latency


def _build_kernel(rows, geometric, collect_latency, backend):
    backend = backend if isinstance(backend, str) else backend()
    configs = [config for config, _, _ in rows]
    seeds = [seed for _, seed, _ in rows]
    targets = [
        workload.build_targets(config, seed) if workload is not None else None
        for config, seed, workload in rows
    ]
    probabilities = [
        workload.request_probabilities(config)
        if workload is not None
        else None
        for config, _, workload in rows
    ]
    return BatchBusKernel(
        configs,
        seeds,
        targets=targets,
        request_probabilities=probabilities,
        collect_latency=collect_latency,
        geometric_access_times=geometric,
        backend=backend,
    )


def _run_grouped(rows, geometric, collect_latency, backend, group_key):
    """Run ``rows`` as one kernel per ``group_key`` class; returns
    results and per-original-row ``(kernel, local_row)`` locators."""
    groups: dict = {}
    for position, row in enumerate(rows):
        groups.setdefault(group_key(position, row), []).append(position)
    results = [None] * len(rows)
    locators = [None] * len(rows)
    for members in groups.values():
        kernel = _build_kernel(
            [rows[i] for i in members], geometric, collect_latency, backend
        )
        for local, position in enumerate(members):
            locators[position] = (kernel, local)
        for position, result in zip(members, kernel.run(300, warmup=60)):
            results[position] = result
    return results, locators


@pytest.mark.parametrize("backend", BACKENDS)
class TestPackingBitIdentity:
    @given(data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_packed_equals_unpacked_equals_singletons(self, backend, data):
        rows, geometric, collect_latency = data.draw(packed_fleet_specs())
        packed = _build_kernel(rows, geometric, collect_latency, backend)
        packed_results = packed.run(300, warmup=60)
        by_shape, shape_locators = _run_grouped(
            rows,
            geometric,
            collect_latency,
            backend,
            lambda _, row: fleet_shape(row[0]),
        )
        singles, single_locators = _run_grouped(
            rows,
            geometric,
            collect_latency,
            backend,
            lambda position, _: position,
        )
        for position in range(len(rows)):
            assert result_key(packed_results[position]) == result_key(
                by_shape[position]
            )
            assert result_key(packed_results[position]) == result_key(
                singles[position]
            )
            assert latency_key(packed_results[position]) == latency_key(
                by_shape[position]
            )
            assert latency_key(packed_results[position]) == latency_key(
                singles[position]
            )
        for position in range(len(rows)):
            packed_tails = row_tails(packed, position)
            kernel, local = shape_locators[position]
            assert_tails_match(packed_tails, row_tails(kernel, local))
            kernel, local = single_locators[position]
            assert_tails_match(packed_tails, row_tails(kernel, local))

    def test_mixed_depth_buffered_fcfs_pack(self, backend):
        """The deepest packed path: per-row buffer depths and memory
        counts under FCFS memory priority, with latency sketches."""
        rows = [
            (
                SystemConfig(
                    3,
                    2,
                    4,
                    priority=Priority.MEMORIES,
                    tie_break=TieBreak.FCFS,
                    buffered=True,
                    buffer_depth=1,
                ),
                7,
                None,
            ),
            (
                SystemConfig(
                    2,
                    4,
                    2,
                    priority=Priority.MEMORIES,
                    tie_break=TieBreak.FCFS,
                    buffered=True,
                    buffer_depth=3,
                    request_probability=0.6,
                ),
                8,
                RequestMixWorkload((0.4, 1.0)),
            ),
        ]
        packed = _build_kernel(rows, False, True, backend)
        packed_results = packed.run(900, warmup=150)
        for position, row in enumerate(rows):
            alone = _build_kernel([row], False, True, backend)
            (expected,) = alone.run(900, warmup=150)
            assert result_key(packed_results[position]) == result_key(
                expected
            )
            assert latency_key(packed_results[position]) == latency_key(
                expected
            )
            assert_tails_match(
                row_tails(packed, position), row_tails(alone, 0)
            )

    def test_constant_r_row_packed_with_geometric_neighbours(self, backend):
        """A degenerate r=1 row never consults the access stream even
        under ``geometric_access_times``; packing it with geometric
        rows must not change anyone's draws."""
        rows = [
            (SystemConfig(2, 2, 1), 3, None),
            (SystemConfig(3, 3, 4, request_probability=0.7), 4, None),
        ]
        packed = _build_kernel(rows, True, True, backend)
        packed_results = packed.run(600, warmup=100)
        for position, row in enumerate(rows):
            alone = _build_kernel([row], True, True, backend)
            (expected,) = alone.run(600, warmup=100)
            assert result_key(packed_results[position]) == result_key(
                expected
            )
            assert latency_key(packed_results[position]) == latency_key(
                expected
            )
            assert_tails_match(
                row_tails(packed, position), row_tails(alone, 0)
            )


class TestFleetLayerPacking:
    def _fragmented_cases(self):
        cases = []
        for ratio in (1, 2, 4):
            for memories in (2, 3):
                for replication in range(2):
                    cases.append(
                        SimulationCase(
                            SystemConfig(3, memories, ratio),
                            400,
                            replication,
                            warmup=80,
                            kernel="batch",
                        )
                    )
        return cases

    def test_run_fleet_pack_toggle_changes_no_bytes(self):
        cases = self._fragmented_cases()
        packed = run_fleet(cases, pack=True)
        unpacked = run_fleet(cases, pack=False)
        for row_packed, row_unpacked in zip(packed, unpacked):
            assert result_key(row_packed) == result_key(row_unpacked)
            assert latency_key(row_packed) == latency_key(row_unpacked)

    def test_packed_scenario_units_are_byte_identical(self):
        from repro.scenarios.compiler import compile_scenario
        from repro.scenarios.execute import render_report, run_units
        from repro.scenarios.spec import (
            GridAxis,
            ReplicationPlan,
            ScenarioSpec,
        )

        spec = ScenarioSpec(
            name="packing-bytes",
            description="fragmented grid fixture",
            base={"processors": 3},
            grid=(
                GridAxis("memories", (2, 4)),
                GridAxis("memory_cycle_ratio", (1, 3)),
            ),
            cycles=400,
            plan=ReplicationPlan(2, 9),
            metrics=("latency",),
        )
        units = compile_scenario(spec, kernel="batch")
        packed = render_report(run_units(units, pack=True))
        unpacked = render_report(run_units(units, pack=False))
        assert packed == unpacked

    def test_packing_coarsens_kernel_call_count(self):
        """The wall-clock lever itself: the fragmented sweep above is
        one packed kernel call instead of one per shape."""
        from repro.parallel.fleet import group_fleets, pack_fleets

        cases = self._fragmented_cases()
        assert len(pack_fleets(cases)) == 1
        assert len(group_fleets(cases)) == 6
