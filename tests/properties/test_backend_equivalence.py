"""Property tests: the numpy and numba batch backends are bit-identical.

The backend-equivalence gate.  The numba backend reimplements the batch
kernel's vectorized cycle loop as a scalar (JIT-compilable) program over
the *same* state arrays and the *same* per-row Philox streams; sharing
the ``simulation-batch@1`` cache namespace with numpy is only sound if
the two backends agree on every byte.  These properties drive
randomized lockstep fleets - every workload family, both buffering
modes, both tie-break policies, partial load, latency collection,
geometric access times - through both backends and assert exact
equality of

* every counter of every row's :class:`SimulationResult` (completions,
  transfers, busy cycles, latency sums, batch EBW curves);
* the latency quantile sketches (identical percentile reports); and
* the RNG end-states: after the run, both kernels' streams must
  produce identical *future* draws, proving they consumed exactly the
  same variates (compared through the lanes API - the chunked numba
  driver refills buffers eagerly, so raw buffer snapshots legitimately
  differ while the streams are identical).

The interpreted backend (``NumbaBackend(jit=False)``) runs the same
loop functions in plain Python, so this gate holds on hosts without
numba; when numba is importable the identical properties run again
under the JIT (``@pytest.mark.jit``-free: plain parametrize + skip).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.bus.backends import (  # noqa: E402
    NumbaBackend,
    NumbaParallelBackend,
)
from repro.bus.batch import BatchBusKernel  # noqa: E402
from repro.core.config import SystemConfig  # noqa: E402
from repro.core.policy import Priority, TieBreak  # noqa: E402
from repro.workloads.spec import (  # noqa: E402
    HotSpotWorkload,
    RequestMixWorkload,
    TraceWorkload,
)


def _numba_importable() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


BACKENDS = [
    pytest.param(lambda: NumbaBackend(jit=False), id="numba-interpreted"),
    pytest.param(
        lambda: NumbaBackend(jit=True),
        id="numba-jit",
        marks=pytest.mark.skipif(
            not _numba_importable(),
            reason="numba not installed ([batch-jit] extra)",
        ),
    ),
    pytest.param(
        lambda: NumbaParallelBackend(jit=False),
        id="numba-parallel-interpreted",
    ),
    pytest.param(
        lambda: NumbaParallelBackend(jit=True),
        id="numba-parallel-jit",
        marks=pytest.mark.skipif(
            not _numba_importable(),
            reason="numba not installed ([batch-jit] extra)",
        ),
    ),
]


def result_key(result):
    """Every field of a batch SimulationResult that must coincide."""
    return (
        result.config,
        result.cycles,
        result.completions,
        result.request_transfers,
        result.response_transfers,
        result.memory_busy_cycles,
        result.total_latency,
        result.batch_ebws,
        result.seed,
        result.warmup_cycles,
    )


def latency_key(result):
    """The latency report's full byte surface (or None)."""
    if result.latency is None:
        return None
    report = result.latency
    return tuple(
        (
            summary.count,
            summary.mean,
            summary.p50_value,
            summary.p90_value,
            summary.p99_value,
            summary.max_value,
        )
        for summary in (report.wait, report.service, report.total)
    )


def stream_tails(kernel, draws: int = 3):
    """The next ``draws`` all-row draws of every active RNG stream.

    Drawing *through the lanes API* is the correct end-state probe: it
    proves both backends consumed exactly the same number of variates
    from every stream, while staying insensitive to how eagerly each
    backend's driver refilled its buffer.
    """
    tails = []
    for lanes in (
        kernel._targets_lanes,
        kernel._think_lanes,
        kernel._arb_lanes,
        kernel._access_lanes,
    ):
        if lanes is None:
            tails.append(None)
            continue
        tails.append(tuple(tuple(lanes.take_all()) for _ in range(draws)))
    return tails


@st.composite
def fleet_specs(draw):
    buffered = draw(st.booleans())
    shape = dict(
        processors=draw(st.integers(min_value=1, max_value=5)),
        memories=draw(st.integers(min_value=1, max_value=5)),
        memory_cycle_ratio=draw(st.integers(min_value=1, max_value=5)),
        priority=draw(st.sampled_from(list(Priority))),
        tie_break=draw(st.sampled_from(list(TieBreak))),
        buffered=buffered,
        buffer_depth=draw(st.sampled_from([1, 2, 3])) if buffered else 1,
    )
    geometric = draw(st.booleans())
    collect_latency = draw(st.booleans())
    rows = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        seed = draw(st.integers(min_value=0, max_value=2**31))
        p = draw(st.sampled_from([0.3, 0.7, 1.0]))
        config = SystemConfig(request_probability=p, **shape)
        kind = draw(st.sampled_from(["uniform", "hot_spot", "trace", "mix"]))
        if kind == "hot_spot":
            workload = HotSpotWorkload(
                hot_fraction=draw(st.sampled_from([0.0, 0.4, 1.0])),
                hot_module=draw(
                    st.integers(min_value=0, max_value=config.memories - 1)
                ),
            )
        elif kind == "trace":
            length = draw(st.integers(min_value=1, max_value=4))
            workload = TraceWorkload(
                tuple(
                    tuple(
                        draw(
                            st.integers(
                                min_value=0, max_value=config.memories - 1
                            )
                        )
                        for _ in range(length)
                    )
                    for _ in range(config.processors)
                )
            )
        elif kind == "mix":
            workload = RequestMixWorkload(
                tuple(
                    draw(st.sampled_from([0.4, 0.9, 1.0]))
                    for _ in range(config.processors)
                )
            )
        else:
            workload = None
        rows.append((config, seed, workload))
    return rows, geometric, collect_latency


def _build_kernel(rows, geometric, collect_latency, backend):
    configs = [config for config, _, _ in rows]
    seeds = [seed for _, seed, _ in rows]
    targets = [
        workload.build_targets(config, seed) if workload is not None else None
        for config, seed, workload in rows
    ]
    probabilities = [
        workload.request_probabilities(config)
        if workload is not None
        else None
        for config, _, workload in rows
    ]
    return BatchBusKernel(
        configs,
        seeds,
        targets=targets,
        request_probabilities=probabilities,
        collect_latency=collect_latency,
        geometric_access_times=geometric,
        backend=backend,
    )


@pytest.mark.parametrize("make_backend", BACKENDS)
class TestBackendEquivalence:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_fleet_results_and_rng_end_states_are_bit_identical(
        self, make_backend, data
    ):
        rows, geometric, collect_latency = data.draw(fleet_specs())
        reference = _build_kernel(rows, geometric, collect_latency, "numpy")
        candidate = _build_kernel(
            rows, geometric, collect_latency, make_backend()
        )
        expected = reference.run(400, warmup=80)
        actual = candidate.run(400, warmup=80)
        for row_expected, row_actual in zip(expected, actual):
            assert result_key(row_actual) == result_key(row_expected)
            assert latency_key(row_actual) == latency_key(row_expected)
        assert stream_tails(candidate) == stream_tails(reference)

    def test_long_run_crosses_chunk_refills(self, make_backend):
        """9,000+ cycles forces several RNG-buffer refills per stream;
        the chunked numba driver must re-enter its loop seamlessly."""
        config = SystemConfig(3, 3, 2, request_probability=0.7)
        reference = _build_kernel([(config, 11, None)], False, True, "numpy")
        candidate = _build_kernel(
            [(config, 11, None)], False, True, make_backend()
        )
        expected = reference.run(9_000, warmup=500)
        actual = candidate.run(9_000, warmup=500)
        assert result_key(actual[0]) == result_key(expected[0])
        assert latency_key(actual[0]) == latency_key(expected[0])
        assert stream_tails(candidate) == stream_tails(reference)

    def test_geometric_buffered_fcfs_heterogeneous_p(self, make_backend):
        """The deepest combined path: geometric access draws through the
        multi-pull sites, FCFS tie-break, buffered queues, per-row p."""
        config = SystemConfig(
            4,
            3,
            4,
            priority=Priority.MEMORIES,
            tie_break=TieBreak.FCFS,
            buffered=True,
            buffer_depth=2,
        )
        rows = [
            (config, 3, RequestMixWorkload((0.4, 0.9, 1.0, 0.7))),
            (config, 4, None),
        ]
        reference = _build_kernel(rows, True, False, "numpy")
        candidate = _build_kernel(rows, True, False, make_backend())
        expected = reference.run(2_000, warmup=200)
        actual = candidate.run(2_000, warmup=200)
        for row_expected, row_actual in zip(expected, actual):
            assert result_key(row_actual) == result_key(row_expected)
        assert stream_tails(candidate) == stream_tails(reference)
