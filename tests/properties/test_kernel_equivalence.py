"""Property tests: the fast kernel is bit-identical to the reference loop.

A randomized fleet of configurations, workloads, seeds and measurement
windows runs through both :class:`repro.bus.system.MultiplexedBusSystem`
and :class:`repro.bus.kernel.FastBusKernel`; every comparison is exact
equality - counters, batch EBWs, streaming latency summaries and the
final states of every consumed random stream.  This contract is what
lets the kernel choice stay out of cache keys and report bytes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus import simulate
from repro.bus.kernel import FastBusKernel, run_fast
from repro.bus.system import MultiplexedBusSystem
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority, TieBreak
from repro.parallel.workers import SimulationCase, run_case
from repro.workloads.spec import (
    HotSpotWorkload,
    RequestMixWorkload,
    TraceWorkload,
)


@st.composite
def fleet_configs(draw):
    buffered = draw(st.booleans())
    return SystemConfig(
        processors=draw(st.integers(min_value=1, max_value=6)),
        memories=draw(st.integers(min_value=1, max_value=6)),
        memory_cycle_ratio=draw(st.integers(min_value=1, max_value=6)),
        request_probability=draw(st.sampled_from([0.2, 0.5, 0.9, 1.0])),
        priority=draw(st.sampled_from(list(Priority))),
        buffered=buffered,
        buffer_depth=draw(st.sampled_from([1, 2, 3])) if buffered else 1,
        tie_break=draw(st.sampled_from(list(TieBreak))),
    )


@st.composite
def measurement_windows(draw):
    return (
        draw(st.integers(min_value=1, max_value=400)),      # cycles
        draw(st.sampled_from([None, 0, 13, 80])),           # warmup
        draw(st.sampled_from([0, 1, 7, 20])),               # batches
    )


@st.composite
def workloads_for(draw, config):
    kind = draw(st.sampled_from(["uniform", "hot_spot", "trace", "mix"]))
    if kind == "hot_spot":
        return HotSpotWorkload(
            hot_fraction=draw(st.sampled_from([0.0, 0.3, 1.0])),
            hot_module=draw(
                st.integers(min_value=0, max_value=config.memories - 1)
            ),
        )
    if kind == "trace":
        length = draw(st.integers(min_value=1, max_value=5))
        traces = tuple(
            tuple(
                draw(st.integers(min_value=0, max_value=config.memories - 1))
                for _ in range(length)
            )
            for _ in range(config.processors)
        )
        return TraceWorkload(traces)
    if kind == "mix":
        return RequestMixWorkload(
            tuple(
                draw(st.sampled_from([0.3, 0.8, 1.0]))
                for _ in range(config.processors)
            )
        )
    return None


def result_key(result):
    """Every value of a SimulationResult that must match exactly."""
    latency = result.latency.payload() if result.latency is not None else None
    return (
        result.cycles,
        result.completions,
        result.request_transfers,
        result.response_transfers,
        result.memory_busy_cycles,
        result.total_latency,
        result.batch_ebws,
        result.warmup_cycles,
        latency,
    )


def reference_rng_states(system: MultiplexedBusSystem) -> dict[str, object]:
    """Final stream states of a reference run, kernel-comparable."""
    return {
        "think": system.processors[0]._think_stream._random.getstate(),
        "arbitration": system.arbiter._stream._random.getstate(),
    }


class TestBitIdentical:
    @given(
        fleet_configs(),
        st.integers(min_value=0, max_value=2**31),
        measurement_windows(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_fleet(self, config, seed, window, collect):
        cycles, warmup, batches = window
        reference_system = MultiplexedBusSystem(
            config, seed=seed, collect_latency=collect
        )
        reference = reference_system.run(cycles, warmup=warmup, batches=batches)
        kernel = FastBusKernel(config, seed=seed, collect_latency=collect)
        fast = kernel.run(cycles, warmup=warmup, batches=batches)
        assert result_key(reference) == result_key(fast)
        # RNG consumption: identical draw counts leave identical states.
        states = kernel.rng_states()
        expected = reference_rng_states(reference_system)
        assert states["think"] == expected["think"]
        assert states["arbitration"] == expected["arbitration"]
        targets = reference_system.processors[0]._targets
        assert states["targets"] == targets._stream._random.getstate()

    @given(
        st.data(),
        fleet_configs(),
        st.integers(min_value=0, max_value=2**31),
        measurement_windows(),
    )
    @settings(max_examples=60, deadline=None)
    def test_workload_fleet(self, data, config, seed, window):
        workload = data.draw(workloads_for(config))
        cycles, warmup, batches = window
        case = SimulationCase(
            config,
            cycles,
            seed,
            warmup=warmup,
            workload=workload,
            collect_latency=True,
        )
        reference = run_case(case)
        import dataclasses

        fast = run_case(dataclasses.replace(case, kernel="fast"))
        assert result_key(reference) == result_key(fast)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_simulate_entry_point(self, seed):
        config = SystemConfig(4, 4, 3, priority=Priority.PROCESSORS)
        reference = simulate(config, cycles=300, seed=seed)
        fast = simulate(config, cycles=300, seed=seed, kernel="fast")
        assert result_key(reference) == result_key(fast)

    @given(
        fleet_configs(),
        st.integers(min_value=0, max_value=2**31),
        measurement_windows(),
    )
    @settings(max_examples=60, deadline=None)
    def test_geometric_access_fleet(self, config, seed, window):
        """Geometric access times: same draws, same "access-times"
        stream, same event ordering - bit-identical end to end."""
        cycles, warmup, batches = window
        reference_system = MultiplexedBusSystem(
            config, seed=seed, geometric_access_times=True
        )
        reference = reference_system.run(cycles, warmup=warmup, batches=batches)
        kernel = FastBusKernel(config, seed=seed, geometric_access_times=True)
        fast = kernel.run(cycles, warmup=warmup, batches=batches)
        assert result_key(reference) == result_key(fast)
        states = kernel.rng_states()
        streams = reference_system._streams
        assert (
            states["access-times"]
            == streams.get("access-times")._random.getstate()
        )
        assert states["think"] == streams.get("think")._random.getstate()
        assert (
            states["arbitration"]
            == streams.get("arbitration")._random.getstate()
        )

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_simulate_entry_point_geometric(self, seed):
        config = SystemConfig(8, 6, 5, priority=Priority.PROCESSORS,
                              buffered=True)
        reference = simulate(
            config, cycles=300, seed=seed, geometric_access_times=True
        )
        fast = simulate(
            config,
            cycles=300,
            seed=seed,
            kernel="fast",
            geometric_access_times=True,
        )
        assert result_key(reference) == result_key(fast)


class TestCoverageBoundaries:
    def test_custom_samplers_are_rejected(self):
        class Custom:
            def next_target(self, processor):  # pragma: no cover
                return 0

        config = SystemConfig(2, 2, 2)
        try:
            run_fast(config, cycles=10, targets=Custom())
        except ConfigurationError as exc:
            assert "custom samplers" in str(exc)
        else:  # pragma: no cover - defends the capability boundary
            raise AssertionError("custom sampler should be rejected")

    def test_unknown_kernel_name_is_rejected(self):
        config = SystemConfig(2, 2, 2)
        try:
            simulate(config, cycles=10, kernel="warp")
        except ConfigurationError as exc:
            assert "unknown simulation kernel" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("unknown kernel should be rejected")

    def test_run_validation_matches_reference(self):
        config = SystemConfig(2, 2, 2)
        for kwargs in ({"cycles": 0}, {"cycles": 10, "warmup": -1},
                       {"cycles": 10, "batches": -2}):
            for runner in (
                lambda kw: MultiplexedBusSystem(config).run(**kw),
                lambda kw: FastBusKernel(config).run(**kw),
            ):
                try:
                    runner(kwargs)
                except ConfigurationError:
                    continue
                raise AssertionError(f"{kwargs} should be rejected")
