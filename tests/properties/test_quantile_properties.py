"""Property tests for the streaming quantile estimator and summary merge.

Two contracts from :mod:`repro.metrics` are stated as properties:

* **Estimator accuracy.**  While a stream fits the exact buffer the
  P² estimator *is* the empirical quantile - bit-identical to
  ``statistics.quantiles(values, n=100, method="inclusive")``.  Beyond
  the buffer it is approximate, with the documented bound: on uniform,
  exponential and bimodal streams of ``n`` up to 10^4 observations the
  empirical rank of the estimate stays within ``0.12 + 10/n`` of the
  target quantile, and the estimate always lies inside ``[min, max]``.
* **Merge algebra.**  :class:`~repro.metrics.LatencySummary.merge` is
  *exactly* associative and order-invariant (rational arithmetic), with
  the empty summary as identity - the algebraic facts the sharded and
  parallel pipelines rely on for bit-identical aggregation.
"""

from __future__ import annotations

import bisect
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    DEFAULT_EXACT_LIMIT,
    LatencySummary,
    StreamingQuantiles,
    merge_summaries,
)

QUANTILES = (0.5, 0.9, 0.99)

RANK_ERROR_BOUND = 0.12
"""Documented empirical-rank error bound of the streaming estimator
(plus a ``10/n`` small-sample allowance); see
:mod:`repro.metrics.quantiles`."""

observations = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)


def rank_error(ordered: list[float], estimate: float, q: float) -> float:
    """Distance from ``q`` to the empirical-CDF interval of ``estimate``."""
    low = bisect.bisect_left(ordered, estimate) / len(ordered)
    high = bisect.bisect_right(ordered, estimate) / len(ordered)
    if low <= q <= high:
        return 0.0
    return min(abs(low - q), abs(high - q))


def stream_of(kind: str, rng: random.Random, n: int) -> list[float]:
    if kind == "uniform":
        return [rng.random() for _ in range(n)]
    if kind == "exponential":
        return [rng.expovariate(1.0) for _ in range(n)]
    # Bimodal: two well-separated lobes, the adversarial case for
    # interpolating estimators.
    return [
        abs(rng.gauss(1.0, 0.3)) if rng.random() < 0.5 else abs(rng.gauss(25.0, 1.0))
        for _ in range(n)
    ]


class TestExactSmallSampleFallback:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            observations, min_size=5, max_size=DEFAULT_EXACT_LIMIT
        )
    )
    def test_matches_statistics_quantiles_bit_for_bit(self, values):
        collector = StreamingQuantiles()
        for value in values:
            collector.add(value)
        assert collector.exact
        cuts = statistics.quantiles(
            [float(v) for v in values], n=100, method="inclusive"
        )
        assert collector.quantile(0.5) == cuts[49]
        assert collector.quantile(0.9) == cuts[89]
        assert collector.quantile(0.99) == cuts[98]

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(observations, min_size=1, max_size=DEFAULT_EXACT_LIMIT))
    def test_summary_agrees_with_exact_reference(self, values):
        collector = StreamingQuantiles()
        for value in values:
            collector.add(value)
        assert collector.summary() == LatencySummary.from_values(values)


class TestStreamingAccuracyBound:
    @settings(max_examples=25, deadline=None)
    @given(
        kind=st.sampled_from(["uniform", "exponential", "bimodal"]),
        n=st.integers(min_value=5, max_value=400),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_rank_error_bound_small_streams(self, kind, n, seed):
        self._check_stream(kind, n, seed)

    @pytest.mark.parametrize("kind", ["uniform", "exponential", "bimodal"])
    @pytest.mark.parametrize("n", [2_000, 10_000])
    def test_rank_error_bound_large_streams(self, kind, n):
        # The satellite contract reaches n = 10^4; large streams are too
        # slow for hypothesis's example budget, so pin a seed grid.
        for seed in (1, 2, 3):
            self._check_stream(kind, n, seed)

    @staticmethod
    def _check_stream(kind: str, n: int, seed: int) -> None:
        values = stream_of(kind, random.Random(seed), n)
        collector = StreamingQuantiles()
        for value in values:
            collector.add(value)
        ordered = sorted(values)
        for q in QUANTILES:
            estimate = collector.quantile(q)
            assert ordered[0] <= estimate <= ordered[-1]
            allowance = RANK_ERROR_BOUND + 10.0 / n
            assert rank_error(ordered, estimate, q) <= allowance, (
                f"{kind} n={n} q={q}: rank error "
                f"{rank_error(ordered, estimate, q):.4f} > {allowance:.4f}"
            )


summaries = st.lists(observations, min_size=0, max_size=20).map(
    LatencySummary.from_values
)


class TestMergeAlgebra:
    @settings(max_examples=80, deadline=None)
    @given(a=summaries, b=summaries, c=summaries)
    def test_merge_is_exactly_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=80, deadline=None)
    @given(a=summaries, b=summaries)
    def test_merge_is_exactly_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=40, deadline=None)
    @given(a=summaries)
    def test_empty_summary_is_identity(self, a):
        empty = LatencySummary()
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    @settings(max_examples=40, deadline=None)
    @given(
        parts=st.lists(summaries, min_size=1, max_size=6),
        data=st.data(),
    )
    def test_fold_is_order_invariant(self, parts, data):
        shuffled = data.draw(st.permutations(parts), label="merge order")
        assert merge_summaries(shuffled) == merge_summaries(parts)

    @settings(max_examples=40, deadline=None)
    @given(a=summaries, b=summaries)
    def test_merge_aggregates_exactly(self, a, b):
        merged = a.merge(b)
        assert merged.count == a.count + b.count
        assert merged.total == a.total + b.total
        if a.count and b.count:
            assert merged.minimum == min(a.minimum, b.minimum)
            assert merged.maximum == max(a.maximum, b.maximum)
