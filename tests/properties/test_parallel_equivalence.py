"""Property tests: parallel execution is invisible in the results.

The central promise of :mod:`repro.parallel` is that fanning work out
over processes changes wall-clock time and nothing else.  These tests
state that as properties over randomly drawn configurations and seed
sets: serial :func:`repro.des.replications.replicate` and
:class:`repro.parallel.ParallelReplicator` must return identical
estimates, seeds and confidence-interval half widths, and parallel
sweeps must trace identical curves.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweeps import sweep_p, sweep_r
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.des.replications import (
    ebw_estimator,
    latency_estimator,
    replicate,
    replicate_latency,
)
from repro.parallel import EbwTask, LatencyTask, ParallelReplicator
from repro.workloads.spec import HotSpotWorkload, TraceWorkload

CYCLES = 400
"""Tiny runs: equivalence is exact, so statistical strength is irrelevant."""

configs = st.builds(
    SystemConfig,
    processors=st.integers(min_value=1, max_value=4),
    memories=st.integers(min_value=1, max_value=4),
    memory_cycle_ratio=st.integers(min_value=1, max_value=4),
    request_probability=st.sampled_from([0.3, 0.7, 1.0]),
    priority=st.sampled_from(list(Priority)),
    buffered=st.booleans(),
)


class TestReplicationEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        config=configs,
        replications=st.integers(min_value=2, max_value=4),
        base_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_parallel_replicator_matches_serial(
        self, config, replications, base_seed
    ):
        estimator = ebw_estimator(config, cycles=CYCLES)
        serial = replicate(estimator, replications, base_seed=base_seed)
        parallel = ParallelReplicator(max_workers=2).run(
            estimator, replications, base_seed=base_seed
        )
        assert parallel.estimates == serial.estimates
        assert parallel.seeds == serial.seeds
        assert parallel.confidence == serial.confidence
        assert parallel.mean == serial.mean
        assert parallel.half_width == serial.half_width

    @settings(max_examples=8, deadline=None)
    @given(config=configs, base_seed=st.integers(min_value=0, max_value=100))
    def test_worker_count_is_invisible(self, config, base_seed):
        estimator = ebw_estimator(config, cycles=CYCLES)
        results = [
            ParallelReplicator(max_workers=workers).run(
                estimator, 3, base_seed=base_seed
            )
            for workers in (1, 2, 3)
        ]
        assert results[0] == results[1] == results[2]


class TestWorkloadReplicationEquivalence:
    """Hot-spot and trace workloads dispatched through the replicator.

    Same contract as the uniform-workload properties above: fanning the
    replications over worker processes must be invisible in the result.
    """

    @settings(max_examples=8, deadline=None)
    @given(
        config=configs,
        hot_fraction=st.sampled_from([0.0, 0.3, 0.8]),
        base_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_hot_spot_parallel_matches_serial(
        self, config, hot_fraction, base_seed
    ):
        estimator = EbwTask(
            config=config,
            cycles=CYCLES,
            workload=HotSpotWorkload(hot_fraction=hot_fraction),
        )
        serial = replicate(estimator, 3, base_seed=base_seed)
        parallel = ParallelReplicator(max_workers=2).run(
            estimator, 3, base_seed=base_seed
        )
        assert parallel.estimates == serial.estimates
        assert parallel.seeds == serial.seeds
        assert parallel.mean == serial.mean
        assert parallel.half_width == serial.half_width

    @settings(max_examples=8, deadline=None)
    @given(
        config=configs,
        base_seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    def test_trace_parallel_matches_serial(self, config, base_seed, data):
        traces = tuple(
            tuple(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=config.memories - 1),
                        min_size=1,
                        max_size=6,
                    ),
                    label=f"trace for processor {processor}",
                )
            )
            for processor in range(config.processors)
        )
        estimator = EbwTask(
            config=config, cycles=CYCLES, workload=TraceWorkload(traces)
        )
        serial = replicate(estimator, 3, base_seed=base_seed)
        parallel = ParallelReplicator(max_workers=3).run(
            estimator, 3, base_seed=base_seed
        )
        assert parallel.estimates == serial.estimates
        assert parallel.seeds == serial.seeds

    def test_worker_count_is_invisible_for_hot_spot(self):
        config = SystemConfig(3, 4, 2)
        estimator = EbwTask(
            config=config, cycles=CYCLES, workload=HotSpotWorkload(0.4)
        )
        results = [
            ParallelReplicator(max_workers=workers).run(
                estimator, 3, base_seed=17
            )
            for workers in (1, 2, 3)
        ]
        assert results[0] == results[1] == results[2]


class TestLatencyReplicationEquivalence:
    """Latency-distribution aggregation is pool-invariant.

    The percentile pipeline's contract is stricter than "same means":
    the merged wait/service/total summaries - counts, exact totals,
    extrema and every quantile estimate - must be bit-identical whether
    the replications ran serially or on any number of workers.
    """

    @settings(max_examples=6, deadline=None)
    @given(
        config=configs,
        replications=st.integers(min_value=2, max_value=4),
        base_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_parallel_latency_matches_serial(
        self, config, replications, base_seed
    ):
        estimator = latency_estimator(config, cycles=CYCLES)
        serial = replicate_latency(estimator, replications, base_seed=base_seed)
        parallel = ParallelReplicator(max_workers=2).run_latency(
            estimator, replications, base_seed=base_seed
        )
        assert parallel == serial
        assert parallel.merged == serial.merged
        assert parallel.merged.total.count == sum(
            report.total.count for report in serial.reports
        )

    @settings(max_examples=6, deadline=None)
    @given(
        config=configs,
        hot_fraction=st.sampled_from([0.0, 0.4]),
        base_seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_hot_spot_latency_worker_count_invisible(
        self, config, hot_fraction, base_seed
    ):
        estimator = LatencyTask(
            config=config,
            cycles=CYCLES,
            workload=HotSpotWorkload(hot_fraction=hot_fraction),
        )
        results = [
            ParallelReplicator(max_workers=workers).run_latency(
                estimator, 3, base_seed=base_seed
            )
            for workers in (1, 2, 3)
        ]
        assert results[0] == results[1] == results[2]
        assert results[0].merged == results[1].merged == results[2].merged


class TestSeededGridEquivalence:
    """Deterministic grid (no hypothesis) covering the sweep dispatchers."""

    GRID = [
        SystemConfig(2, 2, 2),
        SystemConfig(3, 2, 4, request_probability=0.5),
        SystemConfig(2, 4, 3, priority=Priority.MEMORIES, buffered=True),
    ]

    @pytest.mark.parametrize("config", GRID, ids=lambda c: c.describe())
    def test_sweep_r_identical_curves(self, config):
        values = (1, 2, 4)
        serial = sweep_r(config, values, "serial", cycles=CYCLES, seed=9)
        pooled = sweep_r(
            config, values, "serial", cycles=CYCLES, seed=9, max_workers=2
        )
        assert serial == pooled

    def test_sweep_p_identical_curves(self):
        config = dataclasses.replace(self.GRID[0], request_probability=1.0)
        values = (0.2, 0.6, 1.0)
        serial = sweep_p(config, values, "curve", cycles=CYCLES, seed=3)
        pooled = sweep_p(
            config, values, "curve", cycles=CYCLES, seed=3, max_workers=3
        )
        assert serial.ebw_values() == pooled.ebw_values()
        assert serial.processor_utilization_values() == (
            pooled.processor_utilization_values()
        )

    def test_sensitivity_identical_reports(self):
        from repro.analysis.sensitivity import sensitivity_analysis

        base = SystemConfig(2, 2, 2)
        serial = sensitivity_analysis(base, cycles=CYCLES, seed=5)
        pooled = sensitivity_analysis(
            base, cycles=CYCLES, seed=5, max_workers=2
        )
        assert serial == pooled
