"""Property tests for the discrete-event kernel and queueing solvers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.engine import Engine
from repro.queueing.convolution import throughput
from repro.queueing.mva import solve_mva
from repro.queueing.network import ClosedNetwork, Station, StationKind


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=40,
        )
    )
    def test_events_fire_in_nondecreasing_time_order(self, times):
        engine = Engine()
        fired = []
        for t in times:
            engine.schedule(t, lambda t=t: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)
        assert engine.pending == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_cancellation_drops_exactly_the_cancelled(self, schedule):
        engine = Engine()
        fired = []
        expected = 0
        for t, keep in schedule:
            handle = engine.schedule(t, lambda t=t: fired.append(t))
            if keep:
                expected += 1
            else:
                handle.cancel()
        engine.run()
        assert len(fired) == expected


@st.composite
def closed_networks(draw):
    stations = []
    count = draw(st.integers(min_value=1, max_value=4))
    for i in range(count):
        stations.append(
            Station(
                name=f"q{i}",
                kind=StationKind.QUEUEING,
                visit_ratio=draw(st.floats(min_value=0.1, max_value=3.0)),
                service_time=draw(st.floats(min_value=0.1, max_value=5.0)),
            )
        )
    if draw(st.booleans()):
        stations.append(
            Station(
                name="think",
                kind=StationKind.DELAY,
                visit_ratio=1.0,
                service_time=draw(st.floats(min_value=0.0, max_value=10.0)),
            )
        )
    population = draw(st.integers(min_value=1, max_value=12))
    return ClosedNetwork(stations=tuple(stations), population=population)


class TestQueueingProperties:
    @given(closed_networks())
    @settings(max_examples=40)
    def test_mva_agrees_with_convolution(self, network):
        assert np.isclose(
            solve_mva(network).throughput,
            throughput(network),
            rtol=1e-8,
        )

    @given(closed_networks())
    @settings(max_examples=40)
    def test_throughput_respects_asymptotic_bounds(self, network):
        # X(N) <= min(N / total demand, 1 / bottleneck demand).
        x = solve_mva(network).throughput
        assert x <= network.population / network.total_demand + 1e-9
        assert x <= 1.0 / network.bottleneck_demand + 1e-9
        assert x > 0.0

    @given(closed_networks())
    @settings(max_examples=30)
    def test_queue_lengths_sum_to_population(self, network):
        solution = solve_mva(network)
        assert np.isclose(
            sum(solution.queue_lengths.values()),
            network.population,
            rtol=1e-8,
        )

    @given(closed_networks())
    @settings(max_examples=30)
    def test_throughput_monotone_in_population(self, network):
        bigger = ClosedNetwork(
            stations=network.stations, population=network.population + 1
        )
        assert (
            solve_mva(bigger).throughput
            >= solve_mva(network).throughput - 1e-9
        )
