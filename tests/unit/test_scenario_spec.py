"""Unit tests for scenario specs, file loading, and the registry."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.core.errors import ConfigurationError
from repro.core.policy import Priority
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    load_scenario,
    load_scenario_file,
)
from repro.scenarios.spec import (
    EvaluationMethod,
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
    spec_from_mapping,
)
from repro.workloads.spec import HotSpotWorkload, UniformWorkload


class TestGridAxis:
    def test_single_field_shorthand(self):
        axis = GridAxis("memory_cycle_ratio", (2, 4, 6))
        assert axis.fields == ("memory_cycle_ratio",)
        assert axis.values == ((2,), (4,), (6,))

    def test_joint_axis(self):
        axis = GridAxis(("processors", "memories"), ((4, 4), (8, 8)))
        assert axis.values == ((4, 4), (8, 8))

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            GridAxis("bandwidth", (1, 2))

    def test_workload_fields_allowed(self):
        axis = GridAxis("workload.hot_fraction", (0.0, 0.5))
        assert axis.fields == ("workload.hot_fraction",)

    def test_value_arity_must_match_fields(self):
        with pytest.raises(ConfigurationError):
            GridAxis(("processors", "memories"), ((4, 4, 4),))

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            GridAxis("memories", ())

    def test_priority_strings_coerce_to_enum(self):
        axis = GridAxis("priority", ("processors", "memories"))
        assert axis.values == ((Priority.PROCESSORS,), (Priority.MEMORIES,))


class TestScenarioSpec:
    def test_duplicate_fields_across_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="bad",
                base={"processors": 2, "memories": 2},
                grid=(
                    GridAxis("memory_cycle_ratio", (2, 4)),
                    GridAxis(("memory_cycle_ratio",), ((8,),)),
                ),
            )

    def test_unknown_base_field_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="bad", base={"modules": 4})

    def test_points_order_is_row_major(self):
        spec = ScenarioSpec(
            name="order",
            base={"processors": 2},
            grid=(
                GridAxis("memories", (2, 4)),
                GridAxis("memory_cycle_ratio", (1, 3)),
            ),
        )
        combos = [
            (config.memories, config.memory_cycle_ratio)
            for config, _ in spec.points()
        ]
        assert combos == [(2, 1), (2, 3), (4, 1), (4, 3)]

    def test_workload_axis_overrides_spec_workload(self):
        spec = ScenarioSpec(
            name="hot",
            base={"processors": 2, "memories": 4, "memory_cycle_ratio": 2},
            grid=(GridAxis("workload.hot_fraction", (0.0, 0.5)),),
            workload=HotSpotWorkload(hot_fraction=0.0),
        )
        fractions = [workload.hot_fraction for _, workload in spec.points()]
        assert fractions == [0.0, 0.5]

    def test_workload_override_on_uniform_rejected(self):
        spec = ScenarioSpec(
            name="bad",
            base={"processors": 2, "memories": 2, "memory_cycle_ratio": 2},
            grid=(GridAxis("workload.hot_fraction", (0.5,)),),
        )
        with pytest.raises(ConfigurationError):
            list(spec.points())

    def test_underspecified_config_rejected(self):
        spec = ScenarioSpec(name="partial", base={"processors": 2})
        with pytest.raises(ConfigurationError):
            list(spec.points())

    def test_analytic_methods_require_uniform_workload(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="bad",
                base={"processors": 2, "memories": 2, "memory_cycle_ratio": 2},
                method=EvaluationMethod.MARKOV,
                workload=HotSpotWorkload(0.2),
            )

    def test_plan_seeds(self):
        assert ReplicationPlan(3, 10).seeds == (10, 11, 12)

    def test_payload_is_json_able(self):
        spec = get_scenario("figure2")
        encoded = json.dumps(spec.payload(), sort_keys=True)
        assert "figure2" in encoded


class TestSpecFromMapping:
    def _mapping(self):
        return {
            "name": "custom",
            "description": "a test scenario",
            "cycles": 1_000,
            "base": {
                "processors": 2,
                "memories": 4,
                "memory_cycle_ratio": 2,
                "priority": "memories",
            },
            "grid": [
                {"field": "buffered", "values": [False, True]},
                {"fields": ["workload.hot_fraction"], "values": [0.0, 0.4]},
            ],
            "workload": {"kind": "hot_spot", "hot_fraction": 0.0},
            "replications": {"count": 2, "base_seed": 11},
        }

    def test_full_round_trip(self):
        spec = spec_from_mapping(self._mapping())
        assert spec.name == "custom"
        assert spec.base["priority"] is Priority.MEMORIES
        assert spec.plan == ReplicationPlan(2, 11)
        assert spec.workload == HotSpotWorkload(0.0)
        assert spec.grid_size() == 4

    def test_defaults(self):
        spec = spec_from_mapping(
            {
                "name": "tiny",
                "base": {
                    "processors": 1,
                    "memories": 1,
                    "memory_cycle_ratio": 1,
                },
            }
        )
        assert spec.method is EvaluationMethod.SIMULATION
        assert spec.workload == UniformWorkload()
        assert spec.plan == ReplicationPlan()

    def test_unknown_keys_rejected(self):
        data = self._mapping()
        data["shards"] = 4
        with pytest.raises(ConfigurationError):
            spec_from_mapping(data)

    def test_unknown_method_rejected(self):
        data = self._mapping()
        data["method"] = "quantum"
        with pytest.raises(ConfigurationError):
            spec_from_mapping(data)

    def test_axis_needs_field_and_values(self):
        data = self._mapping()
        data["grid"] = [{"values": [1, 2]}]
        with pytest.raises(ConfigurationError):
            spec_from_mapping(data)


class TestFileLoading:
    TOML = textwrap.dedent(
        """
        name = "from-toml"
        cycles = 2000

        [base]
        processors = 2
        memories = 2
        memory_cycle_ratio = 2

        [[grid]]
        field = "request_probability"
        values = [0.5, 1.0]

        [replications]
        count = 2
        base_seed = 3
        """
    )

    def test_toml_file(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text(self.TOML)
        spec = load_scenario_file(path)
        assert spec.name == "from-toml"
        assert spec.grid_size() == 2
        assert spec.plan.seeds == (3, 4)

    def test_json_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(
            json.dumps(
                {
                    "name": "from-json",
                    "base": {
                        "processors": 2,
                        "memories": 2,
                        "memory_cycle_ratio": 2,
                    },
                }
            )
        )
        assert load_scenario_file(path).name == "from-json"

    def test_malformed_toml_reports_cleanly(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("name = [unclosed")
        with pytest.raises(ConfigurationError):
            load_scenario_file(path)

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        path.write_text("name: nope")
        with pytest.raises(ConfigurationError):
            load_scenario_file(path)

    def test_load_scenario_dispatches_name_vs_path(self, tmp_path):
        assert load_scenario("figure2").name == "figure2"
        path = tmp_path / "file.toml"
        path.write_text(self.TOML)
        assert load_scenario(str(path)).name == "from-toml"


class TestRegistry:
    PAPER_NAMES = {
        "figure2",
        "figure3",
        "figure5",
        "figure6",
        "table3a",
        "table3b",
        "table4",
        "hot_spot",
    }
    EXTENSION_NAMES = {
        "hot-spot-severity",
        "buffer-depth-scaling",
        "heterogeneous-p",
        "saturation-stress",
        "product-form-mva",
    }

    def test_builtin_scenarios_registered(self):
        names = {spec.name for spec in all_scenarios()}
        assert self.PAPER_NAMES <= names
        assert self.EXTENSION_NAMES <= names

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="figure2"):
            get_scenario("figure9")

    def test_every_builtin_compiles(self):
        from repro.scenarios.compiler import compile_scenario

        for spec in all_scenarios():
            units = compile_scenario(spec)
            assert len(units) == spec.grid_size() * spec.plan.replications


class TestMetricsField:
    BASE = {"processors": 2, "memories": 2, "memory_cycle_ratio": 2}

    def test_default_is_empty(self):
        assert ScenarioSpec(name="s", base=self.BASE).metrics == ()

    def test_sorted_and_deduplicated(self):
        spec = ScenarioSpec(
            name="s", base=self.BASE, metrics=("latency", "latency")
        )
        assert spec.metrics == ("latency",)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            ScenarioSpec(name="s", base=self.BASE, metrics=("power",))

    def test_string_metrics_rejected(self):
        with pytest.raises(ConfigurationError, match="not a string"):
            ScenarioSpec(name="s", base=self.BASE, metrics="latency")

    def test_non_iterable_metrics_rejected_as_config_error(self):
        with pytest.raises(ConfigurationError, match="sequence of metric"):
            ScenarioSpec(name="s", base=self.BASE, metrics=5)

    def test_mapping_metrics_rejected_as_config_error(self):
        # A TOML inline table must not iterate into its keys and
        # silently enable the metric the user tried to toggle off.
        with pytest.raises(ConfigurationError, match="table"):
            ScenarioSpec(name="s", base=self.BASE, metrics={"latency": False})

    def test_non_string_metric_entries_rejected_as_config_error(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            ScenarioSpec(name="s", base=self.BASE, metrics=("latency", 1))

    @pytest.mark.parametrize(
        "method",
        [
            EvaluationMethod.MARKOV,
            EvaluationMethod.CROSSBAR,
            EvaluationMethod.BANDWIDTH,
            EvaluationMethod.BOUNDS,
            EvaluationMethod.APPROX,
        ],
    )
    def test_metrics_need_a_capable_evaluator(self, method):
        with pytest.raises(ConfigurationError, match="analytic"):
            ScenarioSpec(
                name="s", base=self.BASE, method=method, metrics=("latency",)
            )

    def test_mva_supports_the_latency_metric(self):
        # The mva evaluator serves the latency metric analytically
        # (Little's-law mean-wait/queue-length columns).
        base = dict(self.BASE)
        base["buffered"] = True
        spec = ScenarioSpec(
            name="s",
            base=base,
            method=EvaluationMethod.MVA,
            metrics=("latency",),
        )
        assert spec.metrics == ("latency",)

    def test_payload_lists_metrics(self):
        spec = ScenarioSpec(name="s", base=self.BASE, metrics=("latency",))
        assert spec.payload()["metrics"] == ["latency"]

    def test_mapping_round_trip(self):
        spec = spec_from_mapping(
            {
                "name": "with-metrics",
                "base": dict(self.BASE),
                "metrics": ["latency"],
            }
        )
        assert spec.metrics == ("latency",)
        with pytest.raises(ConfigurationError, match="list of metric names"):
            spec_from_mapping(
                {"name": "bad", "base": dict(self.BASE), "metrics": "latency"}
            )


class TestBandwidthMethod:
    def test_parsed_from_mapping(self):
        spec = spec_from_mapping(
            {
                "name": "bw",
                "method": "bandwidth",
                "base": {
                    "processors": 2,
                    "memories": 2,
                    "memory_cycle_ratio": 2,
                },
            }
        )
        assert spec.method is EvaluationMethod.BANDWIDTH

    def test_analytic_restrictions_apply(self):
        with pytest.raises(ConfigurationError, match="analytic"):
            ScenarioSpec(
                name="bw",
                base={"processors": 2, "memories": 2, "memory_cycle_ratio": 2},
                method=EvaluationMethod.BANDWIDTH,
                workload=HotSpotWorkload(hot_fraction=0.5),
            )

    def test_new_studies_registered(self):
        names = {spec.name for spec in all_scenarios()}
        assert {"latency-tail", "bandwidth-vs-simulation"} <= names
        assert get_scenario("latency-tail").metrics == ("latency",)
        assert (
            get_scenario("bandwidth-vs-simulation").method
            is EvaluationMethod.BANDWIDTH
        )
