"""Unit tests for :mod:`repro.bus.trace`."""

from __future__ import annotations

from repro.bus import MultiplexedBusSystem
from repro.bus.trace import (
    NullTrace,
    TraceEvent,
    TraceEventKind,
    TraceRecorder,
)
from repro.core.config import SystemConfig


class TestRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        recorder.record(TraceEvent(0, TraceEventKind.BUS_IDLE))
        recorder.record(TraceEvent(1, TraceEventKind.REQUEST_TRANSFER, 0, 1))
        assert [e.cycle for e in recorder.events] == [0, 1]

    def test_of_kind(self):
        recorder = TraceRecorder()
        recorder.record(TraceEvent(0, TraceEventKind.BUS_IDLE))
        recorder.record(TraceEvent(1, TraceEventKind.RESPONSE_TRANSFER, 0, 1))
        assert len(recorder.of_kind(TraceEventKind.BUS_IDLE)) == 1
        assert len(recorder.of_kind(TraceEventKind.REQUEST_TRANSFER)) == 0

    def test_null_trace_discards(self):
        sink = NullTrace()
        sink.record(TraceEvent(0, TraceEventKind.BUS_IDLE))  # no error, no state


class TestSystemIntegration:
    def test_every_cycle_has_exactly_one_bus_event(self):
        recorder = TraceRecorder()
        config = SystemConfig(4, 4, 3)
        system = MultiplexedBusSystem(config, seed=1, trace=recorder)
        cycles = 300
        for _ in range(cycles):
            system.step()
        bus_events = recorder.bus_events()
        assert len(bus_events) == cycles
        assert [e.cycle for e in bus_events] == list(range(cycles))

    def test_transfer_counts_match_system_counters(self):
        recorder = TraceRecorder()
        config = SystemConfig(4, 4, 3)
        system = MultiplexedBusSystem(config, seed=1, trace=recorder)
        for _ in range(500):
            system.step()
        requests = recorder.of_kind(TraceEventKind.REQUEST_TRANSFER)
        responses = recorder.of_kind(TraceEventKind.RESPONSE_TRANSFER)
        assert len(requests) == system.request_transfers
        assert len(responses) == system.response_transfers

    def test_request_response_alternate_per_processor(self):
        # For any single processor the trace must alternate strictly:
        # request, response, request, response, ...
        recorder = TraceRecorder()
        config = SystemConfig(3, 3, 2)
        system = MultiplexedBusSystem(config, seed=2, trace=recorder)
        for _ in range(600):
            system.step()
        for processor in range(3):
            kinds = [
                event.kind
                for event in recorder.events
                if event.processor == processor
                and event.kind
                in (TraceEventKind.REQUEST_TRANSFER, TraceEventKind.RESPONSE_TRANSFER)
            ]
            for i, kind in enumerate(kinds):
                expected = (
                    TraceEventKind.REQUEST_TRANSFER
                    if i % 2 == 0
                    else TraceEventKind.RESPONSE_TRANSFER
                )
                assert kind is expected

    def test_response_cycle_at_least_r_plus_1_after_request(self):
        recorder = TraceRecorder()
        config = SystemConfig(4, 4, 5)
        system = MultiplexedBusSystem(config, seed=3, trace=recorder)
        for _ in range(800):
            system.step()
        last_request: dict[int, int] = {}
        for event in recorder.events:
            if event.kind is TraceEventKind.REQUEST_TRANSFER:
                last_request[event.processor] = event.cycle
            elif event.kind is TraceEventKind.RESPONSE_TRANSFER:
                if event.processor in last_request:
                    gap = event.cycle - last_request[event.processor]
                    assert gap >= config.memory_cycle_ratio + 1
