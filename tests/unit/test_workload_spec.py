"""Unit tests for the declarative workload specs and their cache keys."""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.parallel.cache import case_payload, fingerprint
from repro.parallel.workers import SimulationCase, run_case
from repro.workloads.generators import HotSpotTargets, TraceTargets
from repro.workloads.spec import (
    HotSpotWorkload,
    RequestMixWorkload,
    TraceWorkload,
    UniformWorkload,
    workload_from_payload,
    workload_payload,
)


class TestValidation:
    def test_hot_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            HotSpotWorkload(hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            HotSpotWorkload(hot_fraction=-0.1)

    def test_hot_module_must_exist(self):
        workload = HotSpotWorkload(hot_fraction=0.2, hot_module=4)
        with pytest.raises(ConfigurationError):
            workload.validate(SystemConfig(2, 4, 2))
        workload.validate(SystemConfig(2, 5, 2))

    def test_trace_requires_nonempty_traces(self):
        with pytest.raises(ConfigurationError):
            TraceWorkload(traces=())
        with pytest.raises(ConfigurationError):
            TraceWorkload(traces=((),))

    def test_trace_covers_all_processors(self):
        workload = TraceWorkload(traces=((0, 1), (1, 0)))
        with pytest.raises(ConfigurationError):
            workload.validate(SystemConfig(3, 2, 2))
        workload.validate(SystemConfig(2, 2, 2))

    def test_trace_targets_must_exist(self):
        workload = TraceWorkload(traces=((0, 3),))
        with pytest.raises(ConfigurationError):
            workload.validate(SystemConfig(1, 2, 2))

    def test_request_mix_probability_range(self):
        with pytest.raises(ConfigurationError):
            RequestMixWorkload(probabilities=(0.5, 0.0))
        with pytest.raises(ConfigurationError):
            RequestMixWorkload(probabilities=(1.5,))

    def test_request_mix_length_must_match_processors(self):
        workload = RequestMixWorkload(probabilities=(0.5, 1.0))
        with pytest.raises(ConfigurationError):
            workload.validate(SystemConfig(3, 2, 2))
        workload.validate(SystemConfig(2, 2, 2))


class TestBuildTargets:
    def test_uniform_builds_nothing(self):
        assert UniformWorkload().build_targets(SystemConfig(2, 2, 2), 0) is None

    def test_hot_spot_builds_generator(self):
        targets = HotSpotWorkload(0.3).build_targets(SystemConfig(2, 4, 2), 1)
        assert isinstance(targets, HotSpotTargets)
        assert 0 <= targets.next_target(0) < 4

    def test_trace_builds_replaying_generator(self):
        workload = TraceWorkload(traces=((0, 1, 2),))
        targets = workload.build_targets(SystemConfig(1, 3, 2), 0)
        assert isinstance(targets, TraceTargets)
        assert [targets.next_target(0) for _ in range(4)] == [0, 1, 2, 0]

    def test_request_mix_overrides_per_processor_p(self):
        workload = RequestMixWorkload(probabilities=(0.5, 1.0))
        config = SystemConfig(2, 2, 2)
        assert workload.request_probabilities(config) == (0.5, 1.0)
        assert workload.build_targets(config, 0) is None


class TestPayloadRoundTrip:
    WORKLOADS = [
        UniformWorkload(),
        HotSpotWorkload(hot_fraction=0.25, hot_module=1),
        TraceWorkload(traces=((0, 1), (1, 0))),
        RequestMixWorkload(probabilities=(0.5, 1.0)),
    ]

    @pytest.mark.parametrize(
        "workload", WORKLOADS, ids=lambda w: w.kind
    )
    def test_round_trip(self, workload):
        assert workload_from_payload(workload_payload(workload)) == workload

    @pytest.mark.parametrize(
        "workload", WORKLOADS, ids=lambda w: w.kind
    )
    def test_picklable(self, workload):
        assert pickle.loads(pickle.dumps(workload)) == workload

    def test_none_encodes_as_uniform(self):
        assert workload_payload(None) == workload_payload(UniformWorkload())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            workload_from_payload({"kind": "bursty"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            workload_from_payload({"kind": "uniform", "intensity": 2.0})


class TestCacheKeyCoverage:
    """The workload/cache gap: non-uniform runs get distinct keys."""

    def test_workloads_cannot_collide(self):
        config = SystemConfig(2, 4, 2)
        cases = [
            SimulationCase(config, 1_000, 3),
            SimulationCase(config, 1_000, 3, workload=HotSpotWorkload(0.5)),
            SimulationCase(
                config, 1_000, 3, workload=TraceWorkload(((0, 1), (2, 3)))
            ),
            SimulationCase(
                config, 1_000, 3, workload=RequestMixWorkload((0.5, 1.0))
            ),
        ]
        keys = {fingerprint(case_payload(case)) for case in cases}
        assert len(keys) == len(cases)

    def test_hot_spot_parameters_reach_the_key(self):
        config = SystemConfig(2, 4, 2)
        a = SimulationCase(config, 1_000, 3, workload=HotSpotWorkload(0.2))
        b = SimulationCase(config, 1_000, 3, workload=HotSpotWorkload(0.3))
        c = SimulationCase(
            config, 1_000, 3, workload=HotSpotWorkload(0.2, hot_module=1)
        )
        keys = {fingerprint(case_payload(case)) for case in (a, b, c)}
        assert len(keys) == 3

    def test_explicit_uniform_equals_default(self):
        config = SystemConfig(2, 4, 2)
        implicit = SimulationCase(config, 1_000, 3)
        explicit = SimulationCase(config, 1_000, 3, workload=UniformWorkload())
        assert fingerprint(case_payload(implicit)) == fingerprint(
            case_payload(explicit)
        )


class TestRunCase:
    def test_uniform_workload_matches_plain_simulate(self):
        from repro.bus import simulate

        config = SystemConfig(2, 2, 2)
        plain = simulate(config, cycles=800, seed=5)
        spec_run = run_case(
            SimulationCase(config, 800, 5, workload=UniformWorkload())
        )
        assert spec_run == plain

    def test_hot_spot_workload_changes_results(self):
        config = SystemConfig(4, 8, 4)
        uniform = run_case(SimulationCase(config, 2_000, 5))
        hot = run_case(
            SimulationCase(config, 2_000, 5, workload=HotSpotWorkload(0.8))
        )
        assert hot.ebw < uniform.ebw

    def test_request_mix_workload_runs(self):
        config = SystemConfig(2, 2, 2)
        result = run_case(
            SimulationCase(
                config, 1_000, 5, workload=RequestMixWorkload((0.3, 1.0))
            )
        )
        assert 0.0 < result.ebw <= config.max_ebw

    def test_invalid_workload_rejected_at_run(self):
        config = SystemConfig(4, 2, 2)
        case = SimulationCase(
            config, 500, 0, workload=RequestMixWorkload((1.0, 1.0))
        )
        with pytest.raises(ConfigurationError):
            run_case(case)
