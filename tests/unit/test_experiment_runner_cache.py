"""Runner-level tests: --jobs / --cache wiring and result serialization."""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.registry import ExperimentResult
from repro.experiments.runner import main, run_experiments
from repro.experiments.serialization import (
    result_from_payload,
    result_to_payload,
)
from repro.parallel.cache import ResultCache


def make_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="Demo table",
        row_label="n",
        column_label="m",
        rows=("n=2", "n=4"),
        columns=("m=2",),
        measured={("n=2", "m=2"): 0.1 + 0.2, ("n=4", "m=2"): 1.75},
        reference={("n=2", "m=2"): 0.3},
        notes="demo",
    )


class TestSerialization:
    def test_round_trip_is_lossless(self):
        result = make_result()
        assert result_from_payload(result_to_payload(result)) == result

    def test_payload_is_json_serializable(self):
        import json

        json.dumps(result_to_payload(make_result()))

    def test_floats_survive_json_round_trip_exactly(self):
        import json

        payload = json.loads(json.dumps(result_to_payload(make_result())))
        restored = result_from_payload(payload)
        assert restored.measured[("n=2", "m=2")] == 0.1 + 0.2

    def test_malformed_payload_raises(self):
        with pytest.raises(ExperimentError):
            result_from_payload({"payload_version": 1})

    def test_version_mismatch_raises(self):
        payload = result_to_payload(make_result())
        payload["payload_version"] = 999
        with pytest.raises(ExperimentError, match="version"):
            result_from_payload(payload)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(cache_dir=tmp_path / "cache", version_tag="test")


class TestRunnerCache:
    def test_cold_then_cached_output_identical(self, cache):
        cold = run_experiments(["table1"], cache=cache)
        assert cache.stats.stores == 1
        warm = run_experiments(["table1"], cache=cache)
        assert warm == cold
        assert cache.stats.hits == 1

    def test_cache_shared_between_jobs_settings(self, cache):
        serial = run_experiments(["table1"], cache=cache)
        pooled = run_experiments(["table1"], jobs=4, cache=cache)
        assert pooled == serial
        # Second run must have been served from the cache.
        assert cache.stats.hits >= 1

    def test_fast_and_full_have_distinct_keys(self, cache):
        run_experiments(["table3b"], cache=cache)
        run_experiments(["table3b"], cache=cache)
        # table3b ignores --fast (deterministic model) so keys collide
        # only for identical kwargs: exactly one store, one hit.
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_corrupted_cache_entry_recomputes(self, cache):
        cold = run_experiments(["table1"], cache=cache)
        for path in cache.cache_dir.rglob("*.json"):
            path.write_text("corrupted!", encoding="utf-8")
        again = run_experiments(["table1"], cache=cache)
        assert again == cold
        assert cache.stats.evictions >= 1

    def test_uncached_run_stores_nothing(self, tmp_path):
        run_experiments(["table1"], cache=None)
        assert not list(tmp_path.rglob("*.json"))

    def test_cache_write_failure_does_not_block_run(
        self, cache, monkeypatch, capsys
    ):
        def failing_store(payload, value):
            raise OSError("disk full")

        monkeypatch.setattr(cache, "store", failing_store)
        report = run_experiments(["table1"], cache=cache)
        assert "Table 1" in report
        assert "could not cache table1" in capsys.readouterr().err


class TestMainFlags:
    def test_jobs_flag_byte_identical_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c1"))
        assert main(["table1", "--no-cache"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["table1", "--jobs", "4", "--no-cache"]) == 0
        jobs_out = capsys.readouterr().out
        assert jobs_out == serial_out

    def test_cache_dir_flag(self, capsys, tmp_path):
        target = tmp_path / "explicit"
        assert main(["table1", "--cache-dir", str(target)]) == 0
        capsys.readouterr()
        assert list(target.rglob("*.json"))

    def test_cached_rerun_identical_stdout(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c2"))
        assert main(["table1"]) == 0
        cold = capsys.readouterr().out
        assert main(["table1"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_rejects_nonpositive_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", "0"])

    def test_timings_go_to_stderr_not_stdout(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c3"))
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "[table1:" in captured.err
        assert "[table1:" not in captured.out


class TestCacheSubcommand:
    def test_sweep_removes_orphans_keeps_entries(self, capsys, tmp_path):
        store = ResultCache(cache_dir=tmp_path)
        path = store.put("deadbeef", {"v": 1})
        (path.parent / ".stale.json.123.ab.tmp").write_text("junk")
        (tmp_path / ".flat.json.99.cd.tmp").write_text("junk")
        assert main(["cache", "sweep", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "swept 2 orphaned tmp files" in out
        assert "1 entry kept" in out
        # The entry itself was never touched.
        assert ResultCache(cache_dir=tmp_path).get("deadbeef") == {"v": 1}
        assert not list(tmp_path.rglob("*.tmp"))

    def test_sweep_reports_size_and_empty_store(self, capsys, tmp_path):
        assert main(["cache", "sweep", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "swept 0 orphaned tmp files" in out
        assert "0 entries kept, 0 bytes" in out

    def test_sweep_rejects_unknown_action(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "clear", "--cache-dir", str(tmp_path)])

    def test_sweep_bad_cache_dir_is_a_clean_error(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        assert (
            main(["cache", "sweep", "--cache-dir", str(blocker / "sub")]) == 2
        )
        assert "error:" in capsys.readouterr().err
