"""The public API surface: imports, exports, and the one-call entry point."""

from __future__ import annotations

import pytest

import repro
from repro import Priority, SystemConfig, simulate


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_import(self):
        import repro.analysis
        import repro.bus
        import repro.core
        import repro.des
        import repro.experiments
        import repro.markov
        import repro.models
        import repro.queueing
        import repro.workloads

        for module in (
            repro.analysis,
            repro.bus,
            repro.core,
            repro.des,
            repro.experiments,
            repro.markov,
            repro.models,
            repro.queueing,
            repro.workloads,
        ):
            assert module.__doc__, f"{module.__name__} lacks a docstring"

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.bus
        import repro.des
        import repro.markov
        import repro.models
        import repro.queueing
        import repro.workloads

        for module in (
            repro.analysis,
            repro.bus,
            repro.des,
            repro.markov,
            repro.models,
            repro.queueing,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestSimulateEntryPoint:
    def test_minimal_call(self):
        result = simulate(SystemConfig(2, 2, 2), cycles=2_000, seed=1)
        assert result.completions > 0
        assert result.config.processors == 2

    def test_custom_targets(self):
        from repro.workloads import TraceTargets

        targets = TraceTargets([[0], [1]], modules=2)
        result = simulate(
            SystemConfig(2, 2, 2), cycles=2_000, seed=1, targets=targets
        )
        assert result.completions > 0

    def test_explicit_warmup(self):
        result = simulate(SystemConfig(2, 2, 2), cycles=1_000, seed=1, warmup=0)
        assert result.warmup_cycles == 0

    def test_priority_enum_round_trip(self):
        assert str(Priority.PROCESSORS) == "processors"
        assert str(Priority.MEMORIES) == "memories"

    def test_doctest_of_simulate(self):
        # The facade docstring example must stay true.
        result = simulate(SystemConfig(2, 2, 2), cycles=2_000, seed=1)
        assert 0.0 < result.ebw <= result.config.max_ebw


class TestConsoleScript:
    def test_entry_point_declared(self):
        import importlib.metadata as md

        try:
            distribution = md.distribution("repro-single-bus")
        except md.PackageNotFoundError:
            pytest.skip(
                "repro-single-bus is not installed as a distribution "
                "(running from a source checkout via PYTHONPATH); "
                "CI installs the package with 'pip install -e .' and "
                "runs this assertion for real"
            )
        scripts = (distribution.entry_points or md.entry_points()).select(
            group="console_scripts"
        )
        names = {ep.name for ep in scripts}
        assert "repro-experiments" in names

    def test_runner_module_invocable(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "table1" in completed.stdout


class TestDoctests:
    def test_engine_doctest(self):
        import doctest

        import repro.des.engine as engine_module

        failures, _ = doctest.testmod(engine_module, verbose=False)
        assert failures == 0

    def test_stats_doctest(self):
        import doctest

        import repro.des.stats as stats_module

        failures, _ = doctest.testmod(stats_module, verbose=False)
        assert failures == 0

    def test_rng_doctest(self):
        import doctest

        import repro.des.rng as rng_module

        failures, _ = doctest.testmod(rng_module, verbose=False)
        assert failures == 0
