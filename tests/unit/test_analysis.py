"""Unit tests for :mod:`repro.analysis` (sweeps and trade-off searches)."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import crossbar_reference, sweep_m, sweep_p, sweep_r
from repro.analysis.tradeoffs import (
    crossbar_target,
    find_crossbar_equivalent,
    minimum_r_beating_crossbar,
    saturation_limit,
)
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority

FAST = dict(cycles=4_000, seed=1)


class TestSweeps:
    def test_sweep_r_axis(self):
        base = SystemConfig(4, 4, 2, priority=Priority.PROCESSORS)
        sweep = sweep_r(base, [2, 4, 6], label="test", **FAST)
        assert sweep.axis_values() == (2.0, 4.0, 6.0)
        assert len(sweep.ebw_values()) == 3
        assert sweep.axis == "r"
        assert all(point.ebw > 0 for point in sweep.points)

    def test_sweep_r_preserves_other_parameters(self):
        base = SystemConfig(4, 8, 2, priority=Priority.MEMORIES)
        sweep = sweep_r(base, [4], label="t", **FAST)
        config = sweep.points[0].config
        assert config.memories == 8
        assert config.priority is Priority.MEMORIES
        assert config.memory_cycle_ratio == 4

    def test_sweep_p_axis(self):
        base = SystemConfig(4, 8, 4, priority=Priority.PROCESSORS)
        sweep = sweep_p(base, [0.25, 1.0], label="t", **FAST)
        assert sweep.axis_values() == (0.25, 1.0)
        utils = sweep.processor_utilization_values()
        # Short windows can overshoot the long-run ceiling of 1 slightly.
        assert all(0 < u <= 1.02 for u in utils)

    def test_sweep_p_light_load_more_efficient(self):
        base = SystemConfig(8, 8, 8, priority=Priority.PROCESSORS)
        sweep = sweep_p(base, [0.2, 1.0], label="t", cycles=20_000, seed=1)
        light, heavy = sweep.processor_utilization_values()
        assert light > heavy

    def test_sweep_m_axis(self):
        base = SystemConfig(4, 2, 4, priority=Priority.PROCESSORS)
        sweep = sweep_m(base, [2, 4, 8], label="t", **FAST)
        assert sweep.axis_values() == (2.0, 4.0, 8.0)

    def test_crossbar_reference_values(self):
        reference = crossbar_reference(2, [2, 4])
        assert reference[2] == pytest.approx(1.5)
        assert reference[4] > reference[2]


class TestTradeoffs:
    def test_crossbar_target_known_value(self):
        assert crossbar_target(2, 2) == pytest.approx(1.5)

    def test_find_crossbar_equivalent_finds_small_case(self):
        # A 2x2 crossbar (EBW 1.5) is matched by a single-bus system with
        # generous m and r.
        result = find_crossbar_equivalent(
            processors=2,
            crossbar_size=2,
            memory_options=[2, 4],
            memory_cycle_ratio=6,
            **FAST,
        )
        assert result.found
        assert result.achieved_ebw >= result.target_ebw

    def test_find_crossbar_equivalent_can_fail(self):
        result = find_crossbar_equivalent(
            processors=8,
            crossbar_size=8,
            memory_options=[2],
            memory_cycle_ratio=1,
            **FAST,
        )
        assert not result.found
        assert result.achieved_ebw is None

    def test_find_crossbar_equivalent_validation(self):
        with pytest.raises(ConfigurationError):
            find_crossbar_equivalent(2, 2, [], 4)

    def test_minimum_r_beating_crossbar(self):
        # At p = 0.5 the 8x16 single-bus beats the load-scaled crossbar
        # by r = 8 (the Section 7 claim holds from p >= 0.4).
        r = minimum_r_beating_crossbar(
            processors=8,
            memories=16,
            request_probability=0.5,
            r_options=[4, 8],
            cycles=10_000,
            seed=1,
        )
        assert r is not None
        assert r <= 8

    def test_minimum_r_none_when_unreachable(self):
        r = minimum_r_beating_crossbar(
            processors=8,
            memories=8,
            request_probability=1.0,
            r_options=[1],
            cycles=4_000,
            seed=1,
        )
        assert r is None

    def test_minimum_r_validation(self):
        with pytest.raises(ConfigurationError):
            minimum_r_beating_crossbar(4, 4, 1.0, [])

    def test_saturation_limit(self):
        # Buffered 8x8: saturated at small r (paper: until r ~ min(n,m)).
        limit = saturation_limit(
            processors=8,
            memories=8,
            r_options=[2, 4, 6],
            cycles=8_000,
            seed=1,
        )
        assert limit in (4, 6)

    def test_saturation_limit_validation(self):
        with pytest.raises(ConfigurationError):
            saturation_limit(4, 4, [2], saturation_fraction=0.0)
