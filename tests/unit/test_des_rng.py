"""Unit tests for :mod:`repro.des.rng`."""

from __future__ import annotations

import pytest

from repro.des.rng import RandomStream, StreamFactory, derive_seed, mean_and_half_width


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(42, "targets") == derive_seed(42, "targets")

    def test_differs_by_name(self):
        assert derive_seed(42, "targets") != derive_seed(42, "arbitration")

    def test_differs_by_master_seed(self):
        assert derive_seed(1, "targets") != derive_seed(2, "targets")


class TestRandomStream:
    def test_reproducible_sequences(self):
        a = RandomStream(7, "s")
        b = RandomStream(7, "s")
        assert [a.uniform_index(10) for _ in range(50)] == [
            b.uniform_index(10) for _ in range(50)
        ]

    def test_uniform_index_range(self):
        stream = RandomStream(1, "s")
        values = {stream.uniform_index(4) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_uniform_index_rejects_zero_bound(self):
        with pytest.raises(ValueError):
            RandomStream(1, "s").uniform_index(0)

    def test_choice(self):
        stream = RandomStream(1, "s")
        items = ["a", "b", "c"]
        assert all(stream.choice(items) in items for _ in range(50))

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomStream(1, "s").choice([])

    def test_bernoulli_certain(self):
        stream = RandomStream(1, "s")
        assert all(stream.bernoulli(1.0) for _ in range(20))
        assert not any(stream.bernoulli(0.0) for _ in range(20))

    def test_bernoulli_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RandomStream(1, "s").bernoulli(1.5)

    def test_geometric_failures_zero_for_certain_success(self):
        stream = RandomStream(1, "s")
        assert stream.geometric_failures(1.0) == 0

    def test_geometric_failures_mean(self):
        stream = RandomStream(3, "s")
        p = 0.25
        draws = [stream.geometric_failures(p) for _ in range(4_000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx((1 - p) / p, rel=0.1)

    def test_geometric_rejects_zero_probability(self):
        with pytest.raises(ValueError):
            RandomStream(1, "s").geometric_failures(0.0)

    def test_exponential_mean(self):
        stream = RandomStream(5, "s")
        draws = [stream.exponential(4.0) for _ in range(4_000)]
        assert sum(draws) / len(draws) == pytest.approx(4.0, rel=0.1)

    def test_exponential_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            RandomStream(1, "s").exponential(0.0)


class TestStreamFactory:
    def test_streams_cached(self):
        factory = StreamFactory(7)
        assert factory.get("a") is factory.get("a")

    def test_streams_independent_of_draw_order(self):
        # Drawing from one stream must not perturb another.
        f1 = StreamFactory(7)
        s_targets_1 = f1.get("targets")
        _ = [s_targets_1.uniform_index(10) for _ in range(100)]
        arb_after_draws = [f1.get("arb").uniform_index(10) for _ in range(10)]

        f2 = StreamFactory(7)
        arb_fresh = [f2.get("arb").uniform_index(10) for _ in range(10)]
        assert arb_after_draws == arb_fresh

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ValueError):
            StreamFactory("seed")


class TestMeanAndHalfWidth:
    def test_single_value(self):
        assert mean_and_half_width([2.0]) == (2.0, 0.0)

    def test_known_values(self):
        mean, half = mean_and_half_width([1.0, 3.0], z=1.0)
        assert mean == 2.0
        assert half == pytest.approx(1.0)  # stdev sqrt(2), /sqrt(2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_and_half_width([])
