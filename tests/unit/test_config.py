"""Unit tests for :mod:`repro.core.config`."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority, TieBreak


class TestValidation:
    def test_minimal_valid_config(self):
        config = SystemConfig(processors=1, memories=1, memory_cycle_ratio=1)
        assert config.processors == 1
        assert config.memories == 1
        assert config.memory_cycle_ratio == 1

    @pytest.mark.parametrize("processors", [0, -1, -100])
    def test_rejects_non_positive_processors(self, processors):
        with pytest.raises(ConfigurationError, match="processors"):
            SystemConfig(processors=processors, memories=2, memory_cycle_ratio=2)

    @pytest.mark.parametrize("processors", [2.0, "2", None])
    def test_rejects_non_integer_processors(self, processors):
        with pytest.raises(ConfigurationError, match="processors"):
            SystemConfig(processors=processors, memories=2, memory_cycle_ratio=2)

    @pytest.mark.parametrize("memories", [0, -3])
    def test_rejects_non_positive_memories(self, memories):
        with pytest.raises(ConfigurationError, match="memories"):
            SystemConfig(processors=2, memories=memories, memory_cycle_ratio=2)

    @pytest.mark.parametrize("r", [0, -1])
    def test_rejects_non_positive_r(self, r):
        with pytest.raises(ConfigurationError, match="memory_cycle_ratio"):
            SystemConfig(processors=2, memories=2, memory_cycle_ratio=r)

    def test_rejects_float_r(self):
        with pytest.raises(ConfigurationError, match="memory_cycle_ratio"):
            SystemConfig(processors=2, memories=2, memory_cycle_ratio=2.5)

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5, float("nan")])
    def test_rejects_out_of_range_p(self, p):
        with pytest.raises(ConfigurationError, match="request_probability"):
            SystemConfig(2, 2, 2, request_probability=p)

    def test_rejects_boolean_p(self):
        with pytest.raises(ConfigurationError, match="request_probability"):
            SystemConfig(2, 2, 2, request_probability=True)

    def test_accepts_boundary_p(self):
        config = SystemConfig(2, 2, 2, request_probability=1.0)
        assert config.request_probability == 1.0

    def test_rejects_non_enum_priority(self):
        with pytest.raises(ConfigurationError, match="priority"):
            SystemConfig(2, 2, 2, priority="processors")

    def test_rejects_non_enum_tie_break(self):
        with pytest.raises(ConfigurationError, match="tie_break"):
            SystemConfig(2, 2, 2, tie_break="random")

    def test_rejects_zero_buffer_depth(self):
        with pytest.raises(ConfigurationError, match="buffer_depth"):
            SystemConfig(2, 2, 2, buffered=True, buffer_depth=0)

    def test_rejects_buffer_depth_without_buffering(self):
        with pytest.raises(ConfigurationError, match="buffer_depth"):
            SystemConfig(2, 2, 2, buffered=False, buffer_depth=2)

    def test_frozen(self):
        config = SystemConfig(2, 2, 2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.processors = 4


class TestDerivedQuantities:
    def test_paper_aliases(self):
        config = SystemConfig(8, 16, 4, request_probability=0.5)
        assert config.n == 8
        assert config.m == 16
        assert config.r == 4
        assert config.p == 0.5

    def test_processor_cycle_is_r_plus_two(self):
        assert SystemConfig(2, 2, 6).processor_cycle == 8

    def test_max_ebw(self):
        # Section 2: max EBW = (r + 2) / 2.
        assert SystemConfig(2, 2, 8).max_ebw == 5.0
        assert SystemConfig(2, 2, 1).max_ebw == 1.5

    def test_offered_load(self):
        config = SystemConfig(8, 4, 2, request_probability=0.25)
        assert config.offered_load == pytest.approx(2.0)

    def test_defaults(self):
        config = SystemConfig(2, 2, 2)
        assert config.request_probability == 1.0
        assert config.priority is Priority.PROCESSORS
        assert config.tie_break is TieBreak.RANDOM
        assert not config.buffered
        assert config.buffer_depth == 1


class TestCopies:
    def test_with_buffers(self):
        base = SystemConfig(4, 4, 4)
        buffered = base.with_buffers()
        assert buffered.buffered
        assert buffered.buffer_depth == 1
        assert not base.buffered  # original untouched

    def test_with_buffers_custom_depth(self):
        buffered = SystemConfig(4, 4, 4).with_buffers(depth=3)
        assert buffered.buffer_depth == 3

    def test_without_buffers_round_trip(self):
        base = SystemConfig(4, 4, 4)
        assert base.with_buffers(2).without_buffers() == base

    def test_describe_mentions_all_parameters(self):
        config = SystemConfig(
            8, 16, 4, request_probability=0.5, priority=Priority.MEMORIES
        )
        text = config.describe()
        for fragment in ("n=8", "m=16", "r=4", "p=0.5", "memories", "unbuffered"):
            assert fragment in text

    def test_describe_buffered(self):
        text = SystemConfig(2, 2, 2).with_buffers(2).describe()
        assert "buffered(depth=2)" in text
