"""Unit tests for the sweep planner: cost model, grouping, carving."""

from __future__ import annotations

from repro.parallel.cache import ResultCache
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.plan import (
    ANALYTIC_UNIT_COST,
    MAX_LEASE_UNITS,
    carve_leases,
    probe_cached,
    unit_cost,
)
from repro.engine.base import EvaluationMethod
from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec


def _spec(**overrides) -> ScenarioSpec:
    kwargs = dict(
        name="plan-unit-test",
        base={"processors": 2, "memories": 2, "memory_cycle_ratio": 2},
        grid=(GridAxis("request_probability", (0.5, 1.0)),),
        cycles=80,
        plan=ReplicationPlan(replications=3, base_seed=5),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestUnitCost:
    def test_simulation_cost_is_cycles_plus_warmup(self):
        units = compile_scenario(_spec(cycles=500, warmup=100))
        assert unit_cost(units[0]) == 600.0

    def test_analytic_cost_is_nominal(self):
        units = compile_scenario(_spec(method=EvaluationMethod.BANDWIDTH))
        assert unit_cost(units[0]) == 1.0
        assert unit_cost(units[0]) < unit_cost(compile_scenario(_spec())[0])

    def test_every_cost_floors_at_the_analytic_constant(self):
        # The floor is explicit: no unit mix can produce a zero-cost
        # lease, whatever degenerate cycle counts a spec sneaks in.
        mva = compile_scenario(_spec(method=EvaluationMethod.MVA))
        simulation = compile_scenario(_spec(cycles=1, warmup=0))
        for unit in list(mva) + list(simulation):
            assert unit_cost(unit) >= ANALYTIC_UNIT_COST


class TestCarveLeases:
    def test_every_position_appears_exactly_once(self):
        units = compile_scenario(_spec())
        positions = list(range(len(units)))
        leases = carve_leases(units, positions, workers=2)
        flat = sorted(p for lease in leases for p in lease)
        assert flat == positions
        assert all(lease for lease in leases)

    def test_empty_positions_make_no_leases(self):
        units = compile_scenario(_spec())
        assert carve_leases(units, [], workers=2) == []

    def test_explicit_lease_size_packs_by_count(self):
        units = compile_scenario(_spec())
        leases = carve_leases(
            units, range(len(units)), workers=1, lease_size=2, affine=False
        )
        assert [len(lease) for lease in leases[:-1]] == [2] * (len(leases) - 1)
        assert all(len(lease) <= 2 for lease in leases)

    def test_cost_weighted_sizing_targets_four_waves_per_worker(self):
        # 6 equal-cost units over 1 worker: target cost = total/4, so
        # leases hold at most ceil(6/4)=2 units each.
        units = compile_scenario(_spec())
        leases = carve_leases(units, range(len(units)), workers=1)
        assert max(len(lease) for lease in leases) <= 2
        assert len(leases) >= 3

    def test_lease_size_never_exceeds_the_hard_cap(self):
        units = compile_scenario(
            _spec(
                method=EvaluationMethod.BANDWIDTH,
                grid=(
                    GridAxis("request_probability", tuple(
                        round(0.002 * i + 0.01, 6) for i in range(300)
                    )),
                ),
                plan=ReplicationPlan(replications=1, base_seed=5),
            )
        )
        assert len(units) == 300
        # Analytic units are so cheap that cost targeting alone would
        # put all 300 in one lease; the unit cap still applies.
        leases = carve_leases(units, range(len(units)), workers=1)
        assert max(len(lease) for lease in leases) <= MAX_LEASE_UNITS

    def test_heavy_units_get_shorter_leases_than_light_units(self):
        heavy = compile_scenario(_spec(cycles=100_000))
        light = compile_scenario(_spec(cycles=80))
        mixed = list(heavy[:3]) + list(light[:3])
        leases = carve_leases(mixed, range(6), workers=1)
        by_position = {
            position: index
            for index, lease in enumerate(leases)
            for position in lease
        }
        # No lease mixes a heavy unit with more than its cost share:
        # each heavy unit rides alone, the light tail can share.
        heavy_leases = {by_position[p] for p in range(3)}
        assert len(heavy_leases) == 3
        assert all(len(leases[i]) == 1 for i in heavy_leases)

    def test_affine_grouping_keeps_fleet_mates_adjacent(self):
        # Two interleaved fleet shapes (buffered axis last, so
        # positions alternate shapes); affine carving reunites them.
        spec = _spec(
            grid=(
                GridAxis("request_probability", (0.5, 1.0)),
                GridAxis("buffered", (False, True)),
            ),
            plan=ReplicationPlan(replications=2, base_seed=5),
        )
        units = compile_scenario(spec, kernel="batch")
        leases = carve_leases(
            units, range(len(units)), workers=1, lease_size=len(units)
        )
        from repro.parallel.fleet import fleet_key

        ordered_keys = [
            fleet_key(units[p].case()) for lease in leases for p in lease
        ]
        # Affine order visits each fleet key as one contiguous run.
        seen = []
        for key in ordered_keys:
            if not seen or seen[-1] != key:
                seen.append(key)
        assert len(seen) == len(set(seen))

    def test_mixed_simulation_and_mva_units_carve_cleanly(self):
        # A mixed sweep: heavy simulation units next to floor-cost mva
        # units.  Carving must keep every position exactly once, never
        # emit an empty lease, and the cost floor must keep the mva
        # tail from collapsing into the simulation leases' cost shadow.
        simulation = compile_scenario(_spec(cycles=50_000))
        mva = compile_scenario(_spec(method=EvaluationMethod.MVA))
        mixed = list(simulation[:3]) + list(mva)
        leases = carve_leases(mixed, range(len(mixed)), workers=1)
        flat = sorted(p for lease in leases for p in lease)
        assert flat == list(range(len(mixed)))
        assert all(lease for lease in leases)
        by_position = {
            position: index
            for index, lease in enumerate(leases)
            for position in lease
        }
        # Each heavy simulation unit fills its own lease; the analytic
        # units share leases rather than riding one-per-lease.
        heavy_leases = {by_position[p] for p in range(3)}
        assert all(len(leases[i]) == 1 for i in heavy_leases)
        analytic_leases = {
            by_position[p] for p in range(3, len(mixed))
        }
        assert analytic_leases.isdisjoint(heavy_leases)
        assert len(analytic_leases) < len(mixed) - 3

    def test_mixed_batch_and_mva_affine_groups_are_stable(self):
        # Batch simulation units pack into one super-fleet group while
        # analytic units stay singletons; the carving is deterministic.
        simulation = compile_scenario(
            _spec(
                grid=(GridAxis("memory_cycle_ratio", (1, 2, 3)),),
                plan=ReplicationPlan(replications=2, base_seed=5),
            ),
            kernel="batch",
        )
        mva = compile_scenario(_spec(method=EvaluationMethod.MVA))
        mixed = list(simulation) + list(mva)
        first = carve_leases(mixed, range(len(mixed)), workers=2)
        second = carve_leases(mixed, range(len(mixed)), workers=2)
        assert first == second
        flat = sorted(p for lease in first for p in lease)
        assert flat == list(range(len(mixed)))

    def test_contiguous_mode_preserves_input_order(self):
        units = compile_scenario(_spec())
        leases = carve_leases(
            units, range(len(units)), workers=2, lease_size=2, affine=False
        )
        flat = [p for lease in leases for p in lease]
        assert flat == list(range(len(units)))


class TestProbeCached:
    def test_probe_resolves_exactly_the_stored_positions(self, tmp_path):
        units = compile_scenario(_spec())
        cache = ResultCache(cache_dir=tmp_path / "store")
        run_units(units[:3], jobs=1, cache=cache)
        found = probe_cached(units, range(len(units)), cache)
        assert sorted(found) == [0, 1, 2]

    def test_probe_on_a_cold_store_finds_nothing(self, tmp_path):
        units = compile_scenario(_spec())
        cache = ResultCache(cache_dir=tmp_path / "store")
        assert probe_cached(units, range(len(units)), cache) == {}
        assert cache.stats.misses > 0
