"""Unit tests for the Section 3 models (exact and combinational)."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority
from repro.models.approx_memory_priority import approximate_memory_priority_ebw
from repro.models.exact_memory_priority import exact_memory_priority_ebw


def config(n: int, m: int, r: int, **kwargs) -> SystemConfig:
    kwargs.setdefault("priority", Priority.MEMORIES)
    return SystemConfig(n, m, r, **kwargs)


class TestExactModel:
    def test_hand_solved_2x2(self):
        # DESIGN.md hand solve: EBW = 0.5 + 2*(11/12)*0.5 = 1.41666...
        result = exact_memory_priority_ebw(config(2, 2, 9))
        assert result.ebw == pytest.approx(17 / 12)

    def test_hand_solved_4x2(self):
        result = exact_memory_priority_ebw(config(4, 2, 9))
        assert result.ebw == pytest.approx(1.625)

    def test_symmetric_in_n_and_m_at_print_precision(self):
        # Section 5 observes "the results are symmetrical on m and n".
        # Reproduction finding: the symmetry is not exact - it holds to
        # the paper's printed 3 decimals (e.g. 2.761018 vs 2.760959 for
        # (4,8)/(8,4)) but not to machine precision.
        for n, m in [(2, 6), (4, 8), (6, 8)]:
            r = min(n, m) + 7
            a = exact_memory_priority_ebw(config(n, m, r)).ebw
            b = exact_memory_priority_ebw(config(m, n, r)).ebw
            assert a == pytest.approx(b, abs=1e-3)
        # The asymmetry is real (not a solver artifact): exhibit it.
        a = exact_memory_priority_ebw(config(4, 8, 11)).ebw
        b = exact_memory_priority_ebw(config(8, 4, 11)).ebw
        assert abs(a - b) > 1e-6

    def test_bounded_by_max_ebw(self):
        for n, m, r in [(8, 8, 2), (8, 4, 1), (16, 16, 4)]:
            c = config(n, m, r)
            assert exact_memory_priority_ebw(c).ebw <= c.max_ebw + 1e-12

    def test_monotone_in_r(self):
        values = [
            exact_memory_priority_ebw(config(8, 8, r)).ebw for r in range(1, 16)
        ]
        assert values == sorted(values)

    def test_monotone_in_memories(self):
        values = [
            exact_memory_priority_ebw(config(4, m, 11)).ebw for m in (2, 4, 8, 12)
        ]
        assert values == sorted(values)

    def test_details_report_states(self):
        result = exact_memory_priority_ebw(config(4, 4, 9))
        assert result.details["states"] == 5  # partitions of 4
        assert result.method == "exact-memory-priority"

    def test_requires_p_one(self):
        with pytest.raises(ConfigurationError, match="p = 1"):
            exact_memory_priority_ebw(config(2, 2, 2, request_probability=0.5))

    def test_requires_unbuffered(self):
        with pytest.raises(ConfigurationError, match="unbuffered"):
            exact_memory_priority_ebw(config(2, 2, 2, buffered=True))

    def test_requires_memory_priority(self):
        with pytest.raises(ConfigurationError, match="priority"):
            exact_memory_priority_ebw(
                config(2, 2, 2, priority=Priority.PROCESSORS)
            )


class TestApproximateModel:
    def test_hand_solved_4x2(self):
        # distinct-modules pmf (1/8, 7/8) with r=9 weights: 1.729.
        result = approximate_memory_priority_ebw(config(4, 2, 9))
        assert result.ebw == pytest.approx(1 / 8 + 2 * (11 / 12) * 7 / 8)

    def test_agrees_with_exact_for_two_processors(self):
        # With n=2 the memoryless profile coincides with the stationary
        # one, so Table 2's first row equals Table 1's.
        for m in (2, 4, 6, 8):
            c = config(2, m, 9)
            approx = approximate_memory_priority_ebw(c).ebw
            exact = exact_memory_priority_ebw(c).ebw
            assert approx == pytest.approx(exact)

    def test_symmetric_variant_is_symmetric(self):
        a = approximate_memory_priority_ebw(config(8, 4, 11), symmetric=True).ebw
        b = approximate_memory_priority_ebw(config(4, 8, 11), symmetric=True).ebw
        assert a == pytest.approx(b)

    def test_symmetric_variant_closer_to_exact_when_n_exceeds_m(self):
        # The paper suggests symmetrisation because the exact results are
        # symmetric; verify it helps on the n > m half of Table 1.
        c = config(8, 4, 11)
        exact = exact_memory_priority_ebw(c).ebw
        plain = approximate_memory_priority_ebw(c, symmetric=False).ebw
        symmetric = approximate_memory_priority_ebw(c, symmetric=True).ebw
        assert abs(symmetric - exact) < abs(plain - exact)

    def test_disagreement_bounded_as_paper_claims(self):
        # Section 5: "observed numerical disagreements are always less
        # than 9%".
        for n in (2, 4, 6, 8):
            for m in (2, 4, 6, 8):
                c = config(n, m, min(n, m) + 7)
                exact = exact_memory_priority_ebw(c).ebw
                approx = approximate_memory_priority_ebw(c).ebw
                assert abs(approx - exact) / exact < 0.09

    def test_bounded_by_max_ebw(self):
        c = config(16, 4, 2)
        assert approximate_memory_priority_ebw(c).ebw <= c.max_ebw + 1e-12

    def test_method_labels(self):
        c = config(2, 2, 2)
        assert (
            approximate_memory_priority_ebw(c).method == "approx-memory-priority"
        )
        assert (
            approximate_memory_priority_ebw(c, symmetric=True).method
            == "approx-memory-priority-symmetric"
        )

    def test_requires_hypotheses(self):
        with pytest.raises(ConfigurationError):
            approximate_memory_priority_ebw(
                config(2, 2, 2, request_probability=0.5)
            )
        with pytest.raises(ConfigurationError):
            approximate_memory_priority_ebw(config(2, 2, 2, buffered=True))
        with pytest.raises(ConfigurationError):
            approximate_memory_priority_ebw(
                config(2, 2, 2, priority=Priority.PROCESSORS)
            )
