"""Unit tests for :mod:`repro.queueing.bounds`."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.queueing.bounds import (
    ThroughputBounds,
    asymptotic_bounds,
    balanced_job_bounds,
    bus_ceiling_matches_section2,
)
from repro.queueing.mva import solve_mva
from repro.queueing.network import (
    ClosedNetwork,
    Station,
    StationKind,
    buffered_bus_network,
)


def network(demands, population, think=0.0):
    stations = [
        Station(f"q{i}", StationKind.QUEUEING, 1.0, d)
        for i, d in enumerate(demands)
    ]
    if think:
        stations.append(Station("think", StationKind.DELAY, 1.0, think))
    return ClosedNetwork(stations=tuple(stations), population=population)


class TestBoundsBracketMva:
    @pytest.mark.parametrize("population", [1, 2, 5, 20])
    def test_asymptotic(self, population):
        net = network([2.0, 1.0, 0.5], population, think=3.0)
        x = solve_mva(net).throughput
        bounds = asymptotic_bounds(net)
        assert bounds.contains(x)

    @pytest.mark.parametrize("population", [1, 3, 10])
    def test_balanced_job(self, population):
        net = network([2.0, 1.0, 0.5], population)
        x = solve_mva(net).throughput
        bounds = balanced_job_bounds(net)
        assert bounds.contains(x, slack=1e-6)

    def test_balanced_tighter_than_asymptotic_lower(self):
        net = network([2.0, 1.0], 10)
        assert (
            balanced_job_bounds(net).lower >= asymptotic_bounds(net).lower - 1e-12
        )

    def test_bounds_on_buffered_bus_network(self):
        config = SystemConfig(8, 8, 8, buffered=True)
        net = buffered_bus_network(config)
        x = solve_mva(net).throughput
        assert asymptotic_bounds(net).contains(x)
        assert balanced_job_bounds(net).contains(x, slack=1e-6)

    def test_single_customer_exact(self):
        # N = 1: both bounds collapse onto the exact 1 / (D + Z).
        net = network([1.5, 0.5], 1, think=2.0)
        x = solve_mva(net).throughput
        bounds = balanced_job_bounds(net)
        assert bounds.lower == pytest.approx(x)
        assert bounds.upper == pytest.approx(x)


class TestSection2Correspondence:
    def test_bus_ceiling(self):
        # The 1/Dmax bound of the central-server model (bus demand 2) in
        # EBW units is the Section 2 ceiling (r+2)/2.
        for r in (2, 8, 24):
            assert bus_ceiling_matches_section2(r) == (r + 2) / 2

    def test_ceiling_reached_by_saturated_machine(self):
        from repro.bus import simulate

        config = SystemConfig(8, 8, 2, buffered=True)
        ebw = simulate(config, cycles=10_000, seed=1).ebw
        assert ebw == pytest.approx(bus_ceiling_matches_section2(2), rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bus_ceiling_matches_section2(0)


class TestValidation:
    def test_inconsistent_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputBounds(lower=2.0, upper=1.0)

    def test_contains(self):
        bounds = ThroughputBounds(lower=1.0, upper=2.0)
        assert bounds.contains(1.5)
        assert not bounds.contains(2.5)

    def test_network_without_queueing_station_rejected(self):
        delay_only = ClosedNetwork(
            stations=(Station("z", StationKind.DELAY, 1.0, 5.0),),
            population=2,
        )
        with pytest.raises(ConfigurationError):
            asymptotic_bounds(delay_only)
