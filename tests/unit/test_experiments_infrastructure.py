"""Unit tests for the experiment registry, formatting and runner."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.formatting import format_result, format_series
from repro.experiments.registry import (
    ExperimentResult,
    all_experiments,
    get,
)
from repro.experiments.runner import list_experiments, main, run_experiments


def make_result(**overrides) -> ExperimentResult:
    defaults = dict(
        experiment_id="demo",
        title="Demo table",
        row_label="n",
        column_label="m",
        rows=("n=2", "n=4"),
        columns=("m=2", "m=4"),
        measured={
            ("n=2", "m=2"): 1.5,
            ("n=2", "m=4"): 1.75,
            ("n=4", "m=2"): 1.8,
            ("n=4", "m=4"): 2.25,
        },
        reference={
            ("n=2", "m=2"): 1.5,
            ("n=2", "m=4"): 1.7,
            ("n=4", "m=2"): 2.0,
        },
        notes="demo",
    )
    defaults.update(overrides)
    return ExperimentResult(**defaults)


class TestExperimentResult:
    def test_measured_value(self):
        assert make_result().measured_value("n=2", "m=2") == 1.5

    def test_measured_value_missing(self):
        with pytest.raises(ExperimentError):
            make_result().measured_value("n=9", "m=9")

    def test_reference_value(self):
        result = make_result()
        assert result.reference_value("n=2", "m=4") == 1.7
        assert result.reference_value("n=4", "m=4") is None

    def test_error_statistics(self):
        result = make_result()
        assert result.worst_absolute_error() == pytest.approx(0.2)
        assert result.worst_relative_error() == pytest.approx(0.1)
        assert result.mean_relative_error() == pytest.approx(
            (0.0 + 0.05 / 1.7 + 0.1) / 3
        )

    def test_error_statistics_without_reference(self):
        result = make_result(reference={})
        assert result.worst_absolute_error() == 0.0
        assert math.isnan(result.mean_relative_error())


class TestRegistry:
    def test_all_experiments_nonempty_and_sorted(self):
        specs = all_experiments()
        ids = [spec.experiment_id for spec in specs]
        assert ids == sorted(ids)
        assert {"table1", "table2", "table3a", "table3b", "table4"} <= set(ids)
        assert {"figure2", "figure3", "figure5", "figure6"} <= set(ids)
        assert "product_form" in ids

    def test_get_known(self):
        spec = get("table1")
        assert spec.paper_artifact == "Table 1"
        assert callable(spec.run)

    def test_get_unknown(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get("table99")


class TestFormatting:
    def test_format_result_contains_cells_and_stats(self):
        text = format_result(make_result())
        assert "Demo table" in text
        assert "1.500" in text and "2.250" in text
        assert "( 1.700)" in text
        assert "worst |err|" in text
        assert "note: demo" in text

    def test_format_result_without_reference(self):
        text = format_result(make_result(reference={}))
        assert "worst" not in text
        assert "1.750" in text

    def test_missing_cells_rendered_as_dash(self):
        result = make_result(
            measured={("n=2", "m=2"): 1.0}, reference={}
        )
        assert "-" in format_result(result)

    def test_format_series(self):
        text = format_series(make_result())
        assert "Demo table" in text
        assert "n=2" in text
        assert "1.500" in text


class TestRunner:
    def test_list_experiments(self):
        text = list_experiments()
        assert "table1" in text
        assert "Figure 5" in text

    def test_run_single_deterministic_experiment(self):
        report = run_experiments(["table1"])
        assert "Table 1" in report
        assert "worst |err|" in report

    def test_main_lists_without_arguments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "available experiments" in out

    def test_main_runs_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_main_writes_markdown_report(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(["table1", "--markdown", str(target)]) == 0
        out = capsys.readouterr().out
        assert "markdown report written" in out
        content = target.read_text()
        assert content.startswith("# Paper-vs-measured report")
        assert "Table 1" in content

    def test_iter_reports_streams(self):
        from repro.experiments.runner import iter_reports

        reports = list(iter_reports(["table1", "table2"]))
        assert len(reports) == 2
        assert "Table 1" in reports[0]
        assert "Table 2" in reports[1]
