"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.asciichart import render_chart
from repro.experiments.registry import ExperimentResult


def make_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="Demo figure",
        row_label="curve",
        column_label="r",
        rows=("low", "high"),
        columns=("r=2", "r=4", "r=8"),
        measured={
            ("low", "r=2"): 1.0,
            ("low", "r=4"): 1.5,
            ("low", "r=8"): 2.0,
            ("high", "r=2"): 2.0,
            ("high", "r=4"): 3.0,
            ("high", "r=8"): 4.0,
        },
    )


class TestRenderChart:
    def test_contains_title_axis_and_legend(self):
        chart = render_chart(make_result())
        assert "Demo figure" in chart
        assert "legend:" in chart
        assert "o = low" in chart
        assert "x = high" in chart
        assert "2" in chart and "8" in chart  # x-axis labels

    def test_extreme_values_on_boundary_rows(self):
        chart = render_chart(make_result(), height=10)
        lines = chart.split("\n")
        plot_lines = [line for line in lines if "|" in line]
        # Max (4.0, glyph x) on the top plot row, min (1.0, glyph o) on
        # the bottom one.
        assert "x" in plot_lines[0]
        assert "o" in plot_lines[-1]

    def test_flat_series_renders(self):
        result = ExperimentResult(
            experiment_id="flat",
            title="Flat",
            row_label="curve",
            column_label="r",
            rows=("flat",),
            columns=("r=1", "r=2"),
            measured={("flat", "r=1"): 2.0, ("flat", "r=2"): 2.0},
        )
        chart = render_chart(result)
        plot = "\n".join(line for line in chart.split("\n") if "|" in line)
        assert plot.count("o") == 2

    def test_missing_points_skipped(self):
        result = ExperimentResult(
            experiment_id="gap",
            title="Gap",
            row_label="curve",
            column_label="r",
            rows=("gappy",),
            columns=("r=1", "r=2", "r=3"),
            measured={("gappy", "r=1"): 1.0, ("gappy", "r=3"): 3.0},
        )
        chart = render_chart(result)
        plot = "\n".join(line for line in chart.split("\n") if "|" in line)
        assert plot.count("o") == 2

    def test_rejects_tiny_height(self):
        with pytest.raises(ExperimentError):
            render_chart(make_result(), height=2)

    def test_rejects_empty(self):
        empty = ExperimentResult(
            experiment_id="none",
            title="None",
            row_label="curve",
            column_label="r",
            rows=(),
            columns=(),
            measured={},
        )
        with pytest.raises(ExperimentError):
            render_chart(empty)


class TestRunnerChartIntegration:
    def test_chart_flag_renders_figures(self, capsys):
        from repro.experiments.runner import main

        # fast + chart on the cheapest figure
        assert main(["figure3", "--fast", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_fast_flag_accepted_for_tables(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out


# ----------------------------------------------------------------------
# Percentile-aware latency charts.
# ----------------------------------------------------------------------
import os  # noqa: E402
import pathlib  # noqa: E402

from repro.core.policy import Priority  # noqa: E402
from repro.experiments.asciichart import render_percentile_chart  # noqa: E402
from repro.scenarios.compiler import compile_scenario  # noqa: E402
from repro.scenarios.execute import run_units  # noqa: E402
from repro.scenarios.spec import (  # noqa: E402
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
)

LATENCY_CHART_GOLDEN = (
    pathlib.Path(__file__).resolve().parent.parent
    / "golden"
    / "latency_chart.txt"
)


def _latency_results():
    spec = ScenarioSpec(
        name="latency-chart-golden",
        description="percentile chart fixture",
        base={"processors": 4, "memories": 4, "priority": Priority.PROCESSORS},
        grid=(GridAxis("memory_cycle_ratio", (2, 4, 8)),),
        cycles=1_200,
        plan=ReplicationPlan(2, 7),
        metrics=("latency",),
    )
    return run_units(compile_scenario(spec, kernel="fast"))


class TestRenderPercentileChart:
    def test_matches_golden_bytes(self):
        """The chart of a fixed seeded run is pinned byte-for-byte.

        Regenerate after an intentional change with
        ``REPRO_REGENERATE_GOLDENS=1``.
        """
        chart = render_percentile_chart(_latency_results()) + "\n"
        if os.environ.get("REPRO_REGENERATE_GOLDENS"):
            LATENCY_CHART_GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            LATENCY_CHART_GOLDEN.write_text(chart, encoding="utf-8")
        assert chart == LATENCY_CHART_GOLDEN.read_text(encoding="utf-8")

    def test_draws_the_three_percentile_curves(self):
        chart = render_percentile_chart(_latency_results())
        assert "lat_p50" in chart and "lat_p90" in chart and "lat_p99" in chart
        assert "u0" in chart and "u5" in chart

    def test_units_without_latency_are_rejected(self):
        spec = ScenarioSpec(
            name="no-latency",
            description="",
            base={"processors": 2, "memories": 2},
            grid=(GridAxis("memory_cycle_ratio", (2,)),),
            cycles=400,
            plan=ReplicationPlan(2, 0),
        )
        results = run_units(compile_scenario(spec, kernel="fast"))
        with pytest.raises(ExperimentError, match="--metrics latency"):
            render_percentile_chart(results)
