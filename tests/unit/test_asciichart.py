"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.asciichart import render_chart
from repro.experiments.registry import ExperimentResult


def make_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="Demo figure",
        row_label="curve",
        column_label="r",
        rows=("low", "high"),
        columns=("r=2", "r=4", "r=8"),
        measured={
            ("low", "r=2"): 1.0,
            ("low", "r=4"): 1.5,
            ("low", "r=8"): 2.0,
            ("high", "r=2"): 2.0,
            ("high", "r=4"): 3.0,
            ("high", "r=8"): 4.0,
        },
    )


class TestRenderChart:
    def test_contains_title_axis_and_legend(self):
        chart = render_chart(make_result())
        assert "Demo figure" in chart
        assert "legend:" in chart
        assert "o = low" in chart
        assert "x = high" in chart
        assert "2" in chart and "8" in chart  # x-axis labels

    def test_extreme_values_on_boundary_rows(self):
        chart = render_chart(make_result(), height=10)
        lines = chart.split("\n")
        plot_lines = [line for line in lines if "|" in line]
        # Max (4.0, glyph x) on the top plot row, min (1.0, glyph o) on
        # the bottom one.
        assert "x" in plot_lines[0]
        assert "o" in plot_lines[-1]

    def test_flat_series_renders(self):
        result = ExperimentResult(
            experiment_id="flat",
            title="Flat",
            row_label="curve",
            column_label="r",
            rows=("flat",),
            columns=("r=1", "r=2"),
            measured={("flat", "r=1"): 2.0, ("flat", "r=2"): 2.0},
        )
        chart = render_chart(result)
        plot = "\n".join(line for line in chart.split("\n") if "|" in line)
        assert plot.count("o") == 2

    def test_missing_points_skipped(self):
        result = ExperimentResult(
            experiment_id="gap",
            title="Gap",
            row_label="curve",
            column_label="r",
            rows=("gappy",),
            columns=("r=1", "r=2", "r=3"),
            measured={("gappy", "r=1"): 1.0, ("gappy", "r=3"): 3.0},
        )
        chart = render_chart(result)
        plot = "\n".join(line for line in chart.split("\n") if "|" in line)
        assert plot.count("o") == 2

    def test_rejects_tiny_height(self):
        with pytest.raises(ExperimentError):
            render_chart(make_result(), height=2)

    def test_rejects_empty(self):
        empty = ExperimentResult(
            experiment_id="none",
            title="None",
            row_label="curve",
            column_label="r",
            rows=(),
            columns=(),
            measured={},
        )
        with pytest.raises(ExperimentError):
            render_chart(empty)


class TestRunnerChartIntegration:
    def test_chart_flag_renders_figures(self, capsys):
        from repro.experiments.runner import main

        # fast + chart on the cheapest figure
        assert main(["figure3", "--fast", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_fast_flag_accepted_for_tables(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
