"""Unit tests for :mod:`repro.des.stats`."""

from __future__ import annotations

import math

import pytest

from repro.des.stats import BatchMeans, Counter, TimeWeighted, autocorrelation


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.total == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_window(self):
        counter = Counter("c")
        counter.increment(10)
        counter.start_window()
        counter.increment(3)
        assert counter.in_window == 3
        assert counter.total == 13


class TestTimeWeighted:
    def test_docstring_example(self):
        tw = TimeWeighted("queue", initial=0.0, start_time=0.0)
        tw.update(2.0, at=3.0)
        tw.update(0.0, at=4.0)
        assert tw.average(until=4.0) == pytest.approx(0.5)

    def test_average_extends_current_value(self):
        tw = TimeWeighted("q", initial=1.0)
        assert tw.average(until=10.0) == pytest.approx(1.0)

    def test_window_restart(self):
        tw = TimeWeighted("q", initial=5.0)
        tw.update(1.0, at=10.0)
        tw.start_window(at=10.0)
        assert tw.average(until=20.0) == pytest.approx(1.0)

    def test_rejects_time_travel(self):
        tw = TimeWeighted("q")
        tw.update(1.0, at=5.0)
        with pytest.raises(ValueError, match="backwards"):
            tw.update(2.0, at=3.0)

    def test_average_rejects_past(self):
        tw = TimeWeighted("q")
        tw.update(1.0, at=5.0)
        with pytest.raises(ValueError):
            tw.average(until=4.0)

    def test_zero_span_returns_current(self):
        tw = TimeWeighted("q", initial=7.0)
        assert tw.average(until=0.0) == 7.0


class TestBatchMeans:
    def test_mean(self):
        batches = BatchMeans("x")
        for v in (1.0, 2.0, 3.0):
            batches.add(v)
        assert batches.mean() == pytest.approx(2.0)
        assert batches.count == 3
        assert batches.batches == (1.0, 2.0, 3.0)

    def test_confidence_interval_brackets(self):
        batches = BatchMeans("x")
        for v in (1.9, 2.0, 2.1, 2.0):
            batches.add(v)
        low, high = batches.confidence_interval()
        assert low < 2.0 < high

    def test_relative_half_width(self):
        batches = BatchMeans("x")
        for v in (2.0, 2.0, 2.0):
            batches.add(v)
        assert batches.relative_half_width() == 0.0

    def test_relative_half_width_infinite_for_zero_mean(self):
        batches = BatchMeans("x")
        batches.add(1.0)
        batches.add(-1.0)
        assert math.isinf(batches.relative_half_width())

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            BatchMeans("x").add(float("nan"))

    def test_mean_requires_data(self):
        with pytest.raises(ValueError):
            BatchMeans("x").mean()


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        assert autocorrelation([1.0, 2.0, 3.0, 4.0], 0) == pytest.approx(1.0)

    def test_alternating_sequence_negative_at_lag_one(self):
        values = [1.0, -1.0] * 20
        assert autocorrelation(values, 1) < -0.9

    def test_constant_sequence_is_zero(self):
        assert autocorrelation([5.0] * 10, 1) == 0.0

    def test_rejects_bad_lag(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], 5)
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0], -1)
