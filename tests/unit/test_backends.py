"""Unit tests for the pluggable batch-backend layer.

Covers the registry surface (:mod:`repro.bus.backends`), the
missing-dependency diagnostics (each optional backend must fail loudly
naming its install extra - never fall back to numpy silently), the
backend/kernel validation shared by ``simulate``, ``compile_scenario``
and the ``scenario`` CLI, and the engine-token routing that keeps
bit-identical backends in one cache namespace and statistically
equivalent ones out of it.  The numerical numpy == numba contract lives
in ``tests/properties/test_backend_equivalence.py``.
"""

from __future__ import annotations

import builtins

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError


def _block_import(monkeypatch, module: str):
    """Make ``import <module>`` raise ImportError inside the test."""
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == module or name.startswith(module + "."):
            raise ImportError(f"{module} disabled for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", blocked)


class TestRegistry:
    def test_known_backends_resolve_to_singletons(self):
        from repro.bus.backends import KNOWN_BACKENDS, get_backend

        for name in KNOWN_BACKENDS:
            backend = get_backend(name)
            assert backend.name == name
            assert get_backend(name) is backend

    def test_unknown_backend_names_the_known_table(self):
        from repro.bus.backends import get_backend

        with pytest.raises(
            ConfigurationError, match="numpy, numba, numba-parallel, cupy"
        ):
            get_backend("torch")

    def test_instances_pass_through(self):
        from repro.bus.backends import NumbaBackend, get_backend

        instance = NumbaBackend(jit=False)
        assert get_backend(instance) is instance

    def test_engine_tokens_split_on_bit_identity(self):
        from repro.bus.backends import (
            BATCH_ENGINE_TOKEN,
            CUPY_ENGINE_TOKEN,
            backend_engine_token,
        )

        # numpy and numba are proven bit-identical, so their cache
        # entries are interchangeable: one shared namespace.
        assert backend_engine_token("numpy") == BATCH_ENGINE_TOKEN
        assert backend_engine_token("numba") == BATCH_ENGINE_TOKEN
        assert backend_engine_token("numba-parallel") == BATCH_ENGINE_TOKEN
        # cupy is only statistically equivalent: its entries must never
        # be served to (or from) the bit-identical pair.
        assert backend_engine_token("cupy") == CUPY_ENGINE_TOKEN
        assert CUPY_ENGINE_TOKEN != BATCH_ENGINE_TOKEN


class TestMissingDependencies:
    def test_missing_numba_raises_naming_batch_jit_extra(self, monkeypatch):
        from repro.bus.backends import NumbaBackend

        backend = NumbaBackend()
        _block_import(monkeypatch, "numba")
        assert not backend.available()
        with pytest.raises(
            ConfigurationError, match=r"repro-single-bus\[batch-jit\]"
        ):
            backend.require()

    def test_missing_numba_fails_the_parallel_backend_too(self, monkeypatch):
        from repro.bus.backends import NumbaParallelBackend

        backend = NumbaParallelBackend()
        _block_import(monkeypatch, "numba")
        assert not backend.available()
        with pytest.raises(
            ConfigurationError, match=r"repro-single-bus\[batch-jit\]"
        ):
            backend.require()

    def test_missing_cupy_raises_naming_batch_gpu_extra(self, monkeypatch):
        from repro.bus.backends import CupyBackend

        backend = CupyBackend()
        _block_import(monkeypatch, "cupy")
        assert not backend.available()
        with pytest.raises(
            ConfigurationError, match=r"repro-single-bus\[batch-gpu\]"
        ):
            backend.require()

    def test_missing_backend_surfaces_through_simulate(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.bus import simulate

        _block_import(monkeypatch, "numba")
        with pytest.raises(ConfigurationError, match=r"\[batch-jit\]"):
            simulate(
                SystemConfig(2, 2, 2),
                cycles=100,
                kernel="batch",
                backend="numba",
            )

    def test_interpreted_numba_backend_needs_no_numba(self, monkeypatch):
        """``NumbaBackend(jit=False)`` runs the same loops in plain
        Python - the lever the equivalence suite uses on hosts without
        numba."""
        pytest.importorskip("numpy")
        from repro.bus.backends import NumbaBackend
        from repro.bus.batch import run_batch

        _block_import(monkeypatch, "numba")
        result = run_batch(
            SystemConfig(2, 2, 2),
            cycles=300,
            seed=3,
            backend=NumbaBackend(jit=False),
        )
        assert result.completions > 0


class TestValidation:
    def test_simulate_rejects_backend_without_batch_kernel(self):
        from repro.bus import simulate

        for kernel in ("reference", "fast"):
            with pytest.raises(
                ConfigurationError, match="requires kernel='batch'"
            ):
                simulate(
                    SystemConfig(2, 2, 2),
                    cycles=100,
                    kernel=kernel,
                    backend="numba",
                )

    def test_cupy_rejects_latency_collection(self):
        from repro.bus.backends import get_backend

        with pytest.raises(ConfigurationError, match="latency"):
            get_backend("cupy").check_features(metrics=("latency",))
        # The non-latency path passes validation (availability is a
        # separate, later check).
        get_backend("cupy").check_features(metrics=())

    def test_check_batch_features_threads_backend(self):
        from repro.bus.batch import check_batch_features

        with pytest.raises(ConfigurationError, match="latency"):
            check_batch_features(metrics=("latency",), backend="cupy")
        check_batch_features(metrics=("latency",), backend="numba")


class TestScenarioCompiler:
    def _spec(self, metrics=()):
        from repro.scenarios.spec import (
            GridAxis,
            ReplicationPlan,
            ScenarioSpec,
        )

        return ScenarioSpec(
            name="backend-unit",
            description="",
            base={"processors": 2, "memories": 2},
            grid=(GridAxis("memory_cycle_ratio", (2,)),),
            cycles=200,
            plan=ReplicationPlan(2, 0),
            metrics=metrics,
        )

    def test_units_carry_backend_and_shared_token(self):
        from repro.scenarios.compiler import compile_scenario

        numba_units = compile_scenario(
            self._spec(), kernel="batch", backend="numba"
        )
        numpy_units = compile_scenario(self._spec(), kernel="batch")
        assert all(unit.backend == "numba" for unit in numba_units)
        # Bit-identical backends share cache identity: payloads match
        # byte-for-byte, so a numba run is served from numpy entries.
        for numba_unit, numpy_unit in zip(numba_units, numpy_units):
            assert numba_unit.payload() == numpy_unit.payload()
            assert numba_unit.payload()["engine"] == "simulation-batch@1"
        # numba-parallel is in the same bit-identical family: a
        # threaded run is served from (and feeds) the same entries.
        parallel_units = compile_scenario(
            self._spec(), kernel="batch", backend="numba-parallel"
        )
        for parallel_unit, numpy_unit in zip(parallel_units, numpy_units):
            assert parallel_unit.payload() == numpy_unit.payload()

    def test_cupy_units_live_in_their_own_namespace(self):
        from repro.scenarios.compiler import compile_scenario

        units = compile_scenario(
            self._spec(), kernel="batch", backend="cupy"
        )
        assert units[0].payload()["engine"] == "simulation-batch-cupy@1"

    def test_unknown_backend_rejected_at_compile_time(self):
        from repro.scenarios.compiler import compile_scenario

        with pytest.raises(
            ConfigurationError, match="numpy, numba, numba-parallel, cupy"
        ):
            compile_scenario(self._spec(), kernel="batch", backend="mlx")

    def test_backend_requires_batch_kernel(self):
        from repro.scenarios.compiler import compile_scenario

        with pytest.raises(
            ConfigurationError, match="requires kernel='batch'"
        ):
            compile_scenario(self._spec(), kernel="fast", backend="numba")

    def test_cupy_latency_scenario_rejected_at_compile_time(self):
        from repro.scenarios.compiler import compile_scenario

        with pytest.raises(ConfigurationError, match="latency"):
            compile_scenario(
                self._spec(metrics=("latency",)),
                kernel="batch",
                backend="cupy",
            )


class TestFleetGrouping:
    def test_fleet_key_separates_backends(self):
        pytest.importorskip("numpy")
        from repro.parallel.fleet import fleet_key, group_fleets
        from repro.parallel.workers import SimulationCase

        config = SystemConfig(2, 2, 2)
        numpy_case = SimulationCase(config, 500, 0, kernel="batch")
        numba_case = SimulationCase(
            config, 500, 0, kernel="batch", backend="numba"
        )
        assert fleet_key(numpy_case) != fleet_key(numba_case)
        groups = group_fleets([numpy_case, numba_case, numpy_case])
        assert groups == [[0, 2], [1]]


class TestCli:
    def test_backend_flag_requires_batch_kernel(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "figure2", "--backend", "numba"])
        assert excinfo.value.code == 2
        assert "--backend requires --kernel batch" in capsys.readouterr().err

    def test_unknown_backend_rejected_by_argparse(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "scenario",
                    "figure2",
                    "--kernel",
                    "batch",
                    "--backend",
                    "torch",
                ]
            )
        assert excinfo.value.code == 2
        assert "--backend" in capsys.readouterr().err
