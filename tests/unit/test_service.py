"""Unit tests for the sweep service: protocol, worker, coordinator, CLI."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, ExperimentError
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec
from repro.service import protocol
from repro.service.coordinator import Coordinator, default_lease_size
from repro.service.transports import LoopbackTransport
from repro.service.worker import WorkerSession


def tiny_spec(**overrides) -> ScenarioSpec:
    kwargs = dict(
        name="service-unit-test",
        base={"processors": 2, "memories": 2, "memory_cycle_ratio": 2},
        grid=(GridAxis("request_probability", (0.5, 1.0)),),
        cycles=60,
        plan=ReplicationPlan(replications=2, base_seed=3),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = protocol.lease_message(3, [0, 4, 2])
        line = protocol.encode_message(message)
        assert "\n" not in line
        assert protocol.decode_message(line) == message
        assert message["positions"] == [0, 4, 2]

    def test_decode_rejects_non_json(self):
        with pytest.raises(ConfigurationError, match="undecodable"):
            protocol.decode_message("{torn line")

    def test_decode_rejects_untyped_objects(self):
        with pytest.raises(ConfigurationError, match="'type'"):
            protocol.decode_message('{"a": 1}')

    def test_decode_rejects_unknown_types(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            protocol.decode_message('{"type": "gossip"}')

    def test_lease_message_validates_positions(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            protocol.lease_message(0, [])
        with pytest.raises(ConfigurationError, match="non-negative"):
            protocol.lease_message(0, [-1, 4])
        with pytest.raises(ConfigurationError, match="unique"):
            protocol.lease_message(0, [3, 3])

    def test_spec_survives_the_wire_exactly(self):
        spec = tiny_spec(metrics=("latency",), warmup=25)
        rebuilt = protocol.spec_from_wire(protocol.spec_to_mapping(spec))
        assert rebuilt == spec
        # Determinism of the compiler then guarantees identical units.
        assert compile_scenario(rebuilt) == compile_scenario(spec)

    def test_hello_message_carries_shard_and_cache_config(self):
        message = protocol.hello_message(
            tiny_spec(),
            "fast",
            "numpy",
            shard=(2, 3),
            cache_dir="/tmp/x",
            cache_enabled=False,
        )
        assert message["shard"] == [2, 3]
        assert message["cache"] == {"enabled": False, "dir": "/tmp/x"}
        assert message["protocol"] == protocol.PROTOCOL_VERSION


class TestWorkerSession:
    def test_lease_before_hello_is_rejected(self):
        session = WorkerSession(lambda message: None)
        with pytest.raises(ConfigurationError, match="before hello"):
            session.handle(protocol.lease_message(0, [0]))

    def test_protocol_version_mismatch_is_rejected(self):
        session = WorkerSession(lambda message: None)
        hello = protocol.hello_message(tiny_spec(), "reference", "numpy")
        hello["protocol"] = 999
        with pytest.raises(ConfigurationError, match="version mismatch"):
            session.handle(hello)

    def test_out_of_range_lease_is_rejected(self):
        outbox = []
        session = WorkerSession(outbox.append)
        session.handle(
            protocol.hello_message(
                tiny_spec(), "reference", "numpy", cache_enabled=False
            )
        )
        units = outbox[-1]["units"]
        with pytest.raises(ConfigurationError, match="outside"):
            session.handle(protocol.lease_message(0, [0, units]))

    def test_lease_streams_one_result_per_position_then_done(self):
        outbox = []
        session = WorkerSession(outbox.append)
        session.handle(
            protocol.hello_message(
                tiny_spec(), "reference", "numpy", cache_enabled=False
            )
        )
        outbox.clear()
        session.handle(protocol.lease_message(7, [1, 2]))
        kinds = [message["type"] for message in outbox]
        assert kinds == ["result", "result", "lease_done"]
        assert [m["position"] for m in outbox[:2]] == [1, 2]
        assert all(m["lease_id"] == 7 for m in outbox)
        assert {"ebw", "processor_utilization", "bus_utilization"} <= set(
            outbox[0]["metrics"]
        )

    def test_shutdown_ends_the_session(self):
        session = WorkerSession(lambda message: None)
        assert session.handle(protocol.shutdown_message()) is False


class _StubTransport:
    """A scriptable worker for coordinator edge cases."""

    def __init__(self, name, ready_units, complete_leases=True):
        self.name = name
        self._outbox = []
        self._ready_units = ready_units
        self._complete = complete_leases
        self._dead = False

    def send(self, message):
        if self._dead:
            return
        if message["type"] == "hello":
            self._outbox.append(
                protocol.ready_message(self._ready_units, 999)
            )
        elif message["type"] == "lease":
            # A protocol-violating worker: declares the lease done
            # without streaming any results.
            if self._complete:
                self._outbox.append(
                    protocol.lease_done_message(message["lease_id"])
                )

    def receive(self):
        return self._outbox.pop(0) if self._outbox else None

    def alive(self):
        return not self._dead or bool(self._outbox)

    def close(self):
        self._dead = True


class TestCoordinator:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(ExperimentError, match="at least one worker"):
            Coordinator(tiny_spec(), [])

    def test_unit_count_mismatch_is_version_skew(self):
        spec = tiny_spec()
        wrong = len(compile_scenario(spec)) + 5
        coordinator = Coordinator(
            spec,
            [_StubTransport("skewed", wrong)],
            cache_enabled=False,
        )
        with pytest.raises(ExperimentError, match="different code versions"):
            coordinator.run()

    def test_all_workers_dying_aborts_with_outstanding_count(self):
        coordinator = Coordinator(
            tiny_spec(),
            [LoopbackTransport("dies", fail_after_results=1)],
            lease_size=2,
            cache_enabled=False,
        )
        with pytest.raises(ExperimentError, match="workers failed"):
            coordinator.run()

    def test_retry_budget_bounds_protocol_violators(self):
        spec = tiny_spec()
        coordinator = Coordinator(
            spec,
            [_StubTransport("liar", len(compile_scenario(spec)))],
            lease_size=2,
            max_retries=2,
            cache_enabled=False,
        )
        with pytest.raises(ExperimentError, match="lease retries"):
            coordinator.run()

    def test_single_loopback_worker_completes_everything(self):
        coordinator = Coordinator(
            tiny_spec(),
            [LoopbackTransport("solo")],
            cache_enabled=False,
        )
        results = coordinator.run()
        assert [r.unit.index for r in results] == list(
            range(len(coordinator.units))
        )

    def test_workers_share_the_result_store(self, tmp_path):
        """A second sweep over a warm shared store is served entirely
        from the coordinator's pre-lease probe - zero units dispatched."""
        store = tmp_path / "store"
        for expect_cached in (False, True):
            coordinator = Coordinator(
                tiny_spec(),
                [LoopbackTransport("w0"), LoopbackTransport("w1")],
                cache_enabled=True,
                cache_dir=str(store),
            )
            results = coordinator.run()
            assert all(r.cached == expect_cached for r in results)
            if expect_cached:
                assert coordinator.units_dispatched == 0
                assert coordinator.leases_issued == 0
                assert coordinator.probe_hits == len(coordinator.units)
            else:
                assert coordinator.units_dispatched == len(coordinator.units)
                assert coordinator.probe_hits == 0
        # The store used the sharded concurrent layout throughout.
        assert list(store.glob("*.json")) == []
        assert list(store.glob("[0-9a-f][0-9a-f]/*.json"))

    def test_unknown_plan_mode_is_rejected(self):
        with pytest.raises(ExperimentError, match="plan mode"):
            Coordinator(
                tiny_spec(),
                [LoopbackTransport("solo")],
                plan_mode="psychic",
            )

    def test_contiguous_plan_mode_matches_affine_bytes(self):
        from repro.scenarios.execute import render_report

        reports = []
        for plan_mode in ("affine", "contiguous"):
            coordinator = Coordinator(
                tiny_spec(),
                [LoopbackTransport("solo")],
                plan_mode=plan_mode,
                cache_enabled=False,
            )
            reports.append(render_report(coordinator.run()))
        assert reports[0] == reports[1]

    def test_default_lease_size_bounds(self):
        assert default_lease_size(1, 1) == 1
        assert default_lease_size(100, 2) == 13
        assert default_lease_size(10_000_000, 4) == 256


class TestServiceCli:
    def test_sweep_serve_rejects_bad_workers(self, capsys):
        from repro.service.cli import serve_main

        with pytest.raises(SystemExit):
            serve_main(["figure2", "--workers", "0"])

    def test_sweep_serve_rejects_backend_without_batch(self, capsys):
        from repro.service.cli import serve_main

        with pytest.raises(SystemExit):
            serve_main(["figure2", "--backend", "numba"])

    def test_sweep_serve_rejects_bad_lease_size(self, capsys):
        from repro.service.cli import serve_main

        with pytest.raises(SystemExit):
            serve_main(["figure2", "--lease-size", "0"])

    def test_sweep_work_rejects_bad_exit_after(self, capsys):
        from repro.service.cli import work_main

        with pytest.raises(SystemExit):
            work_main(["--exit-after", "0"])

    def test_sweep_serve_unknown_scenario_is_error(self, capsys):
        from repro.service.cli import serve_main

        assert serve_main(["no-such-scenario", "--workers", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_scenario_rejects_jobs_with_workers(self, capsys):
        from repro.scenarios.cli import main as scenario_main

        with pytest.raises(SystemExit):
            scenario_main(
                ["figure2", "--jobs", "2", "--workers", "2"]
            )

    def test_scenario_rejects_nonpositive_workers(self, capsys):
        from repro.scenarios.cli import main as scenario_main

        with pytest.raises(SystemExit):
            scenario_main(["figure2", "--workers", "0"])

    def test_scenario_rejects_lease_size_without_workers(self, capsys):
        from repro.scenarios.cli import main as scenario_main

        with pytest.raises(SystemExit):
            scenario_main(["figure2", "--lease-size", "2"])
        assert "requires --workers" in capsys.readouterr().err

    def test_scenario_rejects_nonpositive_lease_size(self, capsys):
        from repro.scenarios.cli import main as scenario_main

        with pytest.raises(SystemExit):
            scenario_main(["figure2", "--workers", "2", "--lease-size", "0"])
