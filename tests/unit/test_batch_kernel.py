"""Unit tests for the batch kernel's surface and guard rails.

The numerical contracts (composition invariance, statistical
equivalence) live in ``tests/properties/test_batch_invariance.py`` and
``tests/integration/test_batch_statistics.py``; this module covers the
API edges: the optional-dependency error, capability rejections, fleet
shape validation, the run protocol, and the ``simulate`` entry point.
"""

from __future__ import annotations

import builtins

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority


def test_missing_numpy_raises_configuration_error_naming_extra(monkeypatch):
    """Without numpy, batch entry points name the [batch] extra."""
    from repro.bus import batch

    real_import = builtins.__import__

    def no_numpy(name, *args, **kwargs):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy disabled for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_numpy)
    assert not batch.numpy_available()
    with pytest.raises(ConfigurationError, match=r"repro-single-bus\[batch\]"):
        batch.require_numpy()
    with pytest.raises(ConfigurationError, match=r"\[batch\]"):
        batch.run_batch(SystemConfig(2, 2, 2), cycles=100)


def test_check_batch_metrics_accepts_latency_rejects_unknown():
    from repro.bus.batch import check_batch_metrics

    check_batch_metrics(())
    check_batch_metrics(("latency",))
    with pytest.raises(ConfigurationError, match="telemetry"):
        check_batch_metrics(("latency", "telemetry"))


def test_check_batch_features_names_each_unsupported_feature():
    from repro.bus.batch import check_batch_features

    check_batch_features(metrics=("latency",))
    check_batch_features(geometric_access_times=True)
    # geometric + latency is supported now: per-access service spans
    # feed the service sketch.
    check_batch_features(metrics=("latency",), geometric_access_times=True)

    class CustomSampler:
        def sample(self, processor):  # pragma: no cover - never called
            return 0

    with pytest.raises(ConfigurationError, match="CustomSampler"):
        check_batch_features(targets=CustomSampler())


def test_compile_scenario_accepts_batch_latency_metrics():
    from repro.scenarios.compiler import compile_scenario
    from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec

    spec = ScenarioSpec(
        name="batch-latency-accept",
        description="",
        base={"processors": 2, "memories": 2},
        grid=(GridAxis("memory_cycle_ratio", (2,)),),
        cycles=200,
        plan=ReplicationPlan(2, 0),
        metrics=("latency",),
    )
    units = compile_scenario(spec, kernel="batch")
    assert all(unit.collects_latency for unit in units)
    # The exact kernels keep compiling it too.
    assert compile_scenario(spec, kernel="fast")


def test_compile_scenario_rejects_unknown_kernel():
    from repro.scenarios.compiler import compile_scenario
    from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec

    spec = ScenarioSpec(
        name="kernel-typo",
        description="",
        base={"processors": 2, "memories": 2},
        grid=(GridAxis("memory_cycle_ratio", (2,)),),
        cycles=200,
        plan=ReplicationPlan(1, 0),
    )
    with pytest.raises(
        ConfigurationError, match="reference, fast, batch"
    ):
        compile_scenario(spec, kernel="bacth")


def test_simulate_batch_collects_latency_and_geometric_combined():
    pytest.importorskip("numpy")
    from repro.bus import simulate

    config = SystemConfig(2, 2, 2)
    result = simulate(config, cycles=400, kernel="batch", collect_latency=True)
    assert result.latency is not None
    assert result.latency.total.count == result.completions
    geo = simulate(
        config, cycles=400, kernel="batch", geometric_access_times=True
    )
    assert geo.completions > 0
    both = simulate(
        config,
        cycles=400,
        kernel="batch",
        geometric_access_times=True,
        collect_latency=True,
    )
    assert both.latency is not None
    assert both.latency.total.count == both.completions
    # Geometric service times are at least 1 cycle and unbounded above,
    # so the sampled service summary must stay within the total span.
    assert both.latency.service.max_value >= 1
    assert both.latency.service.max_value <= both.latency.total.max_value


def test_batch_geometric_matches_exact_kernels_on_degenerate_r1():
    """r = 1 collapses the geometric draw to the constant path: the
    access-time stream is never consulted, so counters match the
    constant-access batch run bit-for-bit."""
    pytest.importorskip("numpy")
    from repro.bus.batch import run_batch

    config = SystemConfig(3, 3, 1)
    geo = run_batch(config, cycles=1_000, seed=5, geometric_access_times=True)
    const = run_batch(config, cycles=1_000, seed=5)
    assert geo == const


def test_unknown_kernel_error_lists_batch():
    from repro.bus import simulate

    with pytest.raises(ConfigurationError, match="reference, fast, batch"):
        simulate(SystemConfig(2, 2, 2), cycles=10, kernel="warp")


class TestFleetValidation:
    def setup_method(self):
        pytest.importorskip("numpy")

    def test_mismatched_shapes_are_packed_not_rejected(self):
        """Shape heterogeneity packs into one padded program now; only
        the pack fields (priority, tie_break, buffered) must match."""
        from repro.bus.batch import BatchBusKernel

        results = BatchBusKernel(
            [SystemConfig(2, 2, 2), SystemConfig(2, 3, 2)], [0, 1]
        ).run(400)
        assert all(result.completions > 0 for result in results)

    def test_mismatched_pack_fields_are_rejected(self):
        from repro.bus.batch import BatchBusKernel

        with pytest.raises(ConfigurationError, match="pack fields"):
            BatchBusKernel(
                [
                    SystemConfig(2, 2, 2),
                    SystemConfig(2, 2, 2, priority=Priority.MEMORIES),
                ],
                [0, 1],
            )
        with pytest.raises(ConfigurationError, match="pack fields"):
            BatchBusKernel(
                [
                    SystemConfig(2, 2, 2),
                    SystemConfig(2, 2, 2, buffered=True, buffer_depth=2),
                ],
                [0, 1],
            )

    def test_request_probability_may_differ_per_row(self):
        from repro.bus.batch import BatchBusKernel

        results = BatchBusKernel(
            [
                SystemConfig(2, 2, 2, request_probability=1.0),
                SystemConfig(2, 2, 2, request_probability=0.5),
            ],
            [0, 0],
        ).run(800)
        assert results[0].completions > results[1].completions

    def test_seed_config_length_mismatch(self):
        from repro.bus.batch import BatchBusKernel

        with pytest.raises(ConfigurationError, match="seeds"):
            BatchBusKernel([SystemConfig(2, 2, 2)], [0, 1])

    def test_empty_fleet_rejected(self):
        from repro.bus.batch import BatchBusKernel

        with pytest.raises(ConfigurationError, match="at least one row"):
            BatchBusKernel([], [])

    def test_custom_sampler_rejected(self):
        from repro.bus.batch import run_batch

        class Custom:
            def next_target(self, processor):  # pragma: no cover
                return 0

        with pytest.raises(ConfigurationError, match="custom samplers"):
            run_batch(SystemConfig(2, 2, 2), cycles=50, targets=Custom())

    def test_run_validation_matches_reference_rules(self):
        from repro.bus.batch import BatchBusKernel

        config = SystemConfig(2, 2, 2)
        for kwargs in (
            {"cycles": 0},
            {"cycles": 10, "warmup": -1},
            {"cycles": 10, "batches": -2},
        ):
            with pytest.raises(ConfigurationError):
                BatchBusKernel([config], [0]).run(**kwargs)

    def test_cycle_cap_is_enforced(self):
        from repro.bus.batch import _NEVER, BatchBusKernel

        kernel = BatchBusKernel([SystemConfig(1, 1, 1)], [0])
        with pytest.raises(ConfigurationError, match="limited"):
            kernel.advance(_NEVER)


class TestRunProtocol:
    def setup_method(self):
        pytest.importorskip("numpy")

    def test_result_counters_are_python_ints(self):
        from repro.bus.batch import run_batch

        result = run_batch(SystemConfig(3, 3, 3), cycles=600, seed=2)
        assert type(result.completions) is int
        assert type(result.memory_busy_cycles) is int
        assert type(result.total_latency) is int
        assert result.response_transfers == result.completions
        assert all(isinstance(b, float) for b in result.batch_ebws)

    def test_default_batches_and_warmup(self):
        from repro.bus.batch import run_batch

        result = run_batch(SystemConfig(3, 3, 3), cycles=2_000, seed=1)
        assert result.warmup_cycles == 500
        assert result.cycles == 2_000
        assert len(result.batch_ebws) == 20

    def test_counters_stay_in_sane_ranges(self):
        from repro.bus.batch import run_batch

        config = SystemConfig(4, 4, 4, priority=Priority.MEMORIES)
        result = run_batch(config, cycles=3_000, seed=7)
        assert 0.0 < result.ebw <= config.max_ebw
        assert 0.0 < result.bus_utilization <= 1.0
        assert 0.0 < result.memory_utilization <= 1.0
        assert result.mean_latency >= config.memory_cycle_ratio + 2

    def test_deterministic_across_instances(self):
        from repro.bus.batch import run_batch

        first = run_batch(SystemConfig(3, 5, 4), cycles=1_000, seed=13)
        second = run_batch(SystemConfig(3, 5, 4), cycles=1_000, seed=13)
        assert first == second
