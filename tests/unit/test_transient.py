"""Unit tests for :mod:`repro.analysis.transient`."""

from __future__ import annotations

import pytest

from repro.analysis.transient import (
    averaged_replications,
    ebw_time_series,
    suggest_warmup,
    welch_moving_average,
)
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError


class TestTimeSeries:
    def test_shape_and_range(self):
        config = SystemConfig(4, 4, 4)
        series = ebw_time_series(config, intervals=10, interval_cycles=500, seed=1)
        assert len(series) == 10
        assert all(0.0 <= v <= config.max_ebw * 1.2 for v in series)

    def test_deterministic(self):
        config = SystemConfig(4, 4, 4)
        a = ebw_time_series(config, 5, 300, seed=2)
        b = ebw_time_series(config, 5, 300, seed=2)
        assert a == b

    def test_averaging_reduces_variance(self):
        config = SystemConfig(8, 8, 8)
        single = ebw_time_series(config, 12, 400, seed=1)
        averaged = averaged_replications(config, replications=6, intervals=12,
                                         interval_cycles=400, base_seed=1)

        def spread(xs):
            mean = sum(xs) / len(xs)
            return sum((x - mean) ** 2 for x in xs)

        # The tail of the averaged series fluctuates less than the
        # single run's tail.
        assert spread(averaged[4:]) <= spread(single[4:]) + 1e-9

    def test_validation(self):
        config = SystemConfig(2, 2, 2)
        with pytest.raises(ConfigurationError):
            ebw_time_series(config, 0, 10)
        with pytest.raises(ConfigurationError):
            ebw_time_series(config, 10, 0)
        with pytest.raises(ConfigurationError):
            averaged_replications(config, 0, 5, 10)


class TestWelchSmoothing:
    def test_window_zero_is_identity(self):
        series = [1.0, 5.0, 3.0]
        assert welch_moving_average(series, 0) == series

    def test_constant_series_unchanged(self):
        assert welch_moving_average([2.0] * 6, 2) == [2.0] * 6

    def test_centre_window(self):
        smoothed = welch_moving_average([0.0, 3.0, 6.0], 1)
        assert smoothed[1] == pytest.approx(3.0)
        # Edges use shrunk windows: first element is itself.
        assert smoothed[0] == 0.0
        assert smoothed[2] == 6.0

    def test_smooths_noise(self):
        noisy = [1.0, 2.0] * 10
        smoothed = welch_moving_average(noisy, 3)
        assert max(smoothed[3:-3]) - min(smoothed[3:-3]) < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            welch_moving_average([], 1)
        with pytest.raises(ConfigurationError):
            welch_moving_average([1.0], -1)


class TestSuggestWarmup:
    def test_steady_series_needs_no_warmup(self):
        assert suggest_warmup([5.0] * 20) == 0

    def test_transient_detected(self):
        series = [0.0, 1.0, 2.0, 3.0] + [4.0] * 16
        warmup = suggest_warmup(series, window=1, tolerance=0.05)
        assert 1 <= warmup <= 6

    def test_never_settling_series(self):
        series = [float(i) for i in range(20)]
        assert suggest_warmup(series, window=0, tolerance=0.001) >= 18

    def test_real_simulation_warmup_is_modest(self):
        # The machine reaches steady state quickly; the default 25%
        # warm-up used by run() is comfortably conservative.
        config = SystemConfig(8, 16, 8)
        series = averaged_replications(
            config, replications=4, intervals=20, interval_cycles=400,
            base_seed=3,
        )
        warmup = suggest_warmup(series, window=2, tolerance=0.05)
        assert warmup <= 10  # half the horizon

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            suggest_warmup([1.0], tolerance=0.0)
        with pytest.raises(ConfigurationError):
            suggest_warmup([1.0], tail_fraction=0.0)
