"""Unit tests for the ``repro-experiments scenario`` subcommand."""

from __future__ import annotations

import textwrap

import pytest

from repro.experiments.runner import main
from repro.scenarios.execute import merge_reports

TINY_TOML = textwrap.dedent(
    """
    name = "cli-tiny"
    cycles = 300

    [base]
    processors = 2
    memories = 2

    [[grid]]
    field = "memory_cycle_ratio"
    values = [1, 2]

    [[grid]]
    field = "buffered"
    values = [false, true]

    [replications]
    count = 2
    base_seed = 5
    """
)


@pytest.fixture
def tiny_toml(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_TOML)
    return str(path)


class TestListing:
    def test_bare_subcommand_lists_scenarios(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "available scenarios" in out
        assert "figure2" in out
        assert "buffer-depth-scaling" in out


class TestRunning:
    def test_stdout_is_unit_lines_only(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--no-cache"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert len(lines) == 8
        assert all(line.startswith("unit ") for line in lines)
        assert "units" in captured.err

    def test_registered_scenario_runs(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "buffer-depth-scaling",
                    "--cycles",
                    "200",
                    "--no-cache",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 12

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["scenario", "figure9"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_shard_fails_cleanly(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--shard", "9/4"]) == 2
        assert "shard" in capsys.readouterr().err


class TestShardMerge:
    def test_merged_shard_stdout_equals_unsharded(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--no-cache"]) == 0
        full = capsys.readouterr().out
        reports = []
        for index in (1, 2, 3):
            assert (
                main(
                    ["scenario", tiny_toml, "--no-cache", "--shard", f"{index}/3"]
                )
                == 0
            )
            reports.append(capsys.readouterr().out)
        assert merge_reports(reports) + "\n" == full

    def test_seed_override_changes_units(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--no-cache"]) == 0
        default = capsys.readouterr().out
        assert main(["scenario", tiny_toml, "--no-cache", "--seed", "99"]) == 0
        reseeded = capsys.readouterr().out
        assert default != reseeded
        assert "seed=99" in reseeded


class TestCaching:
    def test_cache_serves_identical_bytes(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml]) == 0
        cold = capsys.readouterr()
        assert main(["scenario", tiny_toml]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "8 from cache" in warm.err
