"""Unit tests for the ``repro-experiments scenario`` subcommand."""

from __future__ import annotations

import textwrap

import pytest

from repro.experiments.runner import main
from repro.scenarios.execute import merge_reports

TINY_TOML = textwrap.dedent(
    """
    name = "cli-tiny"
    cycles = 300

    [base]
    processors = 2
    memories = 2

    [[grid]]
    field = "memory_cycle_ratio"
    values = [1, 2]

    [[grid]]
    field = "buffered"
    values = [false, true]

    [replications]
    count = 2
    base_seed = 5
    """
)


@pytest.fixture
def tiny_toml(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_TOML)
    return str(path)


class TestListing:
    def test_bare_subcommand_lists_scenarios(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "available scenarios" in out
        assert "figure2" in out
        assert "buffer-depth-scaling" in out


class TestRunning:
    def test_stdout_is_unit_lines_only(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--no-cache"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert len(lines) == 8
        assert all(line.startswith("unit ") for line in lines)
        assert "units" in captured.err

    def test_registered_scenario_runs(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "buffer-depth-scaling",
                    "--cycles",
                    "200",
                    "--no-cache",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 12

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["scenario", "figure9"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_shard_fails_cleanly(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--shard", "9/4"]) == 2
        assert "shard" in capsys.readouterr().err


class TestShardMerge:
    def test_merged_shard_stdout_equals_unsharded(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--no-cache"]) == 0
        full = capsys.readouterr().out
        reports = []
        for index in (1, 2, 3):
            assert (
                main(
                    ["scenario", tiny_toml, "--no-cache", "--shard", f"{index}/3"]
                )
                == 0
            )
            reports.append(capsys.readouterr().out)
        assert merge_reports(reports) + "\n" == full

    def test_seed_override_changes_units(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--no-cache"]) == 0
        default = capsys.readouterr().out
        assert main(["scenario", tiny_toml, "--no-cache", "--seed", "99"]) == 0
        reseeded = capsys.readouterr().out
        assert default != reseeded
        assert "seed=99" in reseeded


class TestCaching:
    def test_cache_serves_identical_bytes(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml]) == 0
        cold = capsys.readouterr()
        assert main(["scenario", tiny_toml]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "8 from cache" in warm.err

    def test_cache_stats_flag_reports_on_stderr(
        self, tiny_toml, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["scenario", tiny_toml, "--cache-stats"]) == 0
        cold = capsys.readouterr()
        assert "[cache-stats " in cold.err
        assert "misses=8" in cold.err
        assert main(["scenario", tiny_toml, "--cache-stats"]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # stdout stays byte-identical
        assert "hits=8" in warm.err

    def test_cache_stats_with_disabled_cache_says_so(self, tiny_toml, capsys):
        assert main(
            ["scenario", tiny_toml, "--no-cache", "--cache-stats"]
        ) == 0
        assert "[cache-stats disabled]" in capsys.readouterr().err

    def test_cache_stats_with_workers_reports_probe_and_dispatch(
        self, tiny_toml, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["scenario", tiny_toml]) == 0
        serial = capsys.readouterr()
        assert main(
            ["scenario", tiny_toml, "--workers", "2", "--cache-stats"]
        ) == 0
        warm = capsys.readouterr()
        assert warm.out == serial.out
        assert "probe_hits=8" in warm.err
        assert "dispatched=0" in warm.err


GOLDEN_TINY_FIRST_LINE = (
    "unit 000000 n=2 m=2 r=1 p=1 priority=processors unbuffered tie=random "
    "workload=uniform method=simulation seed=5 cycles=300 ebw=1.320000 "
    "putil=0.660000 butil=0.880000"
)
"""Pre-metrics stdout of ``tiny.toml``'s first unit, captured before the
latency pipeline existed.  Guards the acceptance criterion that scenario
output without ``--metrics`` stays byte-identical."""


class TestLatencyMetricsFlag:
    def test_no_metrics_output_matches_pre_metrics_bytes(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == GOLDEN_TINY_FIRST_LINE
        assert "lat_" not in out

    def test_metrics_flag_appends_percentile_columns(self, tiny_toml, capsys):
        assert (
            main(["scenario", tiny_toml, "--no-cache", "--metrics", "latency"])
            == 0
        )
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 8
        for line in lines:
            # The pre-metrics prefix is unchanged; percentile columns
            # are appended after it.
            assert " lat_count=" in line
            for column in (
                "wait_mean=", "wait_p50=", "wait_p90=", "wait_p99=",
                "wait_max=", "serv_mean=", "serv_p50=", "serv_p90=",
                "serv_p99=", "serv_max=", "lat_mean=", "lat_p50=",
                "lat_p90=", "lat_p99=", "lat_max=",
            ):
                assert column in line
        assert lines[0].startswith(GOLDEN_TINY_FIRST_LINE + " lat_count=")

    def test_metrics_rejected_for_analytic_scenarios(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "bandwidth-vs-simulation",
                    "--no-cache",
                    "--metrics",
                    "latency",
                ]
            )
            == 2
        )
        assert "analytic" in capsys.readouterr().err

    def test_unknown_metric_rejected(self, tiny_toml, capsys):
        assert (
            main(["scenario", tiny_toml, "--no-cache", "--metrics", "power"])
            == 2
        )
        assert "unknown metric" in capsys.readouterr().err

    def test_metric_and_plain_runs_share_no_cache_entries(
        self, tiny_toml, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["scenario", tiny_toml]) == 0
        plain_cold = capsys.readouterr().out
        # A metric run after a plain run must not be served from the
        # plain entries (they carry no latency payloads)...
        assert main(["scenario", tiny_toml, "--metrics", "latency"]) == 0
        metric_cold = capsys.readouterr()
        assert "0 from cache" in metric_cold.err
        # ...and both warm reruns serve their own entries byte-identically.
        assert main(["scenario", tiny_toml]) == 0
        plain_warm = capsys.readouterr()
        assert plain_warm.out == plain_cold
        assert "8 from cache" in plain_warm.err
        assert main(["scenario", tiny_toml, "--metrics", "latency"]) == 0
        metric_warm = capsys.readouterr()
        assert metric_warm.out == metric_cold.out
        assert "8 from cache" in metric_warm.err

    def test_sharded_metric_output_merges_byte_identically(
        self, tiny_toml, capsys
    ):
        assert (
            main(["scenario", tiny_toml, "--no-cache", "--metrics", "latency"])
            == 0
        )
        full = capsys.readouterr().out
        reports = []
        for index in (1, 2, 3):
            assert (
                main(
                    [
                        "scenario",
                        tiny_toml,
                        "--no-cache",
                        "--metrics",
                        "latency",
                        "--shard",
                        f"{index}/3",
                    ]
                )
                == 0
            )
            reports.append(capsys.readouterr().out)
        assert merge_reports(reports) + "\n" == full


class TestBatchKernelCli:
    def test_batch_kernel_runs_and_is_shard_stable(self, tiny_toml, capsys):
        pytest.importorskip("numpy")
        assert main(["scenario", tiny_toml, "--kernel", "batch",
                     "--no-cache"]) == 0
        unsharded = capsys.readouterr().out
        assert unsharded.count("\n") == 8
        shard_outputs = []
        for shard in ("1/2", "2/2"):
            assert main([
                "scenario", tiny_toml, "--kernel", "batch", "--no-cache",
                "--shard", shard,
            ]) == 0
            shard_outputs.append(capsys.readouterr().out)
        assert merge_reports(shard_outputs) + "\n" == unsharded

    def test_pack_and_no_pack_are_byte_identical(self, tiny_toml, capsys):
        """Packing coarsens fleet grouping only; the unit lines - the
        scenario's whole byte surface - must not move."""
        pytest.importorskip("numpy")
        assert main(["scenario", tiny_toml, "--kernel", "batch",
                     "--no-cache"]) == 0
        packed = capsys.readouterr().out
        assert main(["scenario", tiny_toml, "--kernel", "batch",
                     "--no-cache", "--no-pack"]) == 0
        unpacked = capsys.readouterr().out
        assert packed == unpacked

    def test_no_pack_conflicts_with_workers(self, tiny_toml, capsys):
        with pytest.raises(SystemExit):
            main(["scenario", tiny_toml, "--no-pack", "--workers", "2"])
        assert "serial path" in capsys.readouterr().err

    def test_batch_kernel_renders_latency_percentiles(
        self, tiny_toml, capsys
    ):
        pytest.importorskip("numpy")
        assert main(["scenario", tiny_toml, "--kernel", "batch",
                     "--metrics", "latency", "--no-cache"]) == 0
        out = capsys.readouterr().out
        for column in ("lat_count=", "wait_p90=", "lat_p50=", "lat_p99="):
            assert column in out


class TestChartFlag:
    def test_chart_goes_to_stderr_and_stdout_is_unchanged(
        self, tiny_toml, capsys
    ):
        assert main(["scenario", tiny_toml, "--no-cache"]) == 0
        plain = capsys.readouterr().out
        assert main(["scenario", tiny_toml, "--no-cache", "--metrics",
                     "latency", "--chart"]) == 0
        captured = capsys.readouterr()
        assert "lat_p50" in captured.err and "legend:" in captured.err
        assert "lat_p50" not in plain

    def test_chart_without_latency_warns(self, tiny_toml, capsys):
        assert main(["scenario", tiny_toml, "--no-cache", "--chart"]) == 0
        captured = capsys.readouterr()
        assert "warning: no chart" in captured.err
        assert "legend:" not in captured.err


def test_fast_conflicts_with_kernel_batch(tiny_toml, capsys):
    with pytest.raises(SystemExit):
        main(["scenario", tiny_toml, "--kernel", "batch", "--fast"])
    assert "conflicts" in capsys.readouterr().err
