"""Unit tests for the crossbar and multiple-bus baseline models."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.models.crossbar import crossbar_approximate_ebw, crossbar_exact_ebw
from repro.models.multiple_bus import (
    minimum_buses_matching,
    multiple_bus_approximate_ebw,
    multiple_bus_exact_ebw,
)


class TestCrossbarExact:
    def test_2x2_closed_form(self):
        # Bhandarkar 2x2: stationary mean busy = 1.5.
        assert crossbar_exact_ebw(SystemConfig(2, 2, 1)).ebw == pytest.approx(1.5)

    def test_single_processor(self):
        assert crossbar_exact_ebw(SystemConfig(1, 8, 1)).ebw == pytest.approx(1.0)

    def test_single_module(self):
        assert crossbar_exact_ebw(SystemConfig(8, 1, 1)).ebw == pytest.approx(1.0)

    def test_independent_of_r(self):
        # The crossbar cycle is defined as (r+2)t, so per-processor-cycle
        # EBW does not depend on r.
        a = crossbar_exact_ebw(SystemConfig(8, 8, 2)).ebw
        b = crossbar_exact_ebw(SystemConfig(8, 8, 24)).ebw
        assert a == b

    def test_exact_below_strecker(self):
        # The exact chain remembers piled-up blocked requests, which
        # *lowers* bandwidth relative to the memoryless Strecker profile;
        # the two stay within ~10% of each other on the paper's sizes.
        for n, m in [(4, 4), (8, 8), (8, 4), (6, 10)]:
            exact = crossbar_exact_ebw(SystemConfig(n, m, 1)).ebw
            approx = crossbar_approximate_ebw(SystemConfig(n, m, 1)).ebw
            assert exact <= approx + 1e-12
            assert exact == pytest.approx(approx, rel=0.10)

    def test_8x8_value_near_0_6n(self):
        # Introduction: "its bandwidth is only 0.6 n when [n and m] are
        # both large and equal"; at 8x8 the exact value is 0.618 n.
        ebw = crossbar_exact_ebw(SystemConfig(8, 8, 1)).ebw
        assert ebw / 8 == pytest.approx(0.618, abs=0.01)

    def test_monotone_in_modules(self):
        values = [
            crossbar_exact_ebw(SystemConfig(8, m, 1)).ebw for m in (2, 4, 8, 16)
        ]
        assert values == sorted(values)
        assert values[-1] <= 8.0

    def test_requires_p_one(self):
        with pytest.raises(ConfigurationError):
            crossbar_exact_ebw(SystemConfig(2, 2, 1, request_probability=0.5))


class TestCrossbarApproximate:
    def test_strecker_formula(self):
        config = SystemConfig(8, 16, 1)
        expected = 16 * (1 - (1 - 1 / 16) ** 8)
        assert crossbar_approximate_ebw(config).ebw == pytest.approx(expected)

    def test_method_label(self):
        assert (
            crossbar_approximate_ebw(SystemConfig(2, 2, 1)).method
            == "crossbar-approximate"
        )


class TestMultipleBus:
    def test_full_width_equals_crossbar(self):
        # b = min(n, m) buses serve every busy module: crossbar behaviour.
        crossbar = crossbar_exact_ebw(SystemConfig(6, 6, 1)).ebw
        assert multiple_bus_exact_ebw(6, 6, 6) == pytest.approx(crossbar)

    def test_single_bus_serves_one(self):
        assert multiple_bus_exact_ebw(8, 8, 1) == pytest.approx(1.0)

    def test_monotone_in_buses(self):
        values = [multiple_bus_exact_ebw(8, 8, b) for b in range(1, 9)]
        assert values == sorted(values)

    def test_bounded_by_buses(self):
        for b in (1, 2, 3):
            assert multiple_bus_exact_ebw(8, 8, b) <= b + 1e-12

    def test_approximate_close_to_exact(self):
        for n, m, b in [(4, 4, 2), (8, 8, 4), (8, 16, 4)]:
            exact = multiple_bus_exact_ebw(n, m, b)
            approx = multiple_bus_approximate_ebw(n, m, b)
            assert approx == pytest.approx(exact, rel=0.15)

    def test_section7_four_buses_claim(self):
        # Section 7: matching the 8x8 crossbar (m=10 memories, r=8)
        # "four buses are needed with a multiple-bus network".  The
        # multiple-bus network of ref [5] is non-multiplexed (one memory
        # cycle per service), so the comparison is rate-normalised per
        # bus cycle: crossbar rate = EBW / (r+2), multiple-bus rate =
        # E[min(x, b)] / r.  That reading reproduces b = 4 exactly.
        from repro.models.multiple_bus import minimum_buses_matching_rate

        crossbar_rate = crossbar_exact_ebw(SystemConfig(8, 8, 1)).ebw / (8 + 2)
        needed = minimum_buses_matching_rate(
            processors=8,
            modules=10,
            memory_cycle_ratio=8,
            target_requests_per_bus_cycle=crossbar_rate,
        )
        assert needed == 4

    def test_minimum_buses_matching_rate_validation(self):
        from repro.models.multiple_bus import minimum_buses_matching_rate
        from repro.core.errors import ConfigurationError as CE

        with pytest.raises(CE):
            minimum_buses_matching_rate(8, 8, 0, 0.5)
        with pytest.raises(CE):
            minimum_buses_matching_rate(8, 8, 4, 0.0)
        assert minimum_buses_matching_rate(2, 2, 8, 10.0) is None

    def test_minimum_buses_unreachable(self):
        assert minimum_buses_matching(4, 4, 100.0) is None

    def test_minimum_buses_validation(self):
        with pytest.raises(ConfigurationError):
            minimum_buses_matching(4, 4, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            multiple_bus_exact_ebw(0, 4, 1)
        with pytest.raises(ConfigurationError):
            multiple_bus_exact_ebw(4, 0, 1)
        with pytest.raises(ConfigurationError):
            multiple_bus_exact_ebw(4, 4, 0)
