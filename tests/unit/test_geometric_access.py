"""Unit tests for the geometric access-time extension (Section 6)."""

from __future__ import annotations

import pytest

from repro.bus import MultiplexedBusSystem
from repro.bus.memory import MemoryModule, PendingRequest
from repro.core.config import SystemConfig
from repro.core.errors import SimulationError
from repro.core.policy import Priority


class TestAccessSampler:
    def test_constant_by_default(self):
        module = MemoryModule(0, access_cycles=4)
        module.deliver_request(PendingRequest(0, 0))
        assert module._remaining == 4

    def test_sampler_used_per_request(self):
        durations = iter([2, 5])
        module = MemoryModule(
            0,
            access_cycles=4,
            input_depth=1,
            output_depth=1,
            access_sampler=lambda: next(durations),
        )
        module.deliver_request(PendingRequest(0, 0))
        assert module._remaining == 2
        module.deliver_request(PendingRequest(1, 0))
        module.tick(1)
        module.tick(2)  # first done, second starts with duration 5
        assert module._remaining == 5

    def test_invalid_duration_rejected(self):
        module = MemoryModule(
            0, access_cycles=4, access_sampler=lambda: 0
        )
        with pytest.raises(SimulationError, match="invalid duration"):
            module.deliver_request(PendingRequest(0, 0))


class TestGeometricMachine:
    def test_mean_access_time_close_to_r(self):
        config = SystemConfig(
            8, 8, 8, priority=Priority.PROCESSORS, buffered=True
        )
        system = MultiplexedBusSystem(config, seed=3, geometric_access_times=True)
        result = system.run(30_000)
        busy = sum(module.busy_cycles for module in system.modules)
        started = sum(module.services_started for module in system.modules)
        # Mean sampled duration must approximate r = 8.
        assert busy / started == pytest.approx(8.0, rel=0.1)
        assert result.completions > 0

    def test_geometric_reduces_ebw(self):
        config = SystemConfig(
            8, 8, 10, priority=Priority.PROCESSORS, buffered=True
        )
        constant = MultiplexedBusSystem(config, seed=3).run(30_000).ebw
        geometric = (
            MultiplexedBusSystem(config, seed=3, geometric_access_times=True)
            .run(30_000)
            .ebw
        )
        assert geometric < constant

    def test_deterministic_under_seed(self):
        config = SystemConfig(4, 4, 4, buffered=True)
        runs = [
            MultiplexedBusSystem(config, seed=9, geometric_access_times=True)
            .run(5_000)
            .completions
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_conservation_holds(self):
        config = SystemConfig(
            6, 4, 5, priority=Priority.MEMORIES, buffered=True
        )
        system = MultiplexedBusSystem(config, seed=11, geometric_access_times=True)
        for _ in range(500):
            system.step()
            system.audit()


class TestFastKernelGeometric:
    """The fast kernel serves geometric access times bit-identically.

    The deep fleet lives in
    ``tests/properties/test_kernel_equivalence.py``; this is the quick
    smoke pin plus the product_form use case (buffered, seed 1985).
    """

    def test_run_fast_matches_reference(self):
        from repro.bus import simulate
        from repro.bus.kernel import run_fast

        config = SystemConfig(
            8, 6, 8, priority=Priority.PROCESSORS, buffered=True
        )
        reference = simulate(
            config, cycles=2_000, seed=1985, geometric_access_times=True
        )
        fast = run_fast(
            config, cycles=2_000, seed=1985, geometric_access_times=True
        )
        assert reference == fast

    def test_geometric_differs_from_constant(self):
        from repro.bus.kernel import run_fast

        config = SystemConfig(4, 4, 6, buffered=True)
        constant = run_fast(config, cycles=2_000, seed=3)
        geometric = run_fast(
            config, cycles=2_000, seed=3, geometric_access_times=True
        )
        assert constant.completions != geometric.completions
