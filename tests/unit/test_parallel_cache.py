"""Unit tests for the content-addressed result cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.parallel.cache import (
    ENV_CACHE_DIR,
    ResultCache,
    canonical_json,
    code_version_tag,
    config_payload,
    default_cache_dir,
    fingerprint,
    reset_code_version_tag,
)


@pytest.fixture
def cache(tmp_path):
    """A cache isolated in tmp_path with a fixed version tag."""
    return ResultCache(cache_dir=tmp_path / "cache", version_tag="v-test")


class TestFingerprint:
    def test_canonical_json_is_key_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_fingerprint_stable_across_key_order(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_fingerprint_sensitive_to_values(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_config_payload_round_trips_all_fields(self):
        config = SystemConfig(4, 8, 6, request_probability=0.5, buffered=True)
        payload = config_payload(config)
        assert payload["processors"] == 4
        assert payload["memories"] == 8
        assert payload["memory_cycle_ratio"] == 6
        assert payload["request_probability"] == 0.5
        assert payload["buffered"] is True
        assert payload["priority"] == "processors"
        # Must be JSON-able as-is.
        json.dumps(payload)

    def test_distinct_configs_distinct_fingerprints(self):
        a = config_payload(SystemConfig(2, 2, 2))
        b = config_payload(SystemConfig(2, 2, 3))
        assert fingerprint(a) != fingerprint(b)


class TestHitMiss:
    def test_miss_then_hit(self, cache):
        key = cache.key({"x": 1})
        assert cache.get(key) is None
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_lookup_store_payload_interface(self, cache):
        payload = {"experiment_id": "demo", "kwargs": {"cycles": 100}}
        assert cache.lookup(payload) is None
        cache.store(payload, [1.0, 2.5])
        assert cache.lookup(payload) == [1.0, 2.5]

    def test_float_values_survive_exactly(self, cache):
        value = [0.1 + 0.2, 1e-17, 123456.789012345]
        cache.put("k" * 64, value)
        assert cache.get("k" * 64) == value

    def test_none_values_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="miss"):
            cache.put("k" * 64, None)

    def test_len_and_clear(self, cache):
        for i in range(3):
            cache.store({"i": i}, i)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_get_many_returns_only_the_hits(self, cache):
        keys = [cache.key({"x": i}) for i in range(4)]
        cache.put(keys[1], {"value": 1})
        cache.put(keys[3], {"value": 3})
        found = cache.get_many(keys)
        assert found == {keys[1]: {"value": 1}, keys[3]: {"value": 3}}
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2

    def test_get_many_probes_duplicate_keys_once(self, cache):
        key = cache.key({"x": 1})
        cache.put(key, {"value": 7})
        found = cache.get_many([key, key, key])
        assert found == {key: {"value": 7}}
        assert cache.stats.hits == 1


class TestInvalidation:
    def test_different_config_misses(self, cache):
        cache.store({"config": config_payload(SystemConfig(2, 2, 2))}, 1.0)
        assert (
            cache.lookup({"config": config_payload(SystemConfig(2, 2, 3))})
            is None
        )

    def test_different_seed_misses(self, cache):
        cache.store({"seed": 1}, 1.0)
        assert cache.lookup({"seed": 2}) is None

    def test_version_tag_change_invalidates(self, tmp_path):
        old = ResultCache(cache_dir=tmp_path, version_tag="v1")
        new = ResultCache(cache_dir=tmp_path, version_tag="v2")
        payload = {"experiment_id": "demo"}
        old.store(payload, "old-value")
        assert new.lookup(payload) is None
        assert old.lookup(payload) == "old-value"

    def test_default_version_tag_tracks_source(self):
        tag = code_version_tag()
        assert isinstance(tag, str) and len(tag) == 16
        # Deterministic within a process.
        assert code_version_tag() == tag

    def test_reset_code_version_tag_forces_recompute(self, monkeypatch):
        """Long-lived processes can drop the memoized tag explicitly."""
        from repro.parallel import cache as cache_module

        tag = code_version_tag()
        # Simulate a stale memo from before a code edit.
        monkeypatch.setattr(cache_module, "_CODE_VERSION", "stale-tag")
        assert code_version_tag() == "stale-tag"
        reset_code_version_tag()
        assert code_version_tag() == tag


class TestCorruptionRecovery:
    def test_unparseable_file_is_miss_and_removed(self, cache):
        key = cache.key({"x": 1})
        cache.put(key, 1.0)
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()
        assert cache.stats.evictions == 1

    def test_integrity_mismatch_is_miss(self, cache):
        key_a = cache.key({"x": 1})
        key_b = cache.key({"x": 2})
        cache.put(key_a, 1.0)
        # Simulate a renamed/moved entry: contents claim a different key.
        cache.path_for(key_b).parent.mkdir(parents=True, exist_ok=True)
        os.replace(cache.path_for(key_a), cache.path_for(key_b))
        assert cache.get(key_b) is None
        assert not cache.path_for(key_b).exists()

    def test_wrong_schema_is_miss(self, cache):
        key = cache.key({"x": 1})
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('["a", "list"]', encoding="utf-8")
        assert cache.get(key) is None

    def test_recovers_by_restoring_after_eviction(self, cache):
        key = cache.key({"x": 1})
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("garbage", encoding="utf-8")
        assert cache.get(key) is None
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"

    def test_transient_read_error_is_miss_without_eviction(
        self, cache, monkeypatch
    ):
        """A healthy entry must survive a transient I/O failure.

        Before the fix, *any* OSError on read deleted the entry - so an
        NFS hiccup evicted work another process had just paid to
        compute.  Now only proven corruption evicts.
        """
        import pathlib

        key = cache.key({"x": 1})
        cache.put(key, {"value": 7})
        real_read_text = pathlib.Path.read_text

        def flaky_read_text(self, *args, **kwargs):
            if self.name.endswith(".json"):
                raise PermissionError("transient NFS glitch")
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "read_text", flaky_read_text)
        assert cache.get(key) is None
        monkeypatch.undo()
        # The entry is still there and readable.
        assert cache.get(key) == {"value": 7}
        assert cache.stats.evictions == 0
        assert cache.stats.transient_errors == 1


class TestCrashSafety:
    def test_put_failure_never_leaks_tmp_files(self, cache, monkeypatch):
        """A write that dies mid-store must clean up its staging file."""
        import pathlib

        key = cache.key({"x": 1})
        real_write_text = pathlib.Path.write_text

        def exploding_write_text(self, *args, **kwargs):
            if self.name.endswith(".tmp"):
                real_write_text(self, *args, **kwargs)  # partial progress
                raise OSError(28, "No space left on device")
            return real_write_text(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "write_text", exploding_write_text)
        with pytest.raises(OSError):
            cache.put(key, [1, 2, 3])
        monkeypatch.undo()
        leaked = list(cache.cache_dir.rglob("*.tmp"))
        assert leaked == []
        assert cache.get(key) is None  # nothing half-stored

    def test_tmp_names_are_unique_within_one_pid(self, cache, monkeypatch):
        """Two stores in one process (or two containers sharing a pid
        namespace) must stage under different names; the random token
        beyond the pid guarantees it."""
        import pathlib

        seen = []
        real_write_text = pathlib.Path.write_text

        def recording_write_text(self, *args, **kwargs):
            if self.name.endswith(".tmp"):
                seen.append(self.name)
            return real_write_text(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "write_text", recording_write_text)
        key = cache.key({"x": 1})
        cache.put(key, 1)
        cache.put(key, 1)
        assert len(seen) == 2 and seen[0] != seen[1]
        assert all(str(os.getpid()) in name for name in seen)

    def test_clear_sweeps_orphaned_tmp_files(self, cache):
        key = cache.key({"x": 1})
        cache.put(key, 1)
        orphan = cache.path_for(key).with_name(".dead.12345.abcd.tmp")
        orphan.write_text("partial", encoding="utf-8")
        root_orphan = cache.cache_dir / ".old.999.tmp"
        root_orphan.write_text("partial", encoding="utf-8")
        assert cache.clear() == 1  # orphans are not entries
        assert not orphan.exists()
        assert not root_orphan.exists()
        assert list(cache.cache_dir.rglob("*.tmp")) == []

    def test_sweep_orphans_counts(self, cache):
        (cache.cache_dir / ".a.1.tmp").write_text("x", encoding="utf-8")
        shard = cache.cache_dir / "ab"
        shard.mkdir()
        (shard / ".b.2.tmp").write_text("y", encoding="utf-8")
        assert cache.sweep_orphans() == 2


class TestShardedLayout:
    def test_entries_fan_out_into_two_hex_shards(self, cache):
        key = cache.key({"x": 1})
        cache.put(key, 1)
        path = cache.path_for(key)
        assert path.parent.name == key[:2]
        assert path.parent.parent == cache.cache_dir
        assert path.exists()

    def test_legacy_flat_entries_remain_readable(self, cache):
        """Entries written by the old flat layout still hit."""
        key = cache.key({"x": 1})
        legacy = cache.legacy_path_for(key)
        legacy.write_text(
            json.dumps({"key": key, "version": "v-test", "value": 41}),
            encoding="utf-8",
        )
        assert cache.get(key) == 41
        assert cache.stats.hits == 1

    def test_legacy_hit_promotes_into_sharded_layout(self, cache):
        key = cache.key({"x": 1})
        legacy = cache.legacy_path_for(key)
        legacy.write_text(
            json.dumps({"key": key, "version": "v-test", "value": 41}),
            encoding="utf-8",
        )
        assert cache.get(key) == 41
        assert cache.path_for(key).exists()
        assert not legacy.exists()
        assert len(cache) == 1  # never double counted
        assert cache.get(key) == 41  # now served from the sharded path

    def test_corrupt_legacy_entry_is_evicted(self, cache):
        key = cache.key({"x": 1})
        cache.legacy_path_for(key).write_text("garbage", encoding="utf-8")
        assert cache.get(key) is None
        assert not cache.legacy_path_for(key).exists()
        assert cache.stats.evictions == 1

    def test_len_and_clear_cover_both_layouts(self, cache):
        sharded_key = cache.key({"x": 1})
        cache.put(sharded_key, 1)
        legacy_key = cache.key({"x": 2})
        cache.legacy_path_for(legacy_key).write_text(
            json.dumps({"key": legacy_key, "version": "v-test", "value": 2}),
            encoding="utf-8",
        )
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestDirectories:
    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "via-env"))
        assert default_cache_dir() == tmp_path / "via-env"

    def test_default_dir_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert default_cache_dir().name == "repro-single-bus"

    def test_cache_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        ResultCache(cache_dir=target, version_tag="v")
        assert target.is_dir()

    def test_unwritable_directory_raises_configuration_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        with pytest.raises(ConfigurationError):
            ResultCache(cache_dir=blocker / "sub", version_tag="v")
