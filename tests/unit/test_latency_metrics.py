"""Unit tests for :mod:`repro.metrics` and the simulator plumbing."""

from __future__ import annotations

import dataclasses
import json
import math
from fractions import Fraction

import pytest

from repro.bus import simulate
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.metrics import (
    LATENCY_METRICS_TOKEN,
    LATENCY_METRICS_VERSION,
    LatencyReport,
    LatencySummary,
    LatencyTracker,
    P2Quantile,
    StreamingQuantiles,
    exact_quantile,
    merge_latency_reports,
)
from repro.queueing.exponential_sim import (
    ServiceDistribution,
    simulate_central_server,
)


class TestP2Quantile:
    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(0.0)
        with pytest.raises(ConfigurationError):
            P2Quantile(1.0)
        with pytest.raises(ConfigurationError):
            P2Quantile(0.5, exact_limit=4)

    def test_estimate_requires_observations(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(0.5).estimate()

    def test_constant_stream_is_exact_forever(self):
        estimator = P2Quantile(0.9, exact_limit=5)
        for _ in range(500):
            estimator.add(7.0)
        assert estimator.estimate() == 7.0

    def test_monotone_stream_estimate_is_reasonable(self):
        estimator = P2Quantile(0.5, exact_limit=5)
        for value in range(1, 1001):
            estimator.add(float(value))
        assert 400.0 <= estimator.estimate() <= 600.0


class TestExactQuantile:
    def test_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            exact_quantile([], 0.5)
        with pytest.raises(ConfigurationError):
            exact_quantile([1.0], 1.5)

    def test_endpoints(self):
        assert exact_quantile([1.0, 2.0, 3.0], 0.0) == 1.0
        assert exact_quantile([1.0, 2.0, 3.0], 1.0) == 3.0
        assert exact_quantile([5.0], 0.5) == 5.0


class TestStreamingQuantiles:
    def test_rejects_bad_observations(self):
        collector = StreamingQuantiles()
        with pytest.raises(ConfigurationError):
            collector.add(-1)
        with pytest.raises(ConfigurationError):
            collector.add("fast")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            collector.add(True)  # type: ignore[arg-type]

    def test_rejects_non_finite_observations(self):
        collector = StreamingQuantiles()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError, match="finite"):
                collector.add(bad)
        # The guard fires before any counter moves: state stays clean.
        assert collector.count == 0

    def test_rejects_too_small_exact_limit_at_construction(self):
        # P2Quantile needs >= 5 seed observations; the wrapper must fail
        # here, not at the mid-run exact-to-streaming transition.
        with pytest.raises(ConfigurationError, match="exact_limit"):
            StreamingQuantiles(exact_limit=3)
        with pytest.raises(ConfigurationError, match="exact_limit"):
            StreamingQuantiles(exact_limit=4)

    def test_exact_limit_boundary_at_minimum(self):
        # exact_limit=5 is the smallest legal value.  The collector must
        # stay in exact mode through the fifth observation and hand the
        # buffered values to the P^2 estimators only on the sixth.
        collector = StreamingQuantiles(exact_limit=5)
        values = [9, 1, 7, 3, 5]
        for value in values:
            collector.add(value)
        assert collector.exact
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.99):
            assert collector.quantile(q) == exact_quantile(ordered, q)
        collector.add(11)
        assert not collector.exact
        assert collector.count == 6
        # Estimates remain inside the observed range after the handoff.
        for q in (0.5, 0.9, 0.99):
            assert 1 <= collector.quantile(q) <= 11

    def test_rejected_observation_mid_stream_leaves_state_intact(self):
        # A NaN arriving after real observations must not corrupt the
        # already-accumulated state - totals and quantiles are unchanged.
        collector = StreamingQuantiles()
        for value in (2, 4, 6):
            collector.add(value)
        before = (collector.count, collector.quantile(0.5))
        with pytest.raises(ConfigurationError, match="finite"):
            collector.add(float("nan"))
        assert (collector.count, collector.quantile(0.5)) == before
        assert collector.summary().total == Fraction(12)

    def test_untracked_quantile_rejected(self):
        collector = StreamingQuantiles()
        collector.add(1)
        with pytest.raises(ConfigurationError):
            collector.quantile(0.75)

    def test_integer_totals_stay_exact(self):
        collector = StreamingQuantiles()
        for value in (3, 5, 7):
            collector.add(value)
        summary = collector.summary()
        assert summary.total == Fraction(15)
        assert summary.mean == 5.0

    def test_mixed_int_float_totals_are_exact(self):
        collector = StreamingQuantiles()
        collector.add(1)
        collector.add(0.5)
        assert collector.summary().total == Fraction(3, 2)

    def test_empty_summary(self):
        summary = StreamingQuantiles().summary()
        assert summary.count == 0
        assert math.isnan(summary.mean)
        assert math.isnan(summary.p99_value)


class TestLatencySummary:
    def test_empty_must_be_empty(self):
        with pytest.raises(ConfigurationError):
            LatencySummary(count=0, total=Fraction(3))
        with pytest.raises(ConfigurationError):
            LatencySummary(count=2, total=Fraction(3))  # missing quantiles

    def test_merge_type_checked(self):
        with pytest.raises(ConfigurationError):
            LatencySummary().merge("nope")  # type: ignore[arg-type]

    def test_payload_round_trips_through_json_exactly(self):
        summary = LatencySummary.from_values([1, 2, 0.3, 10])
        encoded = json.dumps(summary.payload())
        assert LatencySummary.from_payload(json.loads(encoded)) == summary

    def test_from_payload_rejects_damage(self):
        good = LatencySummary.from_values([1.0, 2.0]).payload()
        with pytest.raises(ConfigurationError):
            LatencySummary.from_payload("nope")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            LatencySummary.from_payload({})
        bad = dict(good)
        bad["p50"] = [1, 0]  # zero denominator
        with pytest.raises(ConfigurationError):
            LatencySummary.from_payload(bad)
        bad = dict(good)
        bad["count"] = -3
        with pytest.raises(ConfigurationError):
            LatencySummary.from_payload(bad)
        # A non-empty summary without its total is a damaged entry, not
        # a summary with mean zero.
        bad = dict(good)
        del bad["total"]
        with pytest.raises(ConfigurationError):
            LatencySummary.from_payload(bad)
        # A numeric string must not unpack character-by-character into a
        # plausible fraction.
        bad = dict(good)
        bad["total"] = "12"
        with pytest.raises(ConfigurationError):
            LatencySummary.from_payload(bad)


class TestLatencyReport:
    def test_version_token_shape(self):
        assert LATENCY_METRICS_TOKEN == f"latency@{LATENCY_METRICS_VERSION}"

    def test_round_trip_and_version_rejection(self):
        tracker = LatencyTracker()
        for i in range(10):
            tracker.record(i, 4, i + 6)
        report = tracker.report()
        payload = json.loads(json.dumps(report.payload()))
        assert LatencyReport.from_payload(payload) == report
        payload["version"] = LATENCY_METRICS_VERSION + 1
        with pytest.raises(ConfigurationError):
            LatencyReport.from_payload(payload)

    def test_merge_latency_reports_folds_componentwise(self):
        a = LatencyTracker()
        b = LatencyTracker()
        a.record(1, 2, 5)
        b.record(3, 2, 7)
        merged = merge_latency_reports([a.report(), b.report()])
        assert merged.total.count == 2
        assert merged.wait.minimum == Fraction(1)
        assert merged.wait.maximum == Fraction(3)


class TestBusLatencyCollection:
    CONFIG = SystemConfig(4, 4, 4, request_probability=0.7, buffered=True)

    def test_off_by_default(self):
        result = simulate(self.CONFIG, cycles=500, seed=1)
        assert result.latency is None

    def test_collection_never_changes_counters(self):
        base = simulate(self.CONFIG, cycles=1_500, seed=3)
        tracked = simulate(self.CONFIG, cycles=1_500, seed=3, collect_latency=True)
        assert dataclasses.replace(tracked, latency=None) == base

    def test_decomposition_invariants(self):
        result = simulate(self.CONFIG, cycles=2_000, seed=5, collect_latency=True)
        report = result.latency
        assert report is not None
        assert report.total.count == result.completions
        assert report.wait.count == report.service.count == report.total.count
        # Constant access times (hypothesis (c)): service is exactly r.
        r = self.CONFIG.memory_cycle_ratio
        assert report.service.min_value == report.service.max_value == float(r)
        # Every request needs >= r + 2 cycles; wait + service + the two
        # transfers can never exceed the total.
        assert report.total.min_value >= r + 2
        assert report.total.mean >= report.wait.mean + report.service.mean + 2 - 1e-9
        # The streaming total must agree with the simulator's own
        # aggregate latency counter exactly.
        assert report.total.total == Fraction(result.total_latency)

    def test_unbuffered_wait_tracks_module_contention(self):
        result = simulate(
            SystemConfig(2, 2, 2), cycles=2_000, seed=1, collect_latency=True
        )
        report = result.latency
        assert report is not None
        assert report.total.min_value >= 4.0
        assert report.wait.min_value >= 0.0

    def test_warmup_excluded_from_summaries(self):
        result = simulate(
            self.CONFIG, cycles=400, warmup=400, seed=9, collect_latency=True
        )
        assert result.latency is not None
        # Counts cover only the measurement window's completions.
        assert result.latency.total.count == result.completions


class TestCentralServerLatencyCollection:
    CONFIG = SystemConfig(3, 3, 2)

    def test_collection_never_changes_counters(self):
        base = simulate_central_server(
            self.CONFIG, ServiceDistribution.EXPONENTIAL, duration=1_000, seed=5
        )
        tracked = simulate_central_server(
            self.CONFIG,
            ServiceDistribution.EXPONENTIAL,
            duration=1_000,
            seed=5,
            collect_latency=True,
        )
        assert tracked.completions == base.completions
        assert tracked.ebw == base.ebw
        assert base.latency is None
        assert tracked.latency is not None
        assert tracked.latency.total.count == tracked.completions

    def test_deterministic_service_times_are_constant(self):
        result = simulate_central_server(
            self.CONFIG,
            ServiceDistribution.DETERMINISTIC,
            duration=1_000,
            seed=2,
            collect_latency=True,
        )
        report = result.latency
        assert report is not None
        r = float(self.CONFIG.memory_cycle_ratio)
        assert report.service.min_value == report.service.max_value == r
        # total >= wait + service + two unit bus transfers
        assert report.total.mean >= report.wait.mean + r + 2.0 - 1e-9
