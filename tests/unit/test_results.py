"""Unit tests for :mod:`repro.core.results`."""

from __future__ import annotations

import math

import pytest

from repro.core.config import SystemConfig
from repro.core.results import ModelResult, SimulationResult


def make_simulation_result(**overrides) -> SimulationResult:
    defaults = dict(
        config=SystemConfig(4, 4, 6),  # processor cycle 8
        cycles=8_000,
        completions=2_000,
        request_transfers=2_000,
        response_transfers=2_000,
        memory_busy_cycles=12_000,
        total_latency=30_000,
        seed=1,
        warmup_cycles=100,
        batch_ebws=(1.9, 2.0, 2.1, 2.0),
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_ebw_definition(self):
        # 2000 completions in 8000 cycles with processor cycle 8:
        # 2000 * 8 / 8000 = 2 services per processor cycle.
        assert make_simulation_result().ebw == pytest.approx(2.0)

    def test_bus_utilization(self):
        result = make_simulation_result()
        assert result.bus_busy_cycles == 4_000
        assert result.bus_utilization == pytest.approx(0.5)

    def test_ebw_consistent_with_bus_utilization(self):
        # EBW = Pb (r+2)/2 must agree with the completion-count EBW when
        # requests equal responses.
        result = make_simulation_result()
        assert result.ebw == pytest.approx(
            result.bus_utilization * result.config.processor_cycle / 2
        )

    def test_memory_utilization(self):
        result = make_simulation_result()
        assert result.memory_utilization == pytest.approx(12_000 / (8_000 * 4))

    def test_mean_latency(self):
        assert make_simulation_result().mean_latency == pytest.approx(15.0)

    def test_mean_latency_nan_when_no_completions(self):
        result = make_simulation_result(completions=0, total_latency=0)
        assert math.isnan(result.mean_latency)

    def test_processor_utilization(self):
        result = make_simulation_result()
        assert result.processor_utilization == pytest.approx(2.0 / 4.0)

    def test_empty_window(self):
        result = make_simulation_result(
            cycles=0,
            completions=0,
            request_transfers=0,
            response_transfers=0,
            memory_busy_cycles=0,
            total_latency=0,
        )
        assert result.ebw == 0.0
        assert result.bus_utilization == 0.0
        assert result.memory_utilization == 0.0

    def test_confidence_interval_brackets_mean(self):
        low, high = make_simulation_result().ebw_confidence_interval()
        assert low < 2.0 < high

    def test_confidence_interval_degenerate_without_batches(self):
        result = make_simulation_result(batch_ebws=())
        assert result.ebw_confidence_interval() == (result.ebw, result.ebw)

    def test_summary_contains_key_figures(self):
        text = make_simulation_result().summary()
        assert "EBW" in text
        assert "2.000" in text
        assert "bus utilisation" in text


class TestModelResult:
    def test_bus_utilization_inverse(self):
        config = SystemConfig(4, 4, 6)
        result = ModelResult(config=config, ebw=2.0, method="test")
        assert result.bus_utilization == pytest.approx(0.5)

    def test_processor_utilization(self):
        config = SystemConfig(4, 4, 6)
        result = ModelResult(config=config, ebw=2.0, method="test")
        assert result.processor_utilization == pytest.approx(0.5)

    def test_summary_includes_details(self):
        config = SystemConfig(4, 4, 6)
        result = ModelResult(
            config=config, ebw=2.0, method="exact", details={"states": 22.0}
        )
        text = result.summary()
        assert "exact" in text
        assert "states" in text
        assert "22" in text
