"""Unit tests for :mod:`repro.des.processes`."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.des.engine import Engine
from repro.des.processes import Acquire, ProcessRunner, Timeout


def make_runner():
    engine = Engine()
    return engine, ProcessRunner(engine)


class TestTimeout:
    def test_process_sleeps(self):
        engine, runner = make_runner()
        log = []

        def process():
            yield Timeout(5.0)
            log.append(engine.now)

        runner.start(process())
        engine.run()
        assert log == [5.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_sequential_timeouts_accumulate(self):
        engine, runner = make_runner()
        log = []

        def process():
            yield Timeout(1.0)
            log.append(engine.now)
            yield Timeout(2.0)
            log.append(engine.now)

        runner.start(process())
        engine.run()
        assert log == [1.0, 3.0]


class TestFifoResource:
    def test_mutual_exclusion(self):
        engine, runner = make_runner()
        resource = runner.resource("server")
        log = []

        def customer(name, service):
            yield Acquire(resource)
            start = engine.now
            yield Timeout(service)
            resource.release()
            log.append((name, start, engine.now))

        runner.start(customer("a", 3.0))
        runner.start(customer("b", 2.0))
        engine.run()
        # b waits until a releases at t=3, then serves during [3, 5].
        assert log == [("a", 0.0, 3.0), ("b", 3.0, 5.0)]

    def test_fifo_order(self):
        engine, runner = make_runner()
        resource = runner.resource("server")
        order = []

        def customer(name):
            yield Acquire(resource)
            order.append(name)
            yield Timeout(1.0)
            resource.release()

        for name in ("first", "second", "third"):
            runner.start(customer(name))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_multi_server(self):
        engine, runner = make_runner()
        resource = runner.resource("server", servers=2)
        finish = []

        def customer():
            yield Acquire(resource)
            yield Timeout(4.0)
            resource.release()
            finish.append(engine.now)

        for _ in range(3):
            runner.start(customer())
        engine.run()
        # Two run in parallel [0,4]; the third [4,8].
        assert finish == [4.0, 4.0, 8.0]

    def test_queue_length_and_busy(self):
        engine, runner = make_runner()
        resource = runner.resource("server")
        snapshots = {}

        def holder():
            yield Acquire(resource)
            yield Timeout(10.0)
            resource.release()

        def waiter():
            yield Timeout(1.0)
            yield Acquire(resource)
            resource.release()

        def probe():
            yield Timeout(5.0)
            snapshots["busy"] = resource.busy
            snapshots["queue"] = resource.queue_length

        runner.start(holder())
        runner.start(waiter())
        runner.start(probe())
        engine.run()
        assert snapshots == {"busy": 1, "queue": 1}

    def test_release_of_idle_resource_rejected(self):
        _, runner = make_runner()
        resource = runner.resource("server")
        with pytest.raises(SimulationError):
            resource.release()

    def test_zero_servers_rejected(self):
        _, runner = make_runner()
        with pytest.raises(SimulationError):
            runner.resource("server", servers=0)

    def test_unknown_command_rejected(self):
        engine, runner = make_runner()

        def bad():
            yield "not-a-command"

        runner.start(bad())
        with pytest.raises(SimulationError, match="unknown command"):
            engine.run()
