"""Unit tests for :mod:`repro.core.metrics`."""

from __future__ import annotations

import pytest

from repro.core import metrics
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError


class TestEbwConversions:
    def test_full_utilisation_gives_max_ebw(self):
        # Section 2: EBW = Pb (r+2)/2, max at Pb = 1.
        assert metrics.ebw_from_bus_utilization(1.0, 8) == 5.0

    def test_zero_utilisation_gives_zero(self):
        assert metrics.ebw_from_bus_utilization(0.0, 8) == 0.0

    @pytest.mark.parametrize("r", [1, 2, 5, 10, 24])
    def test_round_trip(self, r):
        for pb in (0.1, 0.5, 0.99):
            ebw = metrics.ebw_from_bus_utilization(pb, r)
            assert metrics.bus_utilization_from_ebw(ebw, r) == pytest.approx(pb)

    @pytest.mark.parametrize("pb", [-0.1, 1.1])
    def test_rejects_bad_utilisation(self, pb):
        with pytest.raises(ConfigurationError):
            metrics.ebw_from_bus_utilization(pb, 4)

    def test_rejects_negative_ebw(self):
        with pytest.raises(ConfigurationError):
            metrics.bus_utilization_from_ebw(-1.0, 4)


class TestMaxEbw:
    def test_values(self):
        assert metrics.max_ebw(2) == 2.0
        assert metrics.max_ebw(12) == 7.0

    def test_exceeds_non_multiplexed_bound(self):
        # The paper: max EBW (r+2)/2 "compares advantageously with the
        # value 1" of a non-multiplexed bus, for any r >= 1.
        for r in range(1, 30):
            assert metrics.max_ebw(r) > 1.0

    def test_rejects_bad_r(self):
        with pytest.raises(ConfigurationError):
            metrics.max_ebw(0)


class TestDerivedMetrics:
    def test_processor_utilization_ceiling(self):
        config = SystemConfig(8, 16, 8, request_probability=0.5)
        # EBW equal to n*p means fully utilised processors.
        assert metrics.processor_utilization(4.0, config) == pytest.approx(1.0)

    def test_processor_utilization_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            metrics.processor_utilization(-0.5, SystemConfig(2, 2, 2))

    def test_memory_utilization(self):
        config = SystemConfig(8, 4, 2)
        # EBW services per processor cycle, each holding a module r of
        # (r+2)*m module-cycles.
        assert metrics.memory_utilization(2.0, config) == pytest.approx(
            2.0 * 2 / (4 * 4)
        )

    def test_memory_utilization_capped_at_one_at_max_load(self):
        config = SystemConfig(4, 1, 6)
        # One module, EBW bounded by one service per r+2 cycles = 1.
        assert metrics.memory_utilization(1.0, config) == pytest.approx(6 / 8)

    def test_mean_wait_cycles_littles_law(self):
        config = SystemConfig(8, 16, 6)  # processor cycle 8
        # n=8 requests in flight at EBW=4 per processor cycle -> 16 cycles.
        assert metrics.mean_wait_cycles(4.0, config) == pytest.approx(16.0)

    def test_mean_wait_cycles_rejects_zero_ebw(self):
        with pytest.raises(ConfigurationError):
            metrics.mean_wait_cycles(0.0, SystemConfig(2, 2, 2))

    def test_crossbar_speedup(self):
        assert metrics.crossbar_equivalent_speedup(6.0, 4.0) == pytest.approx(1.5)

    def test_crossbar_speedup_rejects_bad_reference(self):
        with pytest.raises(ConfigurationError):
            metrics.crossbar_equivalent_speedup(1.0, 0.0)
