"""Unit tests for :mod:`repro.des.replications`."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.des.replications import (
    ReplicationResult,
    ebw_estimator,
    replicate,
    replicate_until,
)


def noisy_estimator(seed: int) -> float:
    """A deterministic pseudo-noisy estimator around 10."""
    return 10.0 + ((seed * 2654435761) % 7 - 3) * 0.05


class TestReplicate:
    def test_fixed_count(self):
        result = replicate(noisy_estimator, replications=5, base_seed=1)
        assert result.replications == 5
        assert result.seeds == (1, 2, 3, 4, 5)
        assert result.mean == pytest.approx(10.0, abs=0.2)

    def test_interval_brackets_mean(self):
        result = replicate(noisy_estimator, replications=8)
        low, high = result.interval()
        assert low <= result.mean <= high
        assert result.half_width >= 0.0

    def test_constant_estimator_zero_width(self):
        result = replicate(lambda seed: 4.2, replications=4)
        assert result.half_width == 0.0
        assert result.relative_half_width == 0.0

    def test_summary_readable(self):
        text = replicate(lambda seed: 2.0, replications=3).summary()
        assert "2.0000" in text
        assert "3 replications" in text

    def test_requires_two_replications(self):
        with pytest.raises(ConfigurationError):
            replicate(noisy_estimator, replications=1)

    def test_unsupported_confidence_rejected(self):
        result = replicate(noisy_estimator, replications=3, confidence=0.8)
        with pytest.raises(ConfigurationError):
            _ = result.half_width

    def test_zero_mean_relative_width_infinite(self):
        result = ReplicationResult(
            estimates=(1.0, -1.0), seeds=(0, 1), confidence=0.95
        )
        assert result.relative_half_width == float("inf")


class TestReplicateUntil:
    def test_stops_when_precise(self):
        result = replicate_until(
            lambda seed: 5.0, relative_precision=0.01, min_replications=3
        )
        assert result.replications == 3  # constant: precise immediately

    def test_adds_replications_for_noisy_estimator(self):
        calls = []

        def estimator(seed: int) -> float:
            calls.append(seed)
            return noisy_estimator(seed)

        result = replicate_until(
            estimator,
            relative_precision=0.002,
            min_replications=3,
            max_replications=12,
        )
        assert 3 <= result.replications <= 12
        assert len(calls) == result.replications

    def test_respects_max_replications(self):
        # Irreducibly noisy estimator with impossible precision target.
        result = replicate_until(
            lambda seed: float(seed % 2) * 100.0,
            relative_precision=0.001,
            max_replications=6,
        )
        assert result.replications == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            replicate_until(noisy_estimator, relative_precision=0.0)
        with pytest.raises(ConfigurationError):
            replicate_until(noisy_estimator, 0.1, min_replications=1)
        with pytest.raises(ConfigurationError):
            replicate_until(
                noisy_estimator, 0.1, min_replications=5, max_replications=4
            )


class TestEbwEstimator:
    def test_matches_direct_simulation(self):
        from repro.bus import simulate

        config = SystemConfig(2, 2, 2)
        estimator = ebw_estimator(config, cycles=2_000)
        assert estimator(7) == simulate(config, cycles=2_000, seed=7).ebw

    def test_replicated_ebw_tight_for_stable_system(self):
        config = SystemConfig(4, 4, 2)  # saturated, very low variance
        estimator = ebw_estimator(config, cycles=3_000)
        result = replicate(estimator, replications=3, base_seed=1)
        assert result.relative_half_width < 0.05
        assert result.mean == pytest.approx(2.0, rel=0.02)
