"""Unit tests for :mod:`repro.models.combinatorics`."""

from __future__ import annotations

from math import comb

import pytest

from repro.core.errors import ConfigurationError
from repro.models.combinatorics import (
    compositions,
    distinct_modules_pmf,
    expected_distinct_modules,
    factorial,
    sole_requester_probability,
    stirling2,
    surjections,
)


class TestStirling:
    @pytest.mark.parametrize(
        "n,k,expected",
        [(0, 0, 1), (1, 1, 1), (3, 2, 3), (4, 2, 7), (5, 3, 25), (7, 3, 301)],
    )
    def test_known_values(self, n, k, expected):
        assert stirling2(n, k) == expected

    def test_zero_cases(self):
        assert stirling2(3, 0) == 0
        assert stirling2(0, 3) == 0
        assert stirling2(2, 5) == 0

    def test_row_sum_is_bell_number(self):
        # Bell(5) = 52.
        assert sum(stirling2(5, k) for k in range(6)) == 52

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            stirling2(-1, 2)


class TestSurjections:
    @pytest.mark.parametrize(
        "n,k,expected",
        [(3, 2, 6), (4, 2, 14), (4, 4, 24), (7, 4, 8400), (5, 1, 1)],
    )
    def test_known_values(self, n, k, expected):
        assert surjections(n, k) == expected

    def test_matches_composition_count(self):
        # Surjections onto k labeled blocks = sum of multinomials over
        # positive compositions - the form printed in the paper's P2.
        n, k = 6, 3
        total = 0
        for composition in compositions(n, k):
            if all(part > 0 for part in composition):
                ways = factorial(n)
                for part in composition:
                    ways //= factorial(part)
                total += ways
        assert surjections(n, k) == total

    def test_factorial(self):
        assert factorial(0) == 1
        assert factorial(5) == 120
        with pytest.raises(ConfigurationError):
            factorial(-1)


class TestDistinctModulesPmf:
    def test_sums_to_one(self):
        for n, m in [(2, 2), (4, 2), (8, 16), (16, 4)]:
            assert sum(distinct_modules_pmf(n, m).values()) == pytest.approx(1.0)

    def test_two_processors_two_modules(self):
        pmf = distinct_modules_pmf(2, 2)
        assert pmf[1] == pytest.approx(0.5)
        assert pmf[2] == pytest.approx(0.5)

    def test_four_processors_two_modules(self):
        # P(all four on one module) = 2/16.
        pmf = distinct_modules_pmf(4, 2)
        assert pmf[1] == pytest.approx(1 / 8)
        assert pmf[2] == pytest.approx(7 / 8)

    def test_support_bounded_by_min(self):
        pmf = distinct_modules_pmf(3, 10)
        assert max(pmf) == 3
        pmf = distinct_modules_pmf(10, 3)
        assert max(pmf) == 3

    def test_mean_matches_closed_form(self):
        for n, m in [(4, 4), (8, 16), (5, 3)]:
            pmf = distinct_modules_pmf(n, m)
            mean = sum(j * p for j, p in pmf.items())
            assert mean == pytest.approx(expected_distinct_modules(n, m))

    def test_closed_form_known_value(self):
        # Strecker for n=m=2: 2 (1 - 1/4) = 1.5.
        assert expected_distinct_modules(2, 2) == pytest.approx(1.5)

    def test_crossbar_limit_is_0_6n(self):
        # The paper's introduction: crossbar bandwidth ~ 0.6 n for large
        # n = m (1 - 1/e ~ 0.632).
        n = 64
        assert expected_distinct_modules(n, n) / n == pytest.approx(0.63, abs=0.01)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            distinct_modules_pmf(0, 2)
        with pytest.raises(ConfigurationError):
            expected_distinct_modules(2, 0)


class TestSoleRequesterProbability:
    def test_boundary_all_distinct(self):
        # c = n: every module has exactly one requester, so the served
        # one was certainly alone.
        assert sole_requester_probability(4, 4) == 1.0

    def test_boundary_single_module(self):
        # c = 1 with n > 1: everyone piled on the served module.
        assert sole_requester_probability(4, 1) == 0.0

    def test_single_processor(self):
        assert sole_requester_probability(1, 1) == 1.0

    def test_paper_formula_structure(self):
        # P2 = Surj(n-1, c-1) / (Surj(n-1, c-1) + Surj(n-1, c)).
        n, c = 8, 4
        expected = surjections(7, 3) / (surjections(7, 3) + surjections(7, 4))
        assert sole_requester_probability(n, c) == pytest.approx(expected)

    def test_monotone_in_demanded(self):
        # More demanded modules spread requesters thinner: P2 grows in c.
        values = [sole_requester_probability(8, c) for c in range(1, 9)]
        assert values == sorted(values)

    def test_matches_exhaustive_enumeration(self):
        # Brute-force check on a small case: distribute n-1=3 processors
        # over c=2 labeled modules with the other c-1 all nonempty.
        n, c = 4, 2
        alone = shared = 0
        for assignment in compositions(n - 1, c):
            others_nonempty = all(part > 0 for part in assignment[1:])
            if not others_nonempty:
                continue
            ways = factorial(n - 1)
            for part in assignment:
                ways //= factorial(part)
            if assignment[0] == 0:
                alone += ways
            else:
                shared += ways
        assert sole_requester_probability(n, c) == pytest.approx(
            alone / (alone + shared)
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            sole_requester_probability(4, 0)
        with pytest.raises(ConfigurationError):
            sole_requester_probability(4, 5)


class TestCompositions:
    def test_counts(self):
        assert len(list(compositions(4, 2))) == comb(5, 1)
        assert len(list(compositions(5, 3))) == comb(7, 2)

    def test_zero_parts(self):
        assert list(compositions(0, 0)) == [()]
        assert list(compositions(3, 0)) == []

    def test_all_sum_correctly(self):
        for composition in compositions(6, 3):
            assert sum(composition) == 6

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            list(compositions(-1, 2))
