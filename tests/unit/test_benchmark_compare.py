"""Unit tests for the benchmark comparison table.

``benchmarks/run_benchmarks.py`` is a script, not a package module, so
it is loaded by path; :func:`compare_reports` is pure (two payload
dicts in, table lines and regression names out), which is what makes
the regression gate testable without timing anything.
"""

from __future__ import annotations

import importlib.util
import pathlib

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "run_benchmarks.py"
)
_spec = importlib.util.spec_from_file_location("run_benchmarks", _SCRIPT)
run_benchmarks = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(run_benchmarks)


def _report(results, speedups):
    return {
        "schema": run_benchmarks.SCHEMA,
        "results": results,
        "speedups": speedups,
    }


def test_same_parameter_slowdown_beyond_threshold_regresses():
    old = _report(
        [{"name": "kernel_fast_x", "seconds": 1.0, "meta": {"cycles": 10}}],
        {},
    )
    new = _report(
        [{"name": "kernel_fast_x", "seconds": 1.5, "meta": {"cycles": 10}}],
        {},
    )
    lines, regressions = run_benchmarks.compare_reports(old, new)
    assert regressions == ["kernel_fast_x"]
    assert any("REGRESSION" in line for line in lines)


def test_small_jitter_is_ok_and_speedup_is_improvement():
    old = _report(
        [{"name": "a", "seconds": 1.0, "meta": {}}],
        {"pair": 8.0},
    )
    new = _report(
        [{"name": "a", "seconds": 1.1, "meta": {}}],
        {"pair": 11.0},
    )
    lines, regressions = run_benchmarks.compare_reports(old, new)
    assert regressions == []
    text = "\n".join(lines)
    assert "ok" in text and "improved" in text


def test_parameter_mismatch_is_skipped_not_compared():
    old = _report(
        [{"name": "a", "seconds": 10.0, "meta": {"cycles": 100_000}}],
        {},
    )
    new = _report(
        [{"name": "a", "seconds": 1.0, "meta": {"cycles": 20_000}}],
        {},
    )
    lines, regressions = run_benchmarks.compare_reports(old, new)
    assert regressions == []
    assert any("parameters differ" in line for line in lines)


def test_speedup_drop_beyond_threshold_regresses():
    old = _report([], {"batch_fleet_vs_fast": 6.0})
    new = _report([], {"batch_fleet_vs_fast": 4.0})
    lines, regressions = run_benchmarks.compare_reports(old, new)
    assert regressions == ["speedup:batch_fleet_vs_fast"]


def test_new_entries_are_reported_without_regressing():
    old = _report([], {})
    new = _report(
        [{"name": "batch_fleet_batch", "seconds": 0.5, "meta": {}}],
        {"batch_fleet_vs_fast": 6.0},
    )
    lines, regressions = run_benchmarks.compare_reports(old, new)
    assert regressions == []
    assert sum(line.rstrip().endswith("new") for line in lines) == 2


def test_compare_only_reads_existing_report(tmp_path, capsys):
    import json

    new_path = tmp_path / "new.json"
    old_path = tmp_path / "old.json"
    new_path.write_text(
        json.dumps(
            _report([{"name": "a", "seconds": 2.0, "meta": {}}], {})
        )
    )
    old_path.write_text(
        json.dumps(
            _report([{"name": "a", "seconds": 1.0, "meta": {}}], {})
        )
    )
    code = run_benchmarks.main(
        ["--json", str(new_path), "--compare", str(old_path), "--compare-only"]
    )
    assert code == 4
    assert "REGRESSION" in capsys.readouterr().out


def test_speedups_skipped_when_global_parameters_differ():
    old = _report([], {"batch_fleet_vs_fast": 7.0})
    old["parameters"] = {"fleet_rows": 512}
    new = _report([], {"batch_fleet_vs_fast": 1.5})
    new["parameters"] = {"fleet_rows": 64}
    lines, regressions = run_benchmarks.compare_reports(old, new)
    assert regressions == []
    assert any("parameters differ" in line for line in lines)


def test_benchmark_missing_from_new_report_regresses():
    old = _report(
        [{"name": "batch_fleet_batch", "seconds": 0.5, "meta": {}}], {}
    )
    new = _report([], {})
    lines, regressions = run_benchmarks.compare_reports(old, new)
    assert regressions == ["batch_fleet_batch"]
    assert any("MISSING" in line for line in lines)
