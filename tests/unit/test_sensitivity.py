"""Unit tests for :mod:`repro.analysis.sensitivity`."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    FactorEffect,
    sensitivity_analysis,
)
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority

FAST = dict(cycles=6_000, seed=4)


class TestFactorEffect:
    def test_absolute_effect(self):
        effect = FactorEffect("m", 8, 10, 4.0, 4.4)
        assert effect.absolute_effect == pytest.approx(0.4)

    def test_elasticity(self):
        # +25% factor, +10% EBW -> elasticity 0.4.
        effect = FactorEffect("m", 8, 10, 4.0, 4.4)
        assert effect.elasticity == pytest.approx(0.4)

    def test_unperturbed_factor_rejected(self):
        effect = FactorEffect("m", 8, 8, 4.0, 4.0)
        with pytest.raises(ConfigurationError):
            _ = effect.elasticity


class TestSensitivityAnalysis:
    def test_report_structure(self):
        base = SystemConfig(8, 8, 8, priority=Priority.PROCESSORS)
        report = sensitivity_analysis(base, **FAST)
        factors = {effect.factor for effect in report.effects}
        assert factors == {
            "memories",
            "memory_cycle_ratio",
            "request_probability",
            "buffering",
        }
        assert report.base_ebw > 0

    def test_more_memories_help_crowded_system(self):
        base = SystemConfig(8, 4, 8, priority=Priority.PROCESSORS)
        report = sensitivity_analysis(base, memory_step=4, **FAST)
        assert report.effect("memories").absolute_effect > 0

    def test_buffering_effect_positive(self):
        base = SystemConfig(8, 8, 10, priority=Priority.PROCESSORS)
        report = sensitivity_analysis(base, **FAST)
        assert report.effect("buffering").absolute_effect > 0

    def test_lighter_load_lowers_ebw(self):
        # EBW counts completions; fewer requests mean fewer completions
        # even though per-processor efficiency rises.
        base = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS)
        report = sensitivity_analysis(base, load_step=-0.4, **FAST)
        assert report.effect("request_probability").absolute_effect < 0

    def test_p_one_skips_upward_load_step(self):
        base = SystemConfig(4, 4, 4)
        report = sensitivity_analysis(base, load_step=0.5, **FAST)
        factors = {effect.factor for effect in report.effects}
        assert "request_probability" not in factors

    def test_ranked_orders_by_magnitude(self):
        base = SystemConfig(8, 4, 8, priority=Priority.PROCESSORS)
        report = sensitivity_analysis(base, **FAST)
        magnitudes = [abs(e.absolute_effect) for e in report.ranked()]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_summary_readable(self):
        base = SystemConfig(4, 4, 4)
        text = sensitivity_analysis(base, **FAST).summary()
        assert "base:" in text
        assert "memories" in text

    def test_unknown_factor_rejected(self):
        base = SystemConfig(4, 4, 4)
        report = sensitivity_analysis(base, **FAST)
        with pytest.raises(ConfigurationError):
            report.effect("voltage")

    def test_zero_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(SystemConfig(4, 4, 4), memory_step=0, **FAST)
