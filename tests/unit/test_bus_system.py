"""Unit tests for :mod:`repro.bus.system` - the machine as a whole."""

from __future__ import annotations

import pytest

from repro.bus import MultiplexedBusSystem, simulate
from repro.bus.trace import TraceEventKind, TraceRecorder
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority, TieBreak
from repro.workloads.generators import TraceTargets


def single_processor_config(r: int = 2) -> SystemConfig:
    return SystemConfig(1, 1, r, priority=Priority.PROCESSORS)


class TestExactTiming:
    def test_single_processor_round_trip_is_r_plus_2(self):
        # Request cycle 0, access 1..r, response r+1: the paper's
        # processor cycle of r+2 bus cycles, repeated forever.
        config = single_processor_config(r=2)
        recorder = TraceRecorder()
        system = MultiplexedBusSystem(config, seed=0, trace=recorder)
        for _ in range(12):
            system.step()
        kinds = [event.kind for event in recorder.bus_events()]
        expected = [
            TraceEventKind.REQUEST_TRANSFER,
            TraceEventKind.BUS_IDLE,
            TraceEventKind.BUS_IDLE,
            TraceEventKind.RESPONSE_TRANSFER,
        ] * 3
        assert kinds == expected

    def test_single_processor_ebw_is_one(self):
        result = simulate(single_processor_config(r=4), cycles=6_000, seed=1)
        assert result.ebw == pytest.approx(1.0, abs=0.01)

    def test_latency_equals_processor_cycle_without_contention(self):
        result = simulate(single_processor_config(r=6), cycles=8_000, seed=1)
        assert result.mean_latency == pytest.approx(8.0, abs=0.05)

    def test_two_processors_one_module_serialise(self):
        # Both processors share one module; it serves one request per
        # r+2 cycles, so EBW -> 1 and each processor completes every
        # other round.
        config = SystemConfig(2, 1, 2, priority=Priority.PROCESSORS)
        result = simulate(config, cycles=8_000, seed=1)
        assert result.ebw == pytest.approx(1.0, abs=0.02)

    def test_deterministic_trace_workload(self):
        # Ping-pong targets on two modules never conflict: the bus
        # pipeline sustains one transfer per cycle region.
        config = SystemConfig(2, 2, 1, priority=Priority.PROCESSORS)
        targets = TraceTargets([[0], [1]], modules=2)
        system = MultiplexedBusSystem(config, seed=0, targets=targets)
        result = system.run(4_000, warmup=100)
        assert result.ebw > 1.2  # max is 1.5


class TestConservation:
    @pytest.mark.parametrize(
        "config",
        [
            SystemConfig(4, 4, 3, priority=Priority.PROCESSORS),
            SystemConfig(8, 4, 2, priority=Priority.MEMORIES),
            SystemConfig(3, 5, 4, priority=Priority.PROCESSORS, buffered=True),
            SystemConfig(
                6, 2, 3, request_probability=0.5, priority=Priority.MEMORIES
            ),
        ],
    )
    def test_audit_after_every_cycle(self, config):
        system = MultiplexedBusSystem(config, seed=3)
        for _ in range(400):
            system.step()
            system.audit()

    def test_counters_consistent(self):
        config = SystemConfig(4, 4, 4, priority=Priority.PROCESSORS)
        system = MultiplexedBusSystem(config, seed=5)
        for _ in range(2_000):
            system.step()
        # Each completion used exactly one request + one response
        # transfer; transfers in flight may differ by at most n.
        assert system.response_transfers == system.completions
        assert 0 <= system.request_transfers - system.completions <= config.n

    def test_result_window_excludes_warmup(self):
        config = SystemConfig(2, 2, 2)
        system = MultiplexedBusSystem(config, seed=2)
        result = system.run(1_000, warmup=500)
        assert result.cycles == 1_000
        assert result.warmup_cycles == 500
        assert system.cycle == 1_500


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = SystemConfig(8, 8, 4, priority=Priority.PROCESSORS)
        a = simulate(config, cycles=3_000, seed=11)
        b = simulate(config, cycles=3_000, seed=11)
        assert a.completions == b.completions
        assert a.request_transfers == b.request_transfers
        assert a.total_latency == b.total_latency

    def test_different_seeds_differ(self):
        config = SystemConfig(8, 8, 4, priority=Priority.PROCESSORS)
        a = simulate(config, cycles=3_000, seed=11)
        b = simulate(config, cycles=3_000, seed=12)
        assert (a.completions, a.total_latency) != (b.completions, b.total_latency)

    def test_identical_traces(self):
        config = SystemConfig(4, 4, 3, priority=Priority.MEMORIES)
        recorders = []
        for _ in range(2):
            recorder = TraceRecorder()
            system = MultiplexedBusSystem(config, seed=7, trace=recorder)
            for _ in range(500):
                system.step()
            recorders.append(recorder.events)
        assert recorders[0] == recorders[1]


class TestBounds:
    @pytest.mark.parametrize(
        "config",
        [
            SystemConfig(8, 4, 2, priority=Priority.PROCESSORS),
            SystemConfig(8, 16, 12, priority=Priority.MEMORIES),
            SystemConfig(8, 8, 8, priority=Priority.PROCESSORS, buffered=True),
        ],
    )
    def test_ebw_within_ceiling(self, config):
        result = simulate(config, cycles=5_000, seed=1)
        assert 0.0 < result.ebw <= config.max_ebw + 1e-9

    def test_bus_utilisation_in_unit_interval(self):
        result = simulate(SystemConfig(4, 4, 4), cycles=5_000, seed=1)
        assert 0.0 < result.bus_utilization <= 1.0

    def test_memory_utilisation_in_unit_interval(self):
        result = simulate(SystemConfig(4, 4, 4), cycles=5_000, seed=1)
        assert 0.0 < result.memory_utilization <= 1.0

    def test_ebw_from_completions_matches_bus_utilisation(self):
        result = simulate(SystemConfig(8, 8, 6), cycles=20_000, seed=3)
        from repro.core.metrics import ebw_from_bus_utilization

        implied = ebw_from_bus_utilization(
            result.bus_utilization, result.config.memory_cycle_ratio
        )
        assert result.ebw == pytest.approx(implied, rel=0.02)


class TestRunValidation:
    def test_rejects_bad_cycles(self):
        system = MultiplexedBusSystem(SystemConfig(2, 2, 2), seed=0)
        with pytest.raises(ConfigurationError):
            system.run(0)

    def test_rejects_negative_warmup(self):
        system = MultiplexedBusSystem(SystemConfig(2, 2, 2), seed=0)
        with pytest.raises(ConfigurationError):
            system.run(100, warmup=-1)

    def test_rejects_negative_batches(self):
        system = MultiplexedBusSystem(SystemConfig(2, 2, 2), seed=0)
        with pytest.raises(ConfigurationError):
            system.run(100, batches=-2)

    def test_batch_ebws_recorded(self):
        result = simulate(SystemConfig(4, 4, 4), cycles=2_000, seed=1)
        assert len(result.batch_ebws) == 20
        low, high = result.ebw_confidence_interval()
        assert low <= result.ebw * 1.05
        assert high >= result.ebw * 0.95

    def test_fcfs_tie_break_runs(self):
        config = SystemConfig(4, 4, 4, tie_break=TieBreak.FCFS)
        result = simulate(config, cycles=3_000, seed=1)
        assert result.ebw > 0
