"""Unit tests for :mod:`repro.workloads`."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.errors import ConfigurationError
from repro.des.rng import RandomStream
from repro.workloads.generators import HotSpotTargets, TraceTargets, UniformTargets
from repro.workloads.trace import RequestTrace


class TestUniformTargets:
    def test_range(self):
        targets = UniformTargets(4, RandomStream(1, "t"))
        values = {targets.next_target(0) for _ in range(200)}
        assert values == {0, 1, 2, 3}

    def test_approximately_uniform(self):
        targets = UniformTargets(4, RandomStream(2, "t"))
        counts = Counter(targets.next_target(0) for _ in range(8_000))
        for module in range(4):
            assert counts[module] == pytest.approx(2_000, rel=0.1)

    def test_rejects_no_modules(self):
        with pytest.raises(ConfigurationError):
            UniformTargets(0, RandomStream(1, "t"))


class TestHotSpotTargets:
    def test_zero_fraction_behaves_uniformly(self):
        targets = HotSpotTargets(4, RandomStream(3, "t"), hot_fraction=0.0)
        counts = Counter(targets.next_target(0) for _ in range(4_000))
        assert counts[0] == pytest.approx(1_000, rel=0.15)

    def test_full_fraction_always_hot(self):
        targets = HotSpotTargets(4, RandomStream(3, "t"), hot_fraction=1.0)
        assert all(targets.next_target(0) == 0 for _ in range(100))

    def test_fraction_shifts_mass(self):
        targets = HotSpotTargets(
            4, RandomStream(4, "t"), hot_fraction=0.5, hot_module=2
        )
        counts = Counter(targets.next_target(0) for _ in range(8_000))
        # hot share = 0.5 + 0.5/4 = 0.625.
        assert counts[2] / 8_000 == pytest.approx(0.625, abs=0.03)

    def test_validation(self):
        stream = RandomStream(1, "t")
        with pytest.raises(ConfigurationError):
            HotSpotTargets(4, stream, hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            HotSpotTargets(4, stream, hot_fraction=0.5, hot_module=4)
        with pytest.raises(ConfigurationError):
            HotSpotTargets(0, stream, hot_fraction=0.5)


class TestTraceTargets:
    def test_replays_in_order_and_cycles(self):
        targets = TraceTargets([[0, 1, 2]], modules=3)
        drawn = [targets.next_target(0) for _ in range(7)]
        assert drawn == [0, 1, 2, 0, 1, 2, 0]

    def test_per_processor_positions_independent(self):
        targets = TraceTargets([[0, 1], [1, 0]], modules=2)
        assert targets.next_target(0) == 0
        assert targets.next_target(1) == 1
        assert targets.next_target(0) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceTargets([], modules=2)
        with pytest.raises(ConfigurationError):
            TraceTargets([[]], modules=2)
        with pytest.raises(ConfigurationError):
            TraceTargets([[5]], modules=2)
        targets = TraceTargets([[0]], modules=2)
        with pytest.raises(ConfigurationError):
            targets.next_target(3)


class TestRequestTrace:
    def test_round_trip_json(self):
        trace = RequestTrace(modules=3, targets=((0, 1, 2), (2, 2)))
        parsed = RequestTrace.from_json(trace.to_json())
        assert parsed == trace
        assert parsed.processors == 2

    def test_save_and_load(self, tmp_path):
        trace = RequestTrace(modules=2, targets=((0, 1),))
        path = tmp_path / "trace.json"
        trace.save(path)
        assert RequestTrace.load(path) == trace

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RequestTrace(modules=0, targets=())
        with pytest.raises(ConfigurationError):
            RequestTrace(modules=2, targets=((0, 5),))

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestTrace.from_json("{not json")
        with pytest.raises(ConfigurationError):
            RequestTrace.from_json('{"modules": 2}')
