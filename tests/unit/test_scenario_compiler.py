"""Unit tests for the scenario compiler, sharding, and unit execution."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.parallel.cache import ResultCache, fingerprint
from repro.scenarios.compiler import (
    compile_scenario,
    merge_units,
    parse_shard,
    shard_units,
)
from repro.scenarios.execute import (
    evaluate_unit,
    merge_reports,
    render_report,
    run_units,
)
from repro.scenarios.spec import (
    EvaluationMethod,
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
)


def tiny_spec(cycles: int = 300, replications: int = 2) -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        base={"processors": 2, "memories": 2},
        grid=(
            GridAxis("memory_cycle_ratio", (1, 2)),
            GridAxis("buffered", (False, True)),
        ),
        cycles=cycles,
        plan=ReplicationPlan(replications, 5),
    )


class TestCompile:
    def test_deterministic_and_densely_indexed(self):
        first = compile_scenario(tiny_spec())
        second = compile_scenario(tiny_spec())
        assert first == second
        assert [unit.index for unit in first] == list(range(8))

    def test_replication_seeds_vary_fastest(self):
        units = compile_scenario(tiny_spec())
        assert [unit.seed for unit in units[:4]] == [5, 6, 5, 6]
        assert units[0].config == units[1].config

    def test_payload_excludes_position_and_name(self):
        units = compile_scenario(tiny_spec())
        renamed = compile_scenario(
            ScenarioSpec(
                name="other-name",
                base={"processors": 2, "memories": 2},
                grid=(
                    GridAxis("memory_cycle_ratio", (1, 2)),
                    GridAxis("buffered", (False, True)),
                ),
                cycles=300,
                plan=ReplicationPlan(2, 5),
            )
        )
        for a, b in zip(units, renamed):
            assert fingerprint(a.payload()) == fingerprint(b.payload())

    def test_analytic_payload_ignores_seed_and_cycles(self):
        def markov_spec(cycles):
            return ScenarioSpec(
                name="markov",
                base={"processors": 2, "memories": 2, "memory_cycle_ratio": 2},
                method=EvaluationMethod.MARKOV,
                cycles=cycles,
                plan=ReplicationPlan(3, 0),
            )

        units = compile_scenario(markov_spec(300)) + compile_scenario(
            markov_spec(900)
        )
        keys = {fingerprint(unit.payload()) for unit in units}
        assert len(keys) == 1

    def test_payload_covers_seed_and_cycles(self):
        base = compile_scenario(tiny_spec())[0]
        longer = compile_scenario(tiny_spec(cycles=400))[0]
        reseeded = compile_scenario(
            ScenarioSpec(
                name="tiny",
                base={"processors": 2, "memories": 2},
                grid=(
                    GridAxis("memory_cycle_ratio", (1, 2)),
                    GridAxis("buffered", (False, True)),
                ),
                cycles=300,
                plan=ReplicationPlan(2, 99),
            )
        )[0]
        keys = {
            fingerprint(unit.payload()) for unit in (base, longer, reseeded)
        }
        assert len(keys) == 3


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard(" 1/1 ") == (1, 1)

    @pytest.mark.parametrize("text", ["0/4", "5/4", "2-4", "2/", "/4", "a/b"])
    def test_parse_shard_rejects(self, text):
        with pytest.raises(ConfigurationError):
            parse_shard(text)

    def test_shards_partition_the_units(self):
        units = compile_scenario(tiny_spec())
        shards = [shard_units(units, i, 3) for i in (1, 2, 3)]
        assert sorted(
            unit.index for shard in shards for unit in shard
        ) == list(range(len(units)))
        lengths = sorted(len(shard) for shard in shards)
        assert lengths[-1] - lengths[0] <= 1

    def test_merge_units_restores_canonical_order(self):
        units = compile_scenario(tiny_spec())
        shards = [shard_units(units, i, 3) for i in (3, 1, 2)]
        assert merge_units(shards) == units

    def test_merge_units_rejects_duplicates_and_holes(self):
        units = compile_scenario(tiny_spec())
        with pytest.raises(ConfigurationError):
            merge_units([units, units[:1]])
        with pytest.raises(ConfigurationError):
            merge_units([units[1:]])


class TestExecution:
    def test_results_preserve_unit_order(self):
        units = compile_scenario(tiny_spec())
        results = run_units(units)
        assert [result.unit for result in results] == list(units)

    def test_jobs_do_not_change_values(self):
        units = compile_scenario(tiny_spec())
        serial = run_units(units, jobs=1)
        pooled = run_units(units, jobs=2)
        assert [(r.ebw, r.processor_utilization) for r in serial] == [
            (r.ebw, r.processor_utilization) for r in pooled
        ]

    def test_cache_round_trip_preserves_bytes(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path / "cache")
        units = compile_scenario(tiny_spec())
        cold = run_units(units, cache=cache)
        warm = run_units(units, cache=cache)
        assert not any(result.cached for result in cold)
        assert all(result.cached for result in warm)
        assert render_report(cold) == render_report(warm)

    def test_markov_and_crossbar_methods(self):
        spec = ScenarioSpec(
            name="models",
            base={"processors": 4, "memories": 4, "memory_cycle_ratio": 2},
            method=EvaluationMethod.MARKOV,
        )
        markov = evaluate_unit(compile_scenario(spec)[0])
        crossbar = evaluate_unit(
            compile_scenario(
                ScenarioSpec(
                    name="models",
                    base={
                        "processors": 4,
                        "memories": 4,
                        "memory_cycle_ratio": 2,
                    },
                    method=EvaluationMethod.CROSSBAR,
                )
            )[0]
        )
        assert markov["ebw"] > 0
        assert crossbar["ebw"] > 0

    def test_run_scenario_with_shard(self):
        from repro.scenarios.execute import run_scenario

        spec = tiny_spec()
        full = run_scenario(spec)
        parts = [run_scenario(spec, shard=(i, 2)) for i in (1, 2)]
        merged = merge_reports([render_report(part) for part in parts])
        assert merged == render_report(full)


class TestReportMerging:
    def test_merge_reports_tolerates_blank_lines(self):
        units = compile_scenario(tiny_spec())
        report = render_report(run_units(units))
        assert merge_reports([report + "\n\n", ""]) == report

    def test_merge_reports_rejects_duplicates(self):
        units = compile_scenario(tiny_spec())
        report = render_report(run_units(units[:2]))
        with pytest.raises(ConfigurationError):
            merge_reports([report, report])

    def test_merge_reports_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            merge_reports(["not a unit line"])


class TestVersionedMetricsCacheKeys:
    """Acceptance criterion: metric-bearing cache entries can never
    collide with pre-metrics entries, enforced by a versioned field in
    the content-addressed payload."""

    def test_latency_units_carry_versioned_metrics_field(self):
        from repro.metrics import LATENCY_METRICS_TOKEN

        spec = tiny_spec()
        metric_spec = ScenarioSpec(
            name=spec.name,
            base=spec.base,
            grid=spec.grid,
            cycles=spec.cycles,
            plan=spec.plan,
            metrics=("latency",),
        )
        plain_unit = compile_scenario(spec)[0]
        metric_unit = compile_scenario(metric_spec)[0]
        assert "metrics" not in plain_unit.payload()
        assert metric_unit.payload()["metrics"] == [LATENCY_METRICS_TOKEN]
        assert fingerprint(plain_unit.payload()) != fingerprint(
            metric_unit.payload()
        )

    def test_plain_payload_shape_is_stable(self):
        # The pre-engine key set plus the evaluator's versioned engine
        # token; any accidental extra/missing field would silently remap
        # every cache key.
        payload = compile_scenario(tiny_spec())[0].payload()
        assert set(payload) == {
            "config",
            "cycles",
            "seed",
            "warmup",
            "workload",
            "method",
            "engine",
        }
        assert payload["engine"] == "simulation@1"

    def test_kernel_never_enters_the_payload(self):
        # The two kernels are bit-identical, so fast and reference units
        # must share cache entries.
        reference = compile_scenario(tiny_spec())[0]
        fast = compile_scenario(tiny_spec(), kernel="fast")[0]
        assert fast.kernel == "fast"
        assert reference.payload() == fast.payload()

    def test_version_bump_would_retire_entries(self):
        from repro.metrics import LATENCY_METRICS_VERSION

        spec = ScenarioSpec(
            name="versioned",
            base={"processors": 2, "memories": 2, "memory_cycle_ratio": 1},
            metrics=("latency",),
        )
        payload = compile_scenario(spec)[0].payload()
        current = fingerprint(payload)
        future = dict(payload)
        future["metrics"] = [f"latency@{LATENCY_METRICS_VERSION + 1}"]
        assert fingerprint(future) != current

    def test_malformed_cached_latency_entry_triggers_recompute(self, tmp_path):
        spec = ScenarioSpec(
            name="damaged",
            base={"processors": 2, "memories": 2, "memory_cycle_ratio": 1},
            cycles=200,
            metrics=("latency",),
        )
        unit = compile_scenario(spec)[0]
        cache = ResultCache(cache_dir=tmp_path, version_tag="t")
        # Poison the cache with a pre-metrics-shaped value under the
        # metric unit's key (simulating a corrupted or hand-edited
        # entry); execution must recompute, not crash.
        cache.put(
            cache.key(unit.payload()),
            {"ebw": 1.0, "processor_utilization": 0.5, "bus_utilization": 0.5},
        )
        [result] = run_units([unit], cache=cache)
        assert not result.cached
        assert result.latency is not None
