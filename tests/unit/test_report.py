"""Unit tests for the markdown report generator and the hot-spot
extension experiment."""

from __future__ import annotations

import pytest

from repro.experiments.hot_spot import degradation_at, run as run_hot_spot
from repro.experiments.registry import ExperimentResult
from repro.experiments.report import (
    result_to_markdown,
    results_to_markdown,
    write_markdown_report,
)


def make_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="demo",
        title="Demo table",
        row_label="n",
        column_label="m",
        rows=("n=2",),
        columns=("m=2", "m=4"),
        measured={("n=2", "m=2"): 1.5, ("n=2", "m=4"): 1.75},
        reference={("n=2", "m=2"): 1.5},
        notes="demo note",
    )


class TestMarkdown:
    def test_section_structure(self):
        text = result_to_markdown(make_result())
        assert text.startswith("### Demo table")
        assert "| n\\m | m=2 | m=4 |" in text
        assert "1.500 (1.500)" in text
        assert "1.750" in text
        assert "worst |err|" in text
        assert "> demo note" in text

    def test_without_reference(self):
        result = ExperimentResult(
            experiment_id="x",
            title="X",
            row_label="a",
            column_label="b",
            rows=("r",),
            columns=("c",),
            measured={("r", "c"): 2.0},
        )
        text = result_to_markdown(result)
        assert "worst" not in text
        assert "2.000" in text

    def test_document(self):
        text = results_to_markdown([make_result()], title="Report")
        assert text.startswith("# Report")
        assert "### Demo table" in text

    def test_write(self, tmp_path):
        target = write_markdown_report([make_result()], tmp_path / "r.md")
        assert target.exists()
        assert "Demo table" in target.read_text()


class TestHotSpotExperiment:
    @pytest.fixture(scope="class")
    def hot_spot_result(self):
        return run_hot_spot(cycles=5_000, seed=3)

    def test_degradation_monotone(self, hot_spot_result):
        result = hot_spot_result
        # At heavy hot-spotting every system loses bandwidth relative to
        # uniform traffic.
        for row in result.rows:
            assert degradation_at(result, row, 0.5) > 0.0

    def test_uniform_column_recovers_paper_numbers(self, hot_spot_result):
        result = hot_spot_result
        value = result.measured[("8x16 r=12 unbuffered", "hot=0")]
        # Table 3(a) cell (16, 12) is 5.959 at full strength.
        assert 5.3 < value < 6.5

    def test_registered(self):
        from repro.experiments.registry import get

        spec = get("hot_spot")
        assert spec.paper_artifact == "Extension"
