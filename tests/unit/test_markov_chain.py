"""Unit tests for :mod:`repro.markov.chain` and :mod:`repro.markov.builder`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.markov.builder import build_chain
from repro.markov.chain import DiscreteTimeMarkovChain


def two_state_chain(a: float = 0.3, b: float = 0.6) -> DiscreteTimeMarkovChain:
    """P(0->1) = a, P(1->0) = b; stationary pi0 = b/(a+b)."""
    return DiscreteTimeMarkovChain(
        states=["s0", "s1"],
        rows=[{0: 1 - a, 1: a}, {0: b, 1: 1 - b}],
    )


class TestConstruction:
    def test_row_sums_validated(self):
        with pytest.raises(ModelError, match="sums to"):
            DiscreteTimeMarkovChain(["a"], [{0: 0.5}])

    def test_negative_probability_rejected(self):
        with pytest.raises(ModelError):
            DiscreteTimeMarkovChain(["a", "b"], [{0: 1.5, 1: -0.5}, {1: 1.0}])

    def test_unknown_index_rejected(self):
        with pytest.raises(ModelError, match="unknown state index"):
            DiscreteTimeMarkovChain(["a"], [{3: 1.0}])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            DiscreteTimeMarkovChain(["a", "b"], [{0: 1.0}])

    def test_duplicate_states_rejected(self):
        with pytest.raises(ModelError, match="duplicate"):
            DiscreteTimeMarkovChain(["a", "a"], [{0: 1.0}, {0: 1.0}])

    def test_empty_chain_rejected(self):
        with pytest.raises(ModelError):
            DiscreteTimeMarkovChain([], [])

    def test_duplicate_row_entries_merge(self):
        # Rows may accumulate the same successor twice in building code.
        chain = DiscreteTimeMarkovChain(["a"], [{0: 1.0}])
        assert chain.row("a") == {"a": 1.0}

    def test_index_of_unknown_state(self):
        chain = two_state_chain()
        with pytest.raises(ModelError):
            chain.index_of("nope")


class TestStationary:
    def test_two_state_closed_form(self):
        chain = two_state_chain(a=0.3, b=0.6)
        pi = chain.stationary_distribution()
        assert pi[0] == pytest.approx(0.6 / 0.9)
        assert pi[1] == pytest.approx(0.3 / 0.9)

    def test_fixed_point_property(self):
        chain = two_state_chain(a=0.2, b=0.5)
        pi = chain.stationary_distribution()
        assert np.allclose(pi @ chain.transition_matrix(), pi)

    def test_power_agrees_with_direct(self):
        chain = two_state_chain(a=0.37, b=0.11)
        direct = chain.stationary_distribution("direct")
        power = chain.stationary_distribution("power")
        assert np.allclose(direct, power, atol=1e-9)

    def test_periodic_chain_power_converges(self):
        # A deterministic 2-cycle is periodic; the damped power method
        # must still converge to the uniform stationary distribution.
        chain = DiscreteTimeMarkovChain(["a", "b"], [{1: 1.0}, {0: 1.0}])
        pi = chain.stationary_distribution("power")
        assert np.allclose(pi, [0.5, 0.5], atol=1e-6)

    def test_reducible_chain_rejected(self):
        chain = DiscreteTimeMarkovChain(["a", "b"], [{0: 1.0}, {0: 1.0}])
        with pytest.raises(ModelError, match="reducible"):
            chain.stationary_distribution()

    def test_unknown_method_rejected(self):
        with pytest.raises(ModelError, match="unknown stationary method"):
            two_state_chain().stationary_distribution("magic")

    def test_expected_value(self):
        chain = two_state_chain(a=0.5, b=0.5)
        assert chain.expected_value({"s0": 0.0, "s1": 10.0}) == pytest.approx(5.0)


class TestIrreducibility:
    def test_irreducible(self):
        assert two_state_chain().is_irreducible()

    def test_absorbing_state_not_irreducible(self):
        chain = DiscreteTimeMarkovChain(
            ["a", "b"], [{0: 0.5, 1: 0.5}, {1: 1.0}]
        )
        assert not chain.is_irreducible()


class TestBuilder:
    def test_enumerates_reachable_states_only(self):
        # Random walk on 0..4 with reflecting walls, started at 2.
        def transition(k: int):
            if k == 0:
                return {1: 1.0}
            if k == 4:
                return {3: 1.0}
            return {k - 1: 0.5, k + 1: 0.5}

        chain = build_chain(2, transition)
        assert sorted(chain.states) == [0, 1, 2, 3, 4]

    def test_reflecting_walk_stationary(self):
        def transition(k: int):
            if k == 0:
                return {1: 1.0}
            if k == 2:
                return {1: 1.0}
            return {0: 0.5, 2: 0.5}

        chain = build_chain(0, transition)
        pi = chain.stationary_distribution("power")
        index = {state: i for i, state in enumerate(chain.states)}
        assert pi[index[1]] == pytest.approx(0.5, abs=1e-6)

    def test_tuple_states_are_single_seeds(self):
        def transition(state):
            return {state: 1.0}

        chain = build_chain((1, 2), transition)
        assert chain.states == ((1, 2),)

    def test_list_of_seeds(self):
        def transition(state):
            return {state: 1.0}

        chain = build_chain(["a", "b"], transition)
        assert set(chain.states) == {"a", "b"}

    def test_max_states_guard(self):
        def transition(k: int):
            return {k + 1: 1.0}

        with pytest.raises(ModelError, match="max_states"):
            build_chain(0, transition, max_states=10)

    def test_zero_probability_successors_dropped(self):
        def transition(k: int):
            return {0: 1.0, 99: 0.0}

        chain = build_chain(0, transition)
        assert chain.states == (0,)
