"""Unit tests for :mod:`repro.markov.transient`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.markov.chain import DiscreteTimeMarkovChain
from repro.markov.transient import (
    expected_hitting_steps,
    mixing_steps,
    step_distribution,
    total_variation_distance,
)
from repro.models.processor_priority import BUS_IDLE, ProcessorPriorityChain


def two_state(a: float = 0.5, b: float = 0.5) -> DiscreteTimeMarkovChain:
    return DiscreteTimeMarkovChain(
        ["s0", "s1"], [{0: 1 - a, 1: a}, {0: b, 1: 1 - b}]
    )


class TestStepDistribution:
    def test_zero_steps_is_point_mass(self):
        dist = step_distribution(two_state(), "s0", 0)
        assert dist.tolist() == [1.0, 0.0]

    def test_one_step_matches_row(self):
        chain = two_state(a=0.3)
        dist = step_distribution(chain, "s0", 1)
        assert dist[1] == pytest.approx(0.3)

    def test_converges_to_stationary(self):
        chain = two_state(a=0.3, b=0.6)
        dist = step_distribution(chain, "s0", 200)
        pi = chain.stationary_distribution()
        assert np.allclose(dist, pi, atol=1e-9)

    def test_rejects_negative_steps(self):
        with pytest.raises(ModelError):
            step_distribution(two_state(), "s0", -1)


class TestTotalVariation:
    def test_identical_is_zero(self):
        assert total_variation_distance([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation_distance([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            total_variation_distance([1.0], [0.5, 0.5])


class TestMixing:
    def test_already_mixed_chain(self):
        # From the uniform-ish start of a symmetric chain, mixing is
        # essentially immediate.
        chain = two_state(a=0.5, b=0.5)
        assert mixing_steps(chain, "s0", epsilon=0.5) == 0

    def test_slow_chain_mixes_slower(self):
        fast = mixing_steps(two_state(0.5, 0.5), "s0", epsilon=0.01)
        slow = mixing_steps(two_state(0.05, 0.05), "s0", epsilon=0.01)
        assert slow > fast

    def test_periodic_chain_raises(self):
        flip = DiscreteTimeMarkovChain(["a", "b"], [{1: 1.0}, {0: 1.0}])
        with pytest.raises(ModelError, match="did not mix"):
            mixing_steps(flip, "a", epsilon=0.01, max_steps=50)

    def test_epsilon_validated(self):
        with pytest.raises(ModelError):
            mixing_steps(two_state(), "s0", epsilon=0.0)

    def test_section4_chain_mixes_fast(self):
        # Model-side justification of the simulator's warm-up: the
        # Section 4 chain for the paper's 8x16 system is within 1% TV of
        # stationarity in well under 1000 bus cycles.
        model = ProcessorPriorityChain(8, 16, 8)
        steps = mixing_steps(model.chain, (0, 1, 0, 1), epsilon=0.01)
        assert steps < 1_000


class TestHittingTimes:
    def test_start_in_target(self):
        assert expected_hitting_steps(two_state(), "s0", ["s0"]) == 0.0

    def test_two_state_closed_form(self):
        # From s0, hitting s1 is geometric with success probability a:
        # mean 1/a.
        chain = two_state(a=0.25, b=0.5)
        assert expected_hitting_steps(chain, "s0", ["s1"]) == pytest.approx(4.0)

    def test_predicate_targets(self):
        chain = two_state(a=0.2)
        time = expected_hitting_steps(chain, "s0", lambda s: s == "s1")
        assert time == pytest.approx(5.0)

    def test_requires_targets(self):
        with pytest.raises(ModelError):
            expected_hitting_steps(two_state(), "s0", [])

    def test_section4_idle_recurrence(self):
        # How long does the loaded 8x4 bus run before its next idle
        # cycle?  (A model-level quantity with no direct simulation
        # counterpart.)  From a fully busy state - all 4 modules
        # demanded, one response in flight - the bus works for several
        # cycles before idling.
        model = ProcessorPriorityChain(8, 4, 8)
        busy_start = (2, 4, 1, 0)
        steps = expected_hitting_steps(
            model.chain, busy_start, lambda s: s[3] == BUS_IDLE
        )
        assert steps > 5.0
        # Whereas the degenerate everyone-on-one-module start goes idle
        # immediately after its single request transfer.
        assert expected_hitting_steps(
            model.chain, (0, 1, 0, 1), lambda s: s[3] == BUS_IDLE
        ) == pytest.approx(1.0)
