"""Unit tests for :mod:`repro.queueing` (network, MVA, convolution)."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.queueing.convolution import (
    normalising_constants,
    queueing_utilization,
    throughput,
)
from repro.queueing.mva import product_form_ebw, solve_mva
from repro.queueing.network import (
    ClosedNetwork,
    Station,
    StationKind,
    buffered_bus_network,
)


def single_station_network(population: int, demand: float) -> ClosedNetwork:
    return ClosedNetwork(
        stations=(
            Station("only", StationKind.QUEUEING, visit_ratio=1.0, service_time=demand),
        ),
        population=population,
    )


def two_station_network(d1: float, d2: float, population: int) -> ClosedNetwork:
    return ClosedNetwork(
        stations=(
            Station("a", StationKind.QUEUEING, 1.0, d1),
            Station("b", StationKind.QUEUEING, 1.0, d2),
        ),
        population=population,
    )


class TestNetworkDescription:
    def test_station_demand(self):
        station = Station("bus", StationKind.QUEUEING, 2.0, 1.0)
        assert station.demand == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Station("x", StationKind.QUEUEING, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            ClosedNetwork(stations=(), population=2)
        with pytest.raises(ConfigurationError):
            single_station_network(0, 1.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ClosedNetwork(
                stations=(
                    Station("x", StationKind.QUEUEING, 1.0, 1.0),
                    Station("x", StationKind.QUEUEING, 1.0, 1.0),
                ),
                population=1,
            )

    def test_bottleneck_and_total_demand(self):
        network = two_station_network(3.0, 1.0, 2)
        assert network.bottleneck_demand == 3.0
        assert network.total_demand == 4.0

    def test_buffered_bus_network_shape(self):
        config = SystemConfig(8, 4, 6, priority=SystemConfig(2, 2, 2).priority)
        network = buffered_bus_network(config)
        assert network.population == 8
        names = [s.name for s in network.stations]
        assert names[0] == "bus"
        assert len([n for n in names if n.startswith("memory-")]) == 4
        bus = network.stations[0]
        assert bus.demand == 2.0  # two transfers per request
        memory = network.stations[1]
        assert memory.demand == pytest.approx(6 / 4)

    def test_buffered_bus_network_think_station(self):
        config = SystemConfig(8, 4, 6, request_probability=0.5)
        network = buffered_bus_network(config)
        think = network.stations[-1]
        assert think.kind is StationKind.DELAY
        # Mean think = (r+2)(1-p)/p = 8 * 1 = 8.
        assert think.service_time == pytest.approx(8.0)


class TestMva:
    def test_single_customer_no_queueing(self):
        # One customer never queues: X = 1 / total demand.
        network = two_station_network(2.0, 3.0, 1)
        solution = solve_mva(network)
        assert solution.throughput == pytest.approx(1 / 5)

    def test_single_station_saturates(self):
        # With one station of demand d, X(N) = N / (N d) = 1/d for N >= 1.
        solution = solve_mva(single_station_network(5, 2.0))
        assert solution.throughput == pytest.approx(0.5)
        assert solution.queue_lengths["only"] == pytest.approx(5.0)

    def test_bottleneck_asymptote(self):
        network = two_station_network(4.0, 1.0, 20)
        solution = solve_mva(network)
        assert solution.throughput == pytest.approx(0.25, rel=0.01)
        assert solution.utilizations["a"] == pytest.approx(1.0, abs=0.01)

    def test_m_m_1_closed_form_two_stations(self):
        # Balanced two-station network, N=2: X = 2 / (3 d).
        d = 2.0
        solution = solve_mva(two_station_network(d, d, 2))
        assert solution.throughput == pytest.approx(2 / (3 * d))

    def test_delay_station_reduces_throughput_gracefully(self):
        with_delay = ClosedNetwork(
            stations=(
                Station("q", StationKind.QUEUEING, 1.0, 1.0),
                Station("z", StationKind.DELAY, 1.0, 9.0),
            ),
            population=1,
        )
        solution = solve_mva(with_delay)
        assert solution.throughput == pytest.approx(0.1)

    def test_utilisation_never_exceeds_one(self):
        for population in (1, 4, 16):
            solution = solve_mva(two_station_network(2.0, 2.0, population))
            for utilization in solution.utilizations.values():
                assert utilization <= 1.0 + 1e-9

    def test_product_form_ebw_unit(self):
        config = SystemConfig(1, 1, 2, buffered=True)
        # Single customer: cycle = 2*1 + 2 = 4, X = 1/4, EBW = X*(r+2)=1.
        assert product_form_ebw(config) == pytest.approx(1.0)


class TestConvolutionAgreesWithMva:
    @pytest.mark.parametrize("population", [1, 2, 5, 10])
    def test_queueing_only_networks(self, population):
        network = two_station_network(1.5, 2.5, population)
        assert throughput(network) == pytest.approx(
            solve_mva(network).throughput, rel=1e-10
        )

    @pytest.mark.parametrize("m,r,n", [(2, 2, 2), (4, 6, 8), (8, 8, 8)])
    def test_buffered_bus_networks(self, m, r, n):
        config = SystemConfig(n, m, r, buffered=True)
        network = buffered_bus_network(config)
        assert throughput(network) == pytest.approx(
            solve_mva(network).throughput, rel=1e-10
        )

    def test_with_delay_station(self):
        config = SystemConfig(4, 4, 4, request_probability=0.5, buffered=True)
        network = buffered_bus_network(config)
        assert throughput(network) == pytest.approx(
            solve_mva(network).throughput, rel=1e-9
        )

    def test_normalising_constants_positive_increasing_information(self):
        g = normalising_constants(two_station_network(1.0, 1.0, 4))
        assert g[0] == 1.0
        assert all(value > 0 for value in g)

    def test_station_utilisation(self):
        network = two_station_network(4.0, 1.0, 20)
        assert queueing_utilization(network, "a") == pytest.approx(1.0, abs=0.01)
        with pytest.raises(ConfigurationError):
            queueing_utilization(network, "missing")
