"""Unit tests for :mod:`repro.queueing.exponential_sim`."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.queueing.exponential_sim import (
    CentralServerSimulator,
    ServiceDistribution,
    simulate_central_server,
)
from repro.queueing.mva import product_form_ebw


class TestDeterministicService:
    def test_single_customer_cycle_time(self):
        # One customer, deterministic: cycle = 1 + r + 1 = r + 2 exactly,
        # so EBW = 1.
        config = SystemConfig(1, 2, 6, buffered=True)
        result = simulate_central_server(
            config, ServiceDistribution.DETERMINISTIC, duration=4_000.0, seed=1
        )
        assert result.ebw == pytest.approx(1.0, abs=0.01)

    def test_throughput_units(self):
        config = SystemConfig(1, 2, 6, buffered=True)
        result = simulate_central_server(
            config, ServiceDistribution.DETERMINISTIC, duration=4_000.0, seed=1
        )
        assert result.throughput == pytest.approx(1 / 8, abs=0.002)


class TestExponentialService:
    def test_matches_mva(self):
        # The exponential central-server simulation must converge to the
        # product-form solution - a joint check of the process layer,
        # the RNG and the MVA solver.
        config = SystemConfig(4, 4, 4, buffered=True)
        result = simulate_central_server(
            config, ServiceDistribution.EXPONENTIAL, duration=150_000.0, seed=2
        )
        assert result.ebw == pytest.approx(product_form_ebw(config), rel=0.03)

    def test_matches_mva_with_think_time(self):
        config = SystemConfig(4, 4, 4, request_probability=0.5, buffered=True)
        result = simulate_central_server(
            config, ServiceDistribution.EXPONENTIAL, duration=150_000.0, seed=3
        )
        assert result.ebw == pytest.approx(product_form_ebw(config), rel=0.05)

    def test_deterministic_beats_exponential(self):
        # Lower service variability -> higher throughput (the Section 6
        # observation: the exponential model is pessimistic).
        config = SystemConfig(8, 8, 8, buffered=True)
        exp = simulate_central_server(
            config, ServiceDistribution.EXPONENTIAL, duration=60_000.0, seed=4
        )
        det = simulate_central_server(
            config, ServiceDistribution.DETERMINISTIC, duration=60_000.0, seed=4
        )
        assert det.ebw > exp.ebw


class TestMechanics:
    def test_determinism(self):
        config = SystemConfig(4, 4, 4, buffered=True)
        a = simulate_central_server(config, duration=10_000.0, seed=5)
        b = simulate_central_server(config, duration=10_000.0, seed=5)
        assert a.completions == b.completions

    def test_warmup_excluded(self):
        config = SystemConfig(2, 2, 2, buffered=True)
        simulator = CentralServerSimulator(
            config, ServiceDistribution.DETERMINISTIC, seed=1
        )
        result = simulator.run(duration=1_000.0, warmup=500.0)
        assert result.duration == 1_000.0
        assert result.completions > 0

    def test_rejects_bad_duration(self):
        config = SystemConfig(2, 2, 2, buffered=True)
        simulator = CentralServerSimulator(
            config, ServiceDistribution.EXPONENTIAL, seed=1
        )
        with pytest.raises(ConfigurationError):
            simulator.run(duration=0.0)
        with pytest.raises(ConfigurationError):
            simulator.run(duration=10.0, warmup=-1.0)

    def test_zero_duration_throughput(self):
        from repro.queueing.exponential_sim import CentralServerResult

        result = CentralServerResult(
            config=SystemConfig(2, 2, 2, buffered=True),
            distribution=ServiceDistribution.EXPONENTIAL,
            completions=0,
            duration=0.0,
            seed=0,
        )
        assert result.throughput == 0.0
