"""Unit and property tests for :class:`repro.metrics.FleetQuantileSketch`.

The sketch's contract (module docstring of :mod:`repro.metrics.sketch`):
exact aggregates always; *exact* quantiles while the bucket width is 1,
matching the scalar pipeline bit-for-bit as floats; bounded value error
after collapsing; merges that reproduce the concatenated stream at the
coarser width.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

np = pytest.importorskip("numpy")

from repro.core.errors import ConfigurationError  # noqa: E402
from repro.metrics import (  # noqa: E402
    DEFAULT_SKETCH_BINS,
    FleetQuantileSketch,
    LatencySummary,
    exact_quantile,
)


def fill(sketch: FleetQuantileSketch, row: int, values) -> None:
    """Feed a scalar stream into one sketch row, one add per value."""
    for value in values:
        sketch.add(np.array([row]), np.array([value]))


class TestValidation:
    def test_rows_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="rows"):
            FleetQuantileSketch(0)

    def test_bins_must_be_even_and_large_enough(self):
        with pytest.raises(ConfigurationError, match="bins"):
            FleetQuantileSketch(1, bins=6)
        with pytest.raises(ConfigurationError, match="bins"):
            FleetQuantileSketch(1, bins=9)
        FleetQuantileSketch(1, bins=8)

    def test_default_bins(self):
        assert FleetQuantileSketch(2).bins == DEFAULT_SKETCH_BINS

    def test_rejects_negative_observations(self):
        sketch = FleetQuantileSketch(2)
        with pytest.raises(ConfigurationError, match="non-negative"):
            sketch.add(np.array([0]), np.array([-1]))

    def test_rejects_non_finite_observations(self):
        sketch = FleetQuantileSketch(2)
        with pytest.raises(ConfigurationError, match="finite"):
            sketch.add(np.array([0]), np.array([float("nan")]))
        with pytest.raises(ConfigurationError, match="finite"):
            sketch.add(np.array([1]), np.array([float("inf")]))

    def test_rejects_fractional_observations(self):
        sketch = FleetQuantileSketch(2)
        with pytest.raises(ConfigurationError, match="integral"):
            sketch.add(np.array([0]), np.array([1.5]))

    def test_accepts_integral_floats(self):
        sketch = FleetQuantileSketch(1)
        sketch.add(np.array([0]), np.array([3.0]))
        assert int(sketch.count[0]) == 1
        assert sketch.row_summary(0).minimum == Fraction(3)

    def test_row_summary_bounds(self):
        sketch = FleetQuantileSketch(2)
        with pytest.raises(ConfigurationError, match="row"):
            sketch.row_summary(2)


class TestExactWhileWidthOne:
    """Values below ``bins`` never collapse: the sketch is exact."""

    def test_matches_scalar_summary_bit_for_bit(self):
        rng = random.Random(1985)
        sketch = FleetQuantileSketch(3, bins=64)
        streams = [[rng.randrange(60) for _ in range(80)] for _ in range(3)]
        for row, stream in enumerate(streams):
            fill(sketch, row, stream)
        for row, stream in enumerate(streams):
            got = sketch.row_summary(row)
            want = LatencySummary.from_values(stream)
            assert got.count == want.count
            assert got.total == want.total
            assert got.minimum == want.minimum
            assert got.maximum == want.maximum
            # Width-1 quantiles reproduce exact_quantile's rational
            # rank arithmetic: equality holds as floats, bit for bit.
            ordered = sorted(stream)
            assert float(got.p50) == exact_quantile(ordered, 0.50)
            assert float(got.p90) == exact_quantile(ordered, 0.90)
            assert float(got.p99) == exact_quantile(ordered, 0.99)

    def test_lockstep_adds_match_scalar_adds(self):
        # One vectorized add over distinct rows == per-row scalar adds.
        rng = random.Random(7)
        vectorized = FleetQuantileSketch(4, bins=32)
        scalar = FleetQuantileSketch(4, bins=32)
        per_row = [[] for _ in range(4)]
        for _ in range(50):
            rows = sorted(rng.sample(range(4), rng.randrange(1, 5)))
            values = [rng.randrange(30) for _ in rows]
            vectorized.add(np.array(rows), np.array(values))
            for row, value in zip(rows, values):
                scalar.add(np.array([row]), np.array([value]))
                per_row[row].append(value)
        assert vectorized.summaries() == scalar.summaries()
        for got, stream in zip(vectorized.summaries(), per_row):
            want = LatencySummary.from_values(stream)
            assert (got.count, got.total, got.minimum, got.maximum) == (
                want.count, want.total, want.minimum, want.maximum
            )
            # The sketch keeps exact rationals; from_values rounds its
            # interpolated quantiles through floats - equal as floats.
            for field in ("p50", "p90", "p99"):
                assert float(getattr(got, field)) == float(
                    getattr(want, field)
                )


class TestCollapsedAccuracy:
    def test_aggregates_stay_exact_after_collapse(self):
        rng = random.Random(3)
        stream = [rng.randrange(10_000) for _ in range(500)]
        sketch = FleetQuantileSketch(1, bins=32)
        fill(sketch, 0, stream)
        summary = sketch.row_summary(0)
        assert summary.count == len(stream)
        assert summary.total == Fraction(sum(stream))
        assert summary.minimum == Fraction(min(stream))
        assert summary.maximum == Fraction(max(stream))

    def test_quantile_error_bounded_by_two_max_over_bins(self):
        rng = random.Random(11)
        for bins in (32, 256):
            stream = [rng.randrange(50_000) for _ in range(2_000)]
            sketch = FleetQuantileSketch(1, bins=bins)
            fill(sketch, 0, stream)
            ordered = sorted(stream)
            bound = 2 * max(stream) / bins
            summary = sketch.row_summary(0)
            for field, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
                estimate = float(getattr(summary, field))
                exact = exact_quantile(ordered, q)
                assert abs(estimate - exact) <= bound, (bins, field)

    def test_estimates_clamped_to_observed_range(self):
        sketch = FleetQuantileSketch(1, bins=8)
        fill(sketch, 0, [0, 1_000_000])
        summary = sketch.row_summary(0)
        assert Fraction(0) <= summary.p50 <= Fraction(1_000_000)
        assert summary.maximum == Fraction(1_000_000)


class TestMerge:
    def test_merge_equals_concatenated_stream(self):
        rng = random.Random(21)
        stream = [rng.randrange(5_000) for _ in range(300)]
        whole = FleetQuantileSketch(1, bins=64)
        fill(whole, 0, stream)
        parts = []
        for chunk in (stream[:100], stream[100:180], stream[180:]):
            part = FleetQuantileSketch(1, bins=64)
            fill(part, 0, chunk)
            parts.append(part)
        merged = parts[0]
        merged.merge(parts[1])
        merged.merge(parts[2])
        assert merged.row_summary(0) == whole.row_summary(0)

    def test_merge_is_associative(self):
        rng = random.Random(33)
        chunks = [
            [rng.randrange(4_000) for _ in range(120)] for _ in range(3)
        ]

        def build(chunk):
            sketch = FleetQuantileSketch(2, bins=32)
            for value in chunk:
                sketch.add(np.array([value % 2]), np.array([value]))
            return sketch

        left = build(chunks[0])
        left.merge(build(chunks[1]))
        left.merge(build(chunks[2]))
        tail = build(chunks[1])
        tail.merge(build(chunks[2]))
        right = build(chunks[0])
        right.merge(tail)
        assert left.summaries() == right.summaries()

    def test_summaries_merge_through_latency_summary_contract(self):
        # The emitted exact-rational summaries obey LatencySummary's
        # associative count-weighted merge, like the scalar pipeline's.
        a = FleetQuantileSketch(1, bins=32)
        b = FleetQuantileSketch(1, bins=32)
        fill(a, 0, [1, 2, 3, 4])
        fill(b, 0, [10, 20])
        merged = a.row_summary(0).merge(b.row_summary(0))
        assert merged.count == 6
        assert merged.total == Fraction(40)
        assert merged.minimum == Fraction(1)
        assert merged.maximum == Fraction(20)

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError, match="identical"):
            FleetQuantileSketch(1, bins=32).merge(
                FleetQuantileSketch(2, bins=32)
            )
        with pytest.raises(ConfigurationError, match="identical"):
            FleetQuantileSketch(1, bins=32).merge(
                FleetQuantileSketch(1, bins=64)
            )

    def test_merge_rejects_non_sketch(self):
        with pytest.raises(ConfigurationError, match="merge"):
            FleetQuantileSketch(1).merge(LatencySummary())


class TestCrossValidationAgainstScalarPipeline:
    """The sketch and the scalar P^2 tracker see identical streams."""

    def test_small_stream_agrees_exactly_with_streaming_quantiles(self):
        from repro.metrics import StreamingQuantiles

        # Below StreamingQuantiles' exact_limit both pipelines compute
        # the same rational rank arithmetic: agreement is exact.
        stream = [4, 9, 2, 7, 7, 0, 12, 3]
        sketch = FleetQuantileSketch(1, bins=64)
        scalar = StreamingQuantiles(exact_limit=len(stream))
        fill(sketch, 0, stream)
        for value in stream:
            scalar.add(value)
        summary = sketch.row_summary(0)
        assert scalar.exact
        for field, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            assert float(getattr(summary, field)) == scalar.quantile(q)

    def test_long_stream_sketch_tracks_p2_estimates(self):
        from repro.metrics import StreamingQuantiles

        # Past exact_limit the scalar pipeline switches to approximate
        # P^2 estimators while the 2048-bin sketch stays near-exact;
        # both must land close to the true order statistics.
        rng = random.Random(55)
        stream = [rng.randrange(400) for _ in range(5_000)]
        sketch = FleetQuantileSketch(1)
        scalar = StreamingQuantiles()
        fill(sketch, 0, stream)
        for value in stream:
            scalar.add(value)
        ordered = sorted(stream)
        summary = sketch.row_summary(0)
        for field, q in (("p50", 0.5), ("p90", 0.9)):
            truth = exact_quantile(ordered, q)
            # Sketch bound: width-1 buckets (400 < 2048), so exact.
            assert float(getattr(summary, field)) == truth
            # P^2 is approximate; uniform data keeps it within a few
            # percent of the range.
            assert abs(scalar.quantile(q) - truth) <= 0.05 * 400


class TestEmptyRows:
    def test_empty_row_gives_empty_summary(self):
        sketch = FleetQuantileSketch(2)
        sketch.add(np.array([0]), np.array([5]))
        assert sketch.row_summary(1) == LatencySummary()
        assert sketch.row_summary(1).count == 0

    def test_empty_add_is_a_no_op(self):
        sketch = FleetQuantileSketch(1)
        sketch.add(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert int(sketch.count[0]) == 0
