"""Unit tests for :mod:`repro.bus.memory`."""

from __future__ import annotations

import pytest

from repro.bus.memory import MemoryModule, PendingRequest
from repro.core.errors import SimulationError


def request(processor: int = 0, issue_cycle: int = 0) -> PendingRequest:
    return PendingRequest(processor=processor, issue_cycle=issue_cycle)


class TestUnbufferedLifecycle:
    def test_initially_idle_and_accepting(self):
        module = MemoryModule(0, access_cycles=3)
        assert module.can_accept()
        assert not module.accessing
        assert not module.response_ready

    def test_access_takes_exactly_r_cycles(self):
        module = MemoryModule(0, access_cycles=3)
        module.deliver_request(request())  # delivered end of cycle 0
        for cycle in (1, 2):
            module.tick(cycle)
            assert not module.response_ready
        module.tick(3)
        assert module.response_ready
        # Ready for the bus from cycle 4 = T + r + 1.
        assert module.oldest_response_ready_cycle == 4

    def test_busy_module_rejects_requests(self):
        # Hypothesis (h): requests to busy modules are not even eligible.
        module = MemoryModule(0, access_cycles=2)
        module.deliver_request(request())
        assert not module.can_accept()
        module.tick(1)
        module.tick(2)
        # Result waiting: still not accepting until the response leaves.
        assert module.response_ready
        assert not module.can_accept()

    def test_module_occupied_until_response_taken(self):
        module = MemoryModule(0, access_cycles=1)
        module.deliver_request(request(processor=5))
        module.tick(1)
        taken = module.take_response()
        assert taken.processor == 5
        assert module.can_accept()
        assert module.in_flight() == 0

    def test_deliver_while_ineligible_raises(self):
        module = MemoryModule(0, access_cycles=2)
        module.deliver_request(request())
        with pytest.raises(SimulationError, match="ineligible"):
            module.deliver_request(request(processor=1))

    def test_take_response_without_result_raises(self):
        with pytest.raises(SimulationError):
            MemoryModule(0, access_cycles=2).take_response()

    def test_busy_cycle_accounting(self):
        module = MemoryModule(0, access_cycles=4)
        module.deliver_request(request())
        for cycle in range(1, 5):
            module.tick(cycle)
        module.tick(5)  # idle tick (result waiting)
        assert module.busy_cycles == 4
        assert module.services_started == 1


class TestBufferedLifecycle:
    def test_accepts_into_input_buffer_while_busy(self):
        module = MemoryModule(0, access_cycles=3, input_depth=1, output_depth=1)
        module.deliver_request(request(processor=0))
        assert module.can_accept()  # input buffer empty
        module.deliver_request(request(processor=1))
        assert module.input_backlog == 1
        assert not module.can_accept()  # input buffer full

    def test_back_to_back_service(self):
        # Section 6: "a memory module can now be busy servicing different
        # requests in contiguous bus cycles".
        module = MemoryModule(0, access_cycles=2, input_depth=1, output_depth=1)
        module.deliver_request(request(processor=0))
        module.deliver_request(request(processor=1))
        module.tick(1)
        module.tick(2)  # first access done; second starts immediately
        assert module.response_ready
        assert module.accessing
        module.tick(3)
        module.tick(4)
        # Second result blocked? No - output depth 1 holds the first;
        # the second finished access stalls.
        assert module.stalled

    def test_stall_resolves_after_response_taken(self):
        module = MemoryModule(0, access_cycles=1, input_depth=1, output_depth=1)
        module.deliver_request(request(processor=0))
        module.deliver_request(request(processor=1))
        module.tick(1)  # first done -> output; second starts
        module.tick(2)  # second done -> output full -> stall
        assert module.stalled
        module.take_response()  # bus drains the output at end of cycle 2
        module.tick(3)  # stalled result moves to output
        assert not module.stalled
        assert module.response_ready
        assert module.stall_cycles >= 1

    def test_fifo_response_order(self):
        module = MemoryModule(0, access_cycles=1, input_depth=2, output_depth=2)
        module.deliver_request(request(processor=0))
        module.deliver_request(request(processor=1))
        module.tick(1)
        module.tick(2)
        assert module.take_response().processor == 0
        assert module.take_response().processor == 1

    def test_deeper_buffers_hold_more(self):
        module = MemoryModule(0, access_cycles=5, input_depth=3, output_depth=3)
        module.deliver_request(request(processor=0))
        for processor in (1, 2, 3):
            assert module.can_accept()
            module.deliver_request(request(processor=processor))
        assert not module.can_accept()
        assert module.in_flight() == 4

    def test_idle_buffered_module_serves_directly(self):
        module = MemoryModule(0, access_cycles=2, input_depth=1, output_depth=1)
        module.deliver_request(request())
        assert module.accessing
        assert module.input_backlog == 0


class TestValidation:
    def test_rejects_bad_access_cycles(self):
        with pytest.raises(SimulationError):
            MemoryModule(0, access_cycles=0)

    def test_rejects_negative_depths(self):
        with pytest.raises(SimulationError):
            MemoryModule(0, access_cycles=1, input_depth=-1, output_depth=-1)

    def test_rejects_mismatched_buffering(self):
        with pytest.raises(SimulationError):
            MemoryModule(0, access_cycles=1, input_depth=1, output_depth=0)

    def test_ready_cycle_without_response_raises(self):
        with pytest.raises(SimulationError):
            _ = MemoryModule(0, access_cycles=1).oldest_response_ready_cycle
