"""Unit tests for :mod:`repro.models.bandwidth` (Section 3 EBW weights)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.models.bandwidth import ebw_from_busy_distribution, ebw_weight


class TestEbwWeight:
    def test_zero_busy_contributes_nothing(self):
        assert ebw_weight(0, 8) == 0.0

    def test_single_busy_module(self):
        # x = 1: weight = (r+2)/(r+2) = 1 completion per processor cycle.
        for r in (1, 4, 9, 24):
            assert ebw_weight(1, r) == pytest.approx(1.0)

    def test_case_a_formula(self):
        # x <= r+1: x (r+2)/(r+1+x).
        assert ebw_weight(2, 9) == pytest.approx(2 * 11 / 12)
        assert ebw_weight(5, 9) == pytest.approx(5 * 11 / 15)

    def test_case_b_saturation(self):
        # x >= r+2: the ceiling (r+2)/2.
        assert ebw_weight(4, 2) == pytest.approx(2.0)
        assert ebw_weight(100, 2) == pytest.approx(2.0)

    def test_continuous_at_boundary(self):
        # At x = r+1 case a gives (r+1)(r+2)/(2r+2) = (r+2)/2 = case b.
        for r in (1, 3, 8):
            assert ebw_weight(r + 1, r) == pytest.approx((r + 2) / 2)

    def test_weight_bounded_by_ceiling(self):
        for r in (1, 2, 8):
            for x in range(0, 3 * r):
                assert ebw_weight(x, r) <= (r + 2) / 2 + 1e-12

    def test_monotone_in_busy_modules(self):
        r = 6
        weights = [ebw_weight(x, r) for x in range(0, 20)]
        assert weights == sorted(weights)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            ebw_weight(-1, 4)
        with pytest.raises(ConfigurationError):
            ebw_weight(2, 0)


class TestEbwFromDistribution:
    def test_table1_hand_case(self):
        # n=m=2, r=9: P(1)=P(2)=1/2 gives the paper's 1.417.
        ebw = ebw_from_busy_distribution({1: 0.5, 2: 0.5}, 9)
        assert ebw == pytest.approx(1.417, abs=5e-4)

    def test_point_mass(self):
        assert ebw_from_busy_distribution({3: 1.0}, 9) == pytest.approx(3 * 11 / 13)

    def test_rejects_non_distribution(self):
        with pytest.raises(ConfigurationError, match="sums to"):
            ebw_from_busy_distribution({1: 0.4, 2: 0.4}, 9)
