"""Unit tests for :mod:`repro.des.engine` and :mod:`repro.des.events`."""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.des.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_insertion(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("late"), priority=5)
        engine.schedule(1.0, lambda: fired.append("first"), priority=0)
        engine.schedule(1.0, lambda: fired.append("second"), priority=0)
        engine.run()
        assert fired == ["first", "second", "late"]

    def test_clock_advances_to_event_times(self):
        engine = Engine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]
        assert engine.now == 2.5

    def test_schedule_in_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="before current time"):
            engine.schedule(1.0, lambda: None)

    def test_schedule_after(self):
        engine = Engine()
        times = []
        engine.schedule(1.0, lambda: engine.schedule_after(2.0, lambda: times.append(engine.now)))
        engine.run()
        assert times == [3.0]

    def test_schedule_after_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError, match="non-negative"):
            engine.schedule_after(-1.0, lambda: None)

    def test_events_scheduled_at_current_time_fire(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: engine.schedule(1.0, lambda: fired.append("x")))
        engine.run()
        assert fired == ["x"]


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_no_events(self):
        engine = Engine()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_max_events(self):
        engine = Engine()
        fired = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        engine.run(max_events=2)
        assert fired == [1.0, 2.0]

    def test_run_not_reentrant(self):
        engine = Engine()
        error = {}

        def reenter():
            try:
                engine.run()
            except SimulationError as exc:
                error["raised"] = str(exc)

        engine.schedule(1.0, reenter)
        engine.run()
        assert "re-entrant" in error["raised"]

    def test_step(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        assert engine.step() is True
        assert fired == [1]
        assert engine.step() is False


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        handle = engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.pending == 1

    def test_processed_counts_fired_events(self):
        engine = Engine()
        for t in (1.0, 2.0):
            engine.schedule(t, lambda: None)
        engine.run()
        assert engine.processed == 2

    def test_handle_reports_time(self):
        engine = Engine()
        handle = engine.schedule(4.5, lambda: None)
        assert handle.time == 4.5
