"""Unit tests for the parallel replication and pool primitives."""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.des.replications import (
    ebw_estimator,
    replicate,
    replication_seeds,
)
from repro.parallel import (
    EbwTask,
    ParallelReplicator,
    SimulationCase,
    map_ordered,
    resolve_workers,
    run_case,
    simulate_cases,
)

CONFIG = SystemConfig(2, 2, 2)
CYCLES = 1_500


def _square(x: int) -> int:
    return x * x


class TestResolveWorkers:
    def test_none_defaults_to_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_explicit_value_passes_through(self):
        assert resolve_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "4", True])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad)


class TestMapOrdered:
    def test_preserves_input_order(self):
        items = [5, 3, 1, 4, 2]
        assert map_ordered(_square, items, max_workers=2) == [
            25,
            9,
            1,
            16,
            4,
        ]

    def test_serial_fast_path_identical(self):
        items = list(range(6))
        assert map_ordered(_square, items, max_workers=1) == map_ordered(
            _square, items, max_workers=3
        )

    def test_empty_items(self):
        assert map_ordered(_square, [], max_workers=4) == []

    def test_single_item_runs_in_process(self):
        # One item never needs a pool; unpicklable functions still work.
        assert map_ordered(lambda x: x + 1, [41], max_workers=4) == [42]

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import repro.parallel.pool as pool_module

        def broken_executor(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(
            pool_module, "ProcessPoolExecutor", broken_executor
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = map_ordered(_square, [1, 2, 3], max_workers=2)
        assert result == [1, 4, 9]
        assert any("process pool unavailable" in str(w.message) for w in caught)

    def test_submit_time_pool_breakage_falls_back(self, monkeypatch):
        # Spawn failures can surface lazily inside executor.map, not at
        # construction; those must degrade to the serial loop too.
        from concurrent.futures.process import BrokenProcessPool

        import repro.parallel.pool as pool_module

        class LazyBrokenExecutor:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def map(self, *args, **kwargs):
                raise BrokenProcessPool("worker died during spawn")

        monkeypatch.setattr(
            pool_module, "ProcessPoolExecutor", LazyBrokenExecutor
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = map_ordered(_square, [1, 2, 3], max_workers=2)
        assert result == [1, 4, 9]
        assert any("process pool unavailable" in str(w.message) for w in caught)


class TestSimulationTasks:
    def test_run_case_matches_simulate(self):
        from repro.bus import simulate

        case = SimulationCase(CONFIG, CYCLES, seed=7)
        assert run_case(case) == simulate(CONFIG, cycles=CYCLES, seed=7)

    def test_simulate_cases_matches_serial_loop(self):
        cases = [SimulationCase(CONFIG, CYCLES, seed) for seed in range(3)]
        serial = [run_case(case) for case in cases]
        pooled = simulate_cases(cases, max_workers=2)
        assert serial == pooled

    def test_ebw_task_is_picklable_and_correct(self):
        import pickle

        task = EbwTask(CONFIG, cycles=CYCLES)
        clone = pickle.loads(pickle.dumps(task))
        assert clone(3) == task(3)

    def test_ebw_estimator_returns_picklable_task(self):
        import pickle

        estimator = ebw_estimator(CONFIG, cycles=CYCLES)
        pickle.dumps(estimator)
        assert isinstance(estimator, EbwTask)


class TestParallelReplicator:
    def test_matches_serial_replicate_exactly(self):
        estimator = ebw_estimator(CONFIG, cycles=CYCLES)
        serial = replicate(estimator, replications=4, base_seed=11)
        parallel = ParallelReplicator(max_workers=2).run(
            estimator, replications=4, base_seed=11
        )
        assert parallel == serial
        assert parallel.estimates == serial.estimates
        assert parallel.seeds == serial.seeds
        assert parallel.half_width == serial.half_width

    def test_replicate_parallel_flag(self):
        estimator = ebw_estimator(CONFIG, cycles=CYCLES)
        serial = replicate(estimator, replications=3, base_seed=2)
        parallel = replicate(
            estimator, replications=3, base_seed=2, parallel=True, max_workers=2
        )
        assert parallel == serial

    def test_seeds_follow_canonical_mapping(self):
        estimator = ebw_estimator(CONFIG, cycles=CYCLES)
        result = ParallelReplicator(max_workers=1).run(
            estimator, replications=3, base_seed=40
        )
        assert result.seeds == replication_seeds(40, 3) == (40, 41, 42)

    def test_rejects_unpicklable_estimator(self):
        with pytest.raises(ConfigurationError, match="picklable"):
            ParallelReplicator(max_workers=2).run(
                lambda seed: 1.0, replications=2
            )

    def test_single_worker_accepts_any_callable(self):
        # max_workers=1 is the serial contract: no pool, no pickling.
        result = ParallelReplicator(max_workers=1).run(
            lambda seed: float(seed), replications=3, base_seed=5
        )
        assert result.estimates == (5.0, 6.0, 7.0)

    def test_replicate_max_workers_one_accepts_lambda(self):
        result = replicate(lambda seed: 2.0, 3, max_workers=1)
        assert result.mean == 2.0

    def test_too_few_replications_rejected(self):
        estimator = ebw_estimator(CONFIG, cycles=CYCLES)
        with pytest.raises(ConfigurationError):
            ParallelReplicator().run(estimator, replications=1)

    def test_confidence_recorded(self):
        estimator = ebw_estimator(CONFIG, cycles=CYCLES)
        result = ParallelReplicator(max_workers=1).run(
            estimator, replications=2, confidence=0.99
        )
        assert result.confidence == 0.99
