"""Unit tests for the Section 4 reduced chain."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError, ModelError
from repro.core.policy import Priority
from repro.models.processor_priority import (
    BUS_IDLE,
    BUS_REQUEST,
    BUS_RESPONSE,
    ProcessorPriorityChain,
    classify,
    processor_priority_ebw,
)


class TestClassification:
    def test_class_0(self):
        assert classify((3, 3, 0, BUS_IDLE)) == 0

    def test_class_1(self):
        assert classify((2, 4, 1, BUS_RESPONSE)) == 1

    def test_class_2(self):
        assert classify((2, 4, 1, BUS_REQUEST)) == 2

    def test_class_3(self):
        assert classify((1, 4, 1, BUS_REQUEST)) == 3

    def test_rejects_malformed(self):
        with pytest.raises(ModelError):
            classify((2, 4, 0, BUS_IDLE))  # idle but i != c
        with pytest.raises(ModelError):
            classify((3, 3, 1, BUS_RESPONSE))  # 1+i+e > c
        with pytest.raises(ModelError):
            classify((-1, 2, 0, BUS_REQUEST))
        with pytest.raises(ModelError):
            classify((0, 0, 0, BUS_IDLE))  # c < 1


class TestProbabilities:
    def test_p1_is_i_over_r(self):
        chain = ProcessorPriorityChain(8, 8, 10)
        assert chain.p1(0) == 0.0
        assert chain.p1(5) == 0.5
        assert chain.p1(10) == 1.0

    def test_p1_rejects_out_of_range(self):
        chain = ProcessorPriorityChain(8, 8, 10)
        with pytest.raises(ModelError):
            chain.p1(11)

    def test_p3_p4(self):
        chain = ProcessorPriorityChain(8, 16, 10)
        assert chain.p3(5) == pytest.approx(4 / 16)
        assert chain.p4(5) == pytest.approx(5 / 16)

    def test_p2_boundaries(self):
        chain = ProcessorPriorityChain(8, 16, 10)
        assert chain.p2(8) == 1.0  # c = n
        assert chain.p2(1) == 0.0  # all piled on one module


class TestTransitions:
    def test_rows_are_distributions(self):
        chain = ProcessorPriorityChain(8, 8, 6)
        for state in chain.chain.states:
            row = chain.transition(state)
            assert sum(row.values()) == pytest.approx(1.0), state

    def test_successors_are_well_formed(self):
        chain = ProcessorPriorityChain(6, 10, 4)
        for state in chain.chain.states:
            for successor in chain.transition(state):
                classify(successor)  # raises on malformed states

    def test_class_0_transitions(self):
        chain = ProcessorPriorityChain(8, 8, 10)
        row = chain.transition((4, 4, 0, BUS_IDLE))
        assert row == pytest.approx(
            {(3, 4, 0, BUS_RESPONSE): 0.4, (4, 4, 0, BUS_IDLE): 0.6}
        )

    def test_class_2_transitions_with_waiting_responses(self):
        chain = ProcessorPriorityChain(8, 8, 10)
        row = chain.transition((2, 5, 2, BUS_REQUEST))
        assert row == pytest.approx(
            {(2, 5, 2, BUS_RESPONSE): 0.2, (3, 5, 1, BUS_RESPONSE): 0.8}
        )

    def test_class_2_transitions_without_waiting_responses(self):
        chain = ProcessorPriorityChain(8, 8, 10)
        row = chain.transition((3, 4, 0, BUS_REQUEST))
        assert row[(4, 4, 0, BUS_IDLE)] == pytest.approx(0.7)

    def test_class_3_transitions(self):
        chain = ProcessorPriorityChain(8, 8, 10)
        row = chain.transition((2, 6, 1, BUS_REQUEST))
        assert row == pytest.approx(
            {(2, 6, 2, BUS_REQUEST): 0.2, (3, 6, 1, BUS_REQUEST): 0.8}
        )

    def test_i_never_exceeds_r(self):
        chain = ProcessorPriorityChain(8, 8, 3)
        assert all(state[0] <= 3 for state in chain.chain.states)

    def test_c_never_exceeds_min_n_m(self):
        chain = ProcessorPriorityChain(5, 9, 12)
        assert all(state[1] <= 5 for state in chain.chain.states)
        chain = ProcessorPriorityChain(9, 5, 12)
        assert all(state[1] <= 5 for state in chain.chain.states)


class TestStateSpace:
    @pytest.mark.parametrize("n,m", [(2, 8), (4, 8), (8, 4), (8, 8), (3, 5)])
    def test_paper_state_count_formula(self, n, m):
        # Section 4: S = (3 v^2 + 3 v - 2) / 2 for r > v = min(n, m).
        v = min(n, m)
        chain = ProcessorPriorityChain(n, m, v + 5)
        assert chain.state_count == (3 * v * v + 3 * v - 2) // 2

    def test_unreachable_state_excluded(self):
        # The formula's -1: (0, v, v-1, BUS_RESPONSE) is unreachable.
        chain = ProcessorPriorityChain(4, 4, 10)
        assert (0, 4, 3, BUS_RESPONSE) not in chain.chain.states

    def test_small_r_shrinks_state_space(self):
        big = ProcessorPriorityChain(8, 8, 12).state_count
        small = ProcessorPriorityChain(8, 8, 2).state_count
        assert small < big


class TestEbw:
    def test_single_processor_closed_form(self):
        # One processor completes one request every r+2 cycles: EBW = 1.
        for r in (1, 2, 5, 10):
            chain = ProcessorPriorityChain(1, 4, r)
            assert chain.ebw() == pytest.approx(1.0)

    def test_bounded_by_ceiling(self):
        for n, m, r in [(8, 4, 2), (8, 16, 12), (4, 4, 6)]:
            chain = ProcessorPriorityChain(n, m, r)
            assert chain.ebw() <= (r + 2) / 2 + 1e-12

    def test_saturates_for_small_r(self):
        # Paper: EBW = (r+2)/2 attainable with r < min(n, m).
        chain = ProcessorPriorityChain(8, 8, 2)
        assert chain.ebw() == pytest.approx(2.0, abs=5e-3)

    def test_idle_probability_complements_utilisation(self):
        chain = ProcessorPriorityChain(8, 8, 8)
        ebw = chain.ebw()
        idle = chain.bus_idle_probability()
        assert ebw == pytest.approx((1 - idle) * 5.0)

    def test_facade_validates_hypotheses(self):
        good = SystemConfig(8, 8, 8, priority=Priority.PROCESSORS)
        result = processor_priority_ebw(good)
        assert result.method == "approx-processor-priority"
        assert result.details["states"] > 0
        with pytest.raises(ConfigurationError):
            processor_priority_ebw(
                SystemConfig(8, 8, 8, priority=Priority.MEMORIES)
            )
        with pytest.raises(ConfigurationError):
            processor_priority_ebw(
                SystemConfig(8, 8, 8, priority=Priority.PROCESSORS, buffered=True)
            )
        with pytest.raises(ConfigurationError):
            processor_priority_ebw(
                SystemConfig(
                    8, 8, 8, priority=Priority.PROCESSORS, request_probability=0.5
                )
            )

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            ProcessorPriorityChain(0, 4, 4)
        with pytest.raises(ConfigurationError):
            ProcessorPriorityChain(4, 0, 4)
        with pytest.raises(ConfigurationError):
            ProcessorPriorityChain(4, 4, 0)
