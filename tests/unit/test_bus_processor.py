"""Unit tests for :mod:`repro.bus.processor`."""

from __future__ import annotations

import pytest

from repro.bus.processor import Processor, ProcessorState
from repro.core.errors import SimulationError
from repro.des.rng import RandomStream
from repro.workloads.generators import TraceTargets


def make_processor(p: float = 1.0, cycle: int = 4, targets=None) -> Processor:
    if targets is None:
        targets = TraceTargets([[0, 1, 0, 1, 0, 1, 0, 1]], modules=2)
    return Processor(
        index=0,
        request_probability=p,
        processor_cycle=cycle,
        targets=targets,
        think_stream=RandomStream(1, "think"),
    )


class TestLifecycle:
    def test_start_issues_first_request(self):
        processor = make_processor()
        processor.start(cycle=0)
        assert processor.state is ProcessorState.REQUESTING
        assert processor.target == 0
        assert processor.issue_cycle == 0
        assert processor.has_pending_request

    def test_delivery_moves_to_awaiting(self):
        processor = make_processor()
        processor.start(0)
        processor.request_delivered()
        assert processor.state is ProcessorState.AWAITING
        assert not processor.has_pending_request

    def test_response_with_p_one_reissues_next_cycle(self):
        processor = make_processor(p=1.0)
        processor.start(0)
        processor.request_delivered()
        processor.response_received(cycle=5)
        # p = 1: thinking resolves instantly at the next cycle boundary.
        processor.on_cycle_start(6)
        assert processor.state is ProcessorState.REQUESTING
        assert processor.issue_cycle == 6
        assert processor.target == 1  # second trace entry

    def test_latency_recorded(self):
        processor = make_processor()
        processor.start(0)
        processor.request_delivered()
        processor.response_received(cycle=5)
        assert processor.completions == 1
        assert processor.total_latency == 6  # cycles 0..5 inclusive

    def test_delivery_without_request_raises(self):
        processor = make_processor()
        processor.start(0)
        processor.request_delivered()
        with pytest.raises(SimulationError):
            processor.request_delivered()

    def test_response_without_delivery_raises(self):
        processor = make_processor()
        processor.start(0)
        with pytest.raises(SimulationError):
            processor.response_received(3)


class TestThinking:
    def test_thinking_processor_does_not_wake_early(self):
        # Force failures: p tiny with a stream that draws many failures.
        processor = make_processor(p=0.5, cycle=10)
        processor.start(0)
        processor.request_delivered()
        processor.response_received(cycle=0)
        wake = processor._wake_cycle
        if wake > 1:
            processor.on_cycle_start(1)
            assert processor.state is ProcessorState.THINKING

    def test_wake_cycles_quantised_to_processor_cycle(self):
        # Wake must be at cycle+1 plus a multiple of the processor cycle
        # (hypothesis (f): requests only at processor-cycle boundaries).
        processor = make_processor(p=0.3, cycle=7)
        processor.start(0)
        for completion in range(30):
            processor.request_delivered()
            end = processor._wake_cycle + 5
            processor.response_received(cycle=end)
            assert (processor._wake_cycle - (end + 1)) % 7 == 0
            processor.on_cycle_start(processor._wake_cycle)
            assert processor.state is ProcessorState.REQUESTING

    def test_p_one_never_thinks_extra_cycles(self):
        processor = make_processor(p=1.0)
        processor.start(0)
        for end in (3, 9, 15):
            processor.request_delivered()
            processor.response_received(cycle=end)
            assert processor._wake_cycle == end + 1
            processor.on_cycle_start(end + 1)


class TestValidation:
    def test_rejects_tiny_processor_cycle(self):
        with pytest.raises(SimulationError):
            make_processor(cycle=2)
