"""Unit tests for the evaluation-engine layer (repro.engine)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError, ExperimentError
from repro.core.policy import Priority
from repro.engine import (
    EvalRequest,
    EvalResult,
    EvaluationMethod,
    EvaluatorCapabilities,
    LittlesLawLatency,
    all_evaluators,
    evaluate,
    evaluate_config,
    get_evaluator,
    register_evaluator,
)
from repro.engine.registry import _REGISTRY
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import evaluate_unit, run_units, unit_line
from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec

BASE = {"processors": 2, "memories": 2, "memory_cycle_ratio": 2}


def small_config(**overrides) -> SystemConfig:
    return SystemConfig(**{**BASE, **overrides})


class TestRegistry:
    def test_every_method_has_an_evaluator(self):
        for method in EvaluationMethod:
            evaluator = get_evaluator(method)
            assert evaluator.capabilities.method is method
            assert "@" in evaluator.capabilities.engine_token

    def test_engine_tokens_are_unique(self):
        tokens = [e.capabilities.engine_token for e in all_evaluators()]
        assert len(tokens) == len(set(tokens))

    def test_unknown_method_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no evaluator"):
            get_evaluator("quantum")

    def test_duplicate_registration_requires_replace(self):
        simulation = get_evaluator("simulation")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_evaluator(simulation)
        # Replacement swaps the instance and is reversible.
        try:
            register_evaluator(simulation, replace=True)
            assert get_evaluator("simulation") is simulation
        finally:
            _REGISTRY["simulation"] = simulation

    def test_non_evaluators_are_rejected(self):
        with pytest.raises(ConfigurationError, match="not an Evaluator"):
            register_evaluator(object())

    def test_custom_evaluator_registration(self):
        @dataclasses.dataclass(frozen=True)
        class _Caps:
            method: str = "constant"
            engine_token: str = "constant@1"

            def check(self, request):
                return None

        class ConstantEvaluator:
            capabilities = _Caps()

            def evaluate(self, request):
                return EvalResult(1.0, 0.5, 0.5)

            def cache_payload(self, request):
                return {"method": "constant", "engine": "constant@1"}

        try:
            register_evaluator(ConstantEvaluator())
            assert evaluate(EvalRequest(small_config()), "constant").ebw == 1.0
        finally:
            _REGISTRY.pop("constant", None)


class TestCapabilities:
    def test_bandwidth_rejects_buffering(self):
        with pytest.raises(ConfigurationError, match="unbuffered"):
            evaluate_config(
                small_config(buffered=True), EvaluationMethod.BANDWIDTH
            )

    def test_markov_rejects_partial_load(self):
        with pytest.raises(ConfigurationError, match="p = 1"):
            evaluate_config(
                small_config(request_probability=0.5), EvaluationMethod.MARKOV
            )

    def test_analytic_methods_reject_non_uniform_workloads(self):
        from repro.workloads.spec import HotSpotWorkload

        request = EvalRequest(
            config=small_config(), workload=HotSpotWorkload(hot_fraction=0.5)
        )
        with pytest.raises(ConfigurationError, match="analytic"):
            evaluate(request, EvaluationMethod.CROSSBAR)

    def test_metrics_capability_names_the_method(self):
        capabilities = get_evaluator("markov").capabilities
        with pytest.raises(ConfigurationError, match="markov"):
            capabilities.check_metrics(("latency",))

    def test_buffered_only_capability_direction(self):
        # No built-in evaluator is buffered-only, but the declaration
        # supports it (e.g. a future buffered-queue model).
        capabilities = EvaluatorCapabilities(
            method=EvaluationMethod.MVA,
            engine_token="x@1",
            supports_unbuffered=False,
        )
        with pytest.raises(ConfigurationError, match="buffered system only"):
            capabilities.check_config(small_config())
        capabilities.check_config(small_config(buffered=True))

    def test_simulation_accepts_everything(self):
        capabilities = get_evaluator("simulation").capabilities
        capabilities.check(
            EvalRequest(
                config=small_config(buffered=True, request_probability=0.3),
                metrics=("latency",),
            )
        )

    def test_compiler_rejects_invalid_grid_points_at_load_time(self):
        spec = ScenarioSpec(
            name="bad-bandwidth",
            base={**BASE, "buffered": True},
            method=EvaluationMethod.BANDWIDTH,
        )
        with pytest.raises(ConfigurationError, match="bad-bandwidth"):
            compile_scenario(spec)

    def test_compiler_rejects_partial_load_markov(self):
        spec = ScenarioSpec(
            name="bad-markov",
            base=BASE,
            grid=(GridAxis("request_probability", (1.0, 0.5)),),
            method=EvaluationMethod.MARKOV,
        )
        with pytest.raises(ConfigurationError, match="p = 1"):
            compile_scenario(spec)


class TestEvaluators:
    def test_bounds_bracket_the_product_form_value(self):
        from repro.queueing.bounds import balanced_job_bounds
        from repro.queueing.mva import product_form_ebw
        from repro.queueing.network import buffered_bus_network

        config = small_config(
            processors=8, memories=8, memory_cycle_ratio=8, buffered=True
        )
        result = evaluate_config(config, EvaluationMethod.BOUNDS)
        bounds = balanced_job_bounds(buffered_bus_network(config))
        scale = config.processor_cycle
        assert bounds.lower * scale <= result.ebw <= bounds.upper * scale
        assert bounds.lower * scale <= product_form_ebw(config)
        assert product_form_ebw(config) <= bounds.upper * scale + 1e-9

    def test_approx_dispatches_on_priority(self):
        from repro.models.approx_memory_priority import (
            approximate_memory_priority_ebw,
        )
        from repro.models.processor_priority import processor_priority_ebw

        memories = small_config(
            processors=4, memories=4, memory_cycle_ratio=11,
            priority=Priority.MEMORIES,
        )
        processors = dataclasses.replace(memories, priority=Priority.PROCESSORS)
        assert (
            evaluate_config(memories, "approx").ebw
            == approximate_memory_priority_ebw(memories).ebw
        )
        assert (
            evaluate_config(processors, "approx").ebw
            == processor_priority_ebw(processors).ebw
        )

    def test_simulation_through_engine_equals_direct_simulate(self):
        from repro.bus import simulate

        config = small_config()
        via_engine = evaluate_config(
            config, "simulation", cycles=500, seed=3
        )
        direct = simulate(config, cycles=500, seed=3)
        assert via_engine.ebw == direct.ebw
        assert via_engine.bus_utilization == direct.bus_utilization

    def test_mva_littles_law_consistency(self):
        config = small_config(
            processors=8, memories=8, memory_cycle_ratio=8, buffered=True
        )
        result = evaluate_config(
            config, EvaluationMethod.MVA, metrics=("latency",)
        )
        littles = result.littles
        assert littles is not None
        # Little's law: N = X * (residence + think); p = 1 has no think.
        throughput = result.ebw / config.processor_cycle
        assert littles.total_mean == pytest.approx(
            config.processors / throughput
        )
        assert littles.wait_mean == pytest.approx(
            littles.total_mean - (config.memory_cycle_ratio + 2)
        )
        # Queue lengths: bus plus all modules plus in-thought equals N.
        assert (
            littles.queue_bus + littles.queue_memory * config.memories
        ) == pytest.approx(config.processors)

    def test_mva_littles_law_with_think_time(self):
        config = small_config(
            processors=4, memories=4, memory_cycle_ratio=4,
            request_probability=0.5, buffered=True,
        )
        littles = evaluate_config(
            config, EvaluationMethod.MVA, metrics=("latency",)
        ).littles
        assert littles.wait_mean >= 0.0
        assert littles.total_mean > config.memory_cycle_ratio + 2


class TestPayloads:
    def test_littles_payload_round_trips(self):
        littles = LittlesLawLatency(1.5, 9.5, 0.25, 0.75)
        assert LittlesLawLatency.from_payload(littles.payload()) == littles

    def test_malformed_littles_payload_raises(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            LittlesLawLatency.from_payload({"wait_mean": 1.0})

    def test_eval_result_expectations_guard_stale_entries(self):
        payload = EvalResult(1.0, 0.5, 0.5).payload()
        EvalResult.from_payload(payload)
        with pytest.raises(ConfigurationError):
            EvalResult.from_payload(payload, expect_littles=True)
        with pytest.raises(ConfigurationError):
            EvalResult.from_payload(payload, expect_latency=True)

    def test_analytic_cache_payloads_ignore_seed_and_cycles(self):
        config = small_config(buffered=True)
        mva = get_evaluator("mva")
        one = mva.cache_payload(EvalRequest(config, cycles=10, seed=1))
        two = mva.cache_payload(EvalRequest(config, cycles=99, seed=7))
        assert one == two
        assert one["engine"] == "mva@1"

    def test_metric_bearing_mva_payload_differs(self):
        config = small_config(buffered=True)
        mva = get_evaluator("mva")
        plain = mva.cache_payload(EvalRequest(config))
        metric = mva.cache_payload(EvalRequest(config, metrics=("latency",)))
        assert plain != metric
        assert metric["metrics"] == ["littles@1"]


class TestScenarioIntegration:
    def mva_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="littles",
            base={**BASE, "buffered": True},
            method=EvaluationMethod.MVA,
            metrics=("latency",),
            plan=ReplicationPlan(1, 0),
        )

    def test_evaluate_unit_emits_littles_payload(self):
        unit = compile_scenario(self.mva_spec())[0]
        metrics = evaluate_unit(unit)
        assert set(metrics) >= {"ebw", "littles_law"}

    def test_unit_line_renders_littles_columns(self):
        results = run_units(compile_scenario(self.mva_spec()))
        line = unit_line(results[0])
        for column in ("wait_mean=", "total_mean=", "qlen_bus=", "qlen_mem="):
            assert column in line
        assert "lat_count=" not in line

    def test_cached_littles_units_render_identically(self, tmp_path):
        from repro.parallel.cache import ResultCache

        cache = ResultCache(cache_dir=tmp_path, version_tag="test")
        units = compile_scenario(self.mva_spec())
        fresh = run_units(units, cache=cache)
        cached = run_units(units, cache=cache)
        assert [unit_line(r) for r in fresh] == [unit_line(r) for r in cached]
        assert all(result.cached for result in cached)

    def test_stale_cache_entry_triggers_recompute(self, tmp_path):
        from repro.parallel.cache import ResultCache

        cache = ResultCache(cache_dir=tmp_path, version_tag="test")
        units = compile_scenario(self.mva_spec())
        key = cache.key(units[0].payload())
        # An entry in the pre-littles format (no littles_law) is
        # malformed for this unit and must be recomputed, not misread.
        cache.put(key, {"ebw": 1.0, "processor_utilization": 0.5,
                        "bus_utilization": 0.5})
        results = run_units(units, cache=cache)
        assert not results[0].cached
        assert results[0].littles is not None

    def test_malformed_payload_is_an_experiment_error(self):
        from repro.scenarios.execute import result_from_metrics

        unit = compile_scenario(self.mva_spec())[0]
        with pytest.raises(ExperimentError, match="malformed"):
            result_from_metrics(unit, {"ebw": "not-a-number"}, cached=False)

    def test_new_methods_compile_and_run(self):
        for method in (EvaluationMethod.BOUNDS, EvaluationMethod.APPROX):
            base = dict(BASE)
            if method is EvaluationMethod.BOUNDS:
                base["buffered"] = True
            spec = ScenarioSpec(name=f"new-{method}", base=base, method=method)
            results = run_units(compile_scenario(spec))
            assert results[0].ebw > 0.0
