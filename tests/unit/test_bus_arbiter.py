"""Unit tests for :mod:`repro.bus.arbiter`."""

from __future__ import annotations

from collections import Counter

from repro.bus.arbiter import (
    BusArbiter,
    GrantKind,
    RequestCandidate,
    ResponseCandidate,
)
from repro.core.policy import Priority, TieBreak
from repro.des.rng import RandomStream


def make_arbiter(priority: Priority, tie_break: TieBreak = TieBreak.RANDOM):
    return BusArbiter(priority, tie_break, RandomStream(9, "arbitration"))


REQUESTS = [
    RequestCandidate(processor=0, module=1, issue_cycle=5),
    RequestCandidate(processor=1, module=2, issue_cycle=3),
]
RESPONSES = [
    ResponseCandidate(module=0, ready_cycle=4),
    ResponseCandidate(module=3, ready_cycle=2),
]


class TestPriority:
    def test_processors_first(self):
        arbiter = make_arbiter(Priority.PROCESSORS)
        grant = arbiter.arbitrate(REQUESTS, RESPONSES)
        assert grant.kind is GrantKind.REQUEST

    def test_memories_first(self):
        arbiter = make_arbiter(Priority.MEMORIES)
        grant = arbiter.arbitrate(REQUESTS, RESPONSES)
        assert grant.kind is GrantKind.RESPONSE

    def test_falls_back_to_other_class(self):
        arbiter = make_arbiter(Priority.PROCESSORS)
        grant = arbiter.arbitrate([], RESPONSES)
        assert grant.kind is GrantKind.RESPONSE
        arbiter = make_arbiter(Priority.MEMORIES)
        grant = arbiter.arbitrate(REQUESTS, [])
        assert grant.kind is GrantKind.REQUEST

    def test_idle_when_no_candidates(self):
        arbiter = make_arbiter(Priority.PROCESSORS)
        assert arbiter.arbitrate([], []) is None


class TestTieBreaks:
    def test_random_covers_all_candidates(self):
        arbiter = make_arbiter(Priority.PROCESSORS, TieBreak.RANDOM)
        chosen = Counter(
            arbiter.arbitrate(REQUESTS, []).processor for _ in range(400)
        )
        assert set(chosen) == {0, 1}
        # Roughly uniform (hypothesis (h): random arbitration).
        assert 120 < chosen[0] < 280

    def test_fcfs_requests_pick_oldest(self):
        arbiter = make_arbiter(Priority.PROCESSORS, TieBreak.FCFS)
        grant = arbiter.arbitrate(REQUESTS, [])
        assert grant.processor == 1  # issue_cycle 3 < 5

    def test_fcfs_responses_pick_oldest(self):
        arbiter = make_arbiter(Priority.MEMORIES, TieBreak.FCFS)
        grant = arbiter.arbitrate([], RESPONSES)
        assert grant.module == 3  # ready_cycle 2 < 4

    def test_single_candidate_fast_path(self):
        arbiter = make_arbiter(Priority.PROCESSORS)
        grant = arbiter.arbitrate([REQUESTS[0]], [])
        assert grant.processor == 0
        assert grant.module == 1

    def test_response_grant_has_no_processor(self):
        arbiter = make_arbiter(Priority.MEMORIES)
        grant = arbiter.arbitrate([], [RESPONSES[0]])
        assert grant.processor is None
        assert grant.module == 0
