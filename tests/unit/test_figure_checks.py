"""Unit tests for the figure claim-checkers (synthetic data)."""

from __future__ import annotations

from repro.experiments import paper_data
from repro.experiments.figure2 import Figure2Checks, check_claims as check_figure2
from repro.experiments.figure5 import Figure5Checks, check_claims as check_figure5
from repro.experiments.registry import ExperimentResult


def synthetic_figure2(g_prime: float, g_second: float, crossbar: float):
    measured = {}
    for n, m in paper_data.FIGURE2_SYSTEMS:
        for r in paper_data.FIGURE2_R_VALUES:
            measured[(f"{n}x{m} priority=processors", f"r={r}")] = g_prime
            measured[(f"{n}x{m} priority=memories", f"r={r}")] = g_second
            measured[(f"{n}x{m} crossbar", f"r={r}")] = crossbar
    return ExperimentResult(
        experiment_id="figure2",
        title="synthetic",
        row_label="curve",
        column_label="r",
        rows=tuple(measured),
        columns=tuple(f"r={r}" for r in paper_data.FIGURE2_R_VALUES),
        measured=measured,
    )


def synthetic_figure5(buffered: float, unbuffered: float, crossbar: float):
    measured = {}
    for n, m in paper_data.FIGURE5_SYSTEMS:
        for r in paper_data.FIGURE5_R_VALUES:
            measured[(f"{n}x{m} with buffers", f"r={r}")] = buffered
            measured[(f"{n}x{m} without buffers", f"r={r}")] = unbuffered
            measured[(f"{n}x{m} crossbar", f"r={r}")] = crossbar
    return ExperimentResult(
        experiment_id="figure5",
        title="synthetic",
        row_label="curve",
        column_label="r",
        rows=tuple(measured),
        columns=tuple(f"r={r}" for r in paper_data.FIGURE5_R_VALUES),
        measured=measured,
    )


class TestFigure2Checks:
    def test_claims_hold(self):
        checks = check_figure2(synthetic_figure2(5.0, 4.0, 4.5))
        assert checks == Figure2Checks(True, True)

    def test_priority_violation_detected(self):
        checks = check_figure2(synthetic_figure2(3.0, 4.0, 2.0))
        assert not checks.processors_beat_memories

    def test_crossbar_violation_detected(self):
        checks = check_figure2(synthetic_figure2(3.0, 2.0, 9.0))
        assert not checks.ebw_above_crossbar_at_large_r


class TestFigure5Checks:
    def test_claims_hold(self):
        checks = check_figure5(synthetic_figure5(5.5, 4.5, 5.0))
        assert checks == Figure5Checks(True, True)

    def test_domination_violation_detected(self):
        checks = check_figure5(synthetic_figure5(4.0, 5.0, 3.0))
        assert not checks.buffered_dominates_unbuffered

    def test_crossbar_exceedance_detected(self):
        checks = check_figure5(synthetic_figure5(4.0, 3.0, 6.0))
        assert not checks.buffered_exceeds_crossbar_somewhere
