"""Unit tests for :mod:`repro.markov.occupancy`.

The hand-solvable cases in these tests were worked out from the paper's
own construction (see DESIGN.md section 5); they pin the chain's
transition semantics exactly.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.markov.occupancy import OccupancyChain, canonical


class TestCanonical:
    def test_sorts_descending_and_drops_zeros(self):
        assert canonical([0, 2, 1, 0, 3]) == (3, 2, 1)

    def test_accepts_mapping(self):
        assert canonical({0: 2, 1: 0, 2: 1}) == (2, 1)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            canonical([1, -1])

    def test_empty(self):
        assert canonical([]) == ()


class TestTransitions:
    def test_rows_are_distributions(self):
        chain = OccupancyChain(4, 3, service_width=2)
        for state in chain.chain.states:
            row = chain.transition(state)
            assert sum(row.values()) == pytest.approx(1.0)
            assert all(p > 0 for p in row.values())

    def test_mass_conserved(self):
        chain = OccupancyChain(5, 4, service_width=3)
        for state in chain.chain.states:
            for successor in chain.transition(state):
                assert sum(successor) == 5

    def test_two_processors_two_modules_unlimited(self):
        # Hand-solved in DESIGN.md: from (1,1) both complete and re-draw:
        # collide w.p. 1/2; from (2,) one completes, re-draws: (2,) w.p. 1/2.
        chain = OccupancyChain(2, 2, service_width=None)
        assert chain.transition((1, 1)) == pytest.approx({(2,): 0.5, (1, 1): 0.5})
        assert chain.transition((2,)) == pytest.approx({(2,): 0.5, (1, 1): 0.5})

    def test_four_processors_two_modules(self):
        # Hand-solved: from (3,1) both busy modules complete, 2 re-draw.
        chain = OccupancyChain(4, 2, service_width=None)
        assert chain.transition((3, 1)) == pytest.approx(
            {(4,): 0.25, (3, 1): 0.5, (2, 2): 0.25}
        )
        assert chain.transition((2, 2)) == pytest.approx(
            {(3, 1): 0.5, (2, 2): 0.5}
        )

    def test_service_width_limits_completions(self):
        # With b=1 only one of the two busy modules completes.
        chain = OccupancyChain(2, 2, service_width=1)
        row = chain.transition((1, 1))
        # One module completes (chosen 50/50, symmetric), freed processor
        # re-draws uniformly: state (1,1) w.p. 1/2 (to the empty one) or
        # (2,) w.p. 1/2 (collides with the still-busy one).
        assert row == pytest.approx({(1, 1): 0.5, (2,): 0.5})

    def test_completions_in(self):
        chain = OccupancyChain(8, 8, service_width=3)
        assert chain.completions_in((1, 1, 1, 1, 1, 1, 1, 1)) == 3
        assert chain.completions_in((4, 4)) == 2
        assert chain.completions_in((8,)) == 1

    def test_invalid_state_rejected(self):
        chain = OccupancyChain(4, 2, service_width=None)
        with pytest.raises(ConfigurationError):
            chain.transition((3,))  # wrong total
        with pytest.raises(ConfigurationError):
            chain.transition((2, 1, 1))  # too many modules


class TestStateSpace:
    @pytest.mark.parametrize(
        "n,m,expected",
        [
            (2, 2, 2),   # partitions of 2 into <=2 parts
            (4, 2, 3),   # (4),(3,1),(2,2)
            (4, 4, 5),   # partitions of 4
            (8, 8, 22),  # partitions of 8
        ],
    )
    def test_state_count_equals_partition_count(self, n, m, expected):
        chain = OccupancyChain(n, m, service_width=None)
        assert chain.chain.size == expected

    def test_states_fewer_when_modules_limit_parts(self):
        # Partitions of 6 into <= 2 parts: (6),(5,1),(4,2),(3,3).
        chain = OccupancyChain(6, 2, service_width=None)
        assert chain.chain.size == 4


class TestStationaryQuantities:
    def test_two_by_two_busy_distribution(self):
        # DESIGN.md hand solve: pi(2,0) = pi(1,1) = 1/2.
        chain = OccupancyChain(2, 2, service_width=None)
        busy = chain.busy_distribution()
        assert busy[1] == pytest.approx(0.5)
        assert busy[2] == pytest.approx(0.5)

    def test_two_processors_four_modules_busy_distribution(self):
        # DESIGN.md hand solve: pi(2,...) = 1/4, pi(1,1,..) = 3/4.
        chain = OccupancyChain(2, 4, service_width=None)
        busy = chain.busy_distribution()
        assert busy[1] == pytest.approx(0.25)
        assert busy[2] == pytest.approx(0.75)

    def test_busy_distribution_sums_to_one(self):
        chain = OccupancyChain(6, 4, service_width=2)
        assert sum(chain.busy_distribution().values()) == pytest.approx(1.0)

    def test_expected_busy_crossbar_bandwidth(self):
        # Bhandarkar 2x2 exact bandwidth = 1.5 accepted requests/cycle.
        chain = OccupancyChain(2, 2, service_width=None)
        assert chain.expected_busy() == pytest.approx(1.5)

    def test_expected_completions_capped_by_width(self):
        chain = OccupancyChain(8, 8, service_width=2)
        assert chain.expected_completions() <= 2.0

    def test_single_processor(self):
        chain = OccupancyChain(1, 4, service_width=None)
        assert chain.chain.size == 1
        assert chain.expected_busy() == pytest.approx(1.0)

    def test_single_module(self):
        chain = OccupancyChain(4, 1, service_width=None)
        assert chain.expected_busy() == pytest.approx(1.0)

    def test_near_symmetry_of_expected_busy(self):
        # The paper notes Table 1 is symmetric in n and m.  The chain is
        # only *approximately* symmetric: the printed 3 decimals agree
        # but machine-precision values do not (see EXPERIMENTS.md).
        a = OccupancyChain(6, 4, service_width=None).expected_busy()
        b = OccupancyChain(4, 6, service_width=None).expected_busy()
        assert a == pytest.approx(b, abs=1e-3)


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            OccupancyChain(0, 2)
        with pytest.raises(ConfigurationError):
            OccupancyChain(2, 0)
        with pytest.raises(ConfigurationError):
            OccupancyChain(2, 2, service_width=0)
