"""Consistency tests for the transcribed published numbers."""

from __future__ import annotations

from repro.experiments import paper_data


class TestTableShapes:
    def test_table1_grid_complete(self):
        sizes = (2, 4, 6, 8)
        assert set(paper_data.TABLE1_EXACT_MEMORY_PRIORITY) == {
            (n, m) for n in sizes for m in sizes
        }

    def test_table2_grid_complete(self):
        sizes = (2, 4, 6, 8)
        assert set(paper_data.TABLE2_APPROX_MEMORY_PRIORITY) == {
            (n, m) for n in sizes for m in sizes
        }

    def test_table3_grids_complete(self):
        expected = {
            (m, r)
            for m in paper_data.TABLE3_M_VALUES
            for r in paper_data.TABLE3_R_VALUES
        }
        assert set(paper_data.TABLE3A_SIMULATION) == expected
        assert set(paper_data.TABLE3B_APPROX_MODEL) == expected

    def test_table4_grid_complete(self):
        expected = {
            (m, r)
            for m in paper_data.TABLE4_M_VALUES
            for r in paper_data.TABLE4_R_VALUES
        }
        assert set(paper_data.TABLE4_BUFFERED_SIMULATION) == expected


class TestTableSanity:
    def test_table1_symmetric(self):
        # Section 5 remarks Table 1 is symmetric on n and m.
        for (n, m), value in paper_data.TABLE1_EXACT_MEMORY_PRIORITY.items():
            assert value == paper_data.TABLE1_EXACT_MEMORY_PRIORITY[(m, n)]

    def test_all_values_within_physical_ceiling(self):
        for (n, m), value in paper_data.TABLE1_EXACT_MEMORY_PRIORITY.items():
            r = min(n, m) + 7
            assert 0 < value <= (r + 2) / 2
        for (m, r), value in paper_data.TABLE3A_SIMULATION.items():
            assert 0 < value <= (r + 2) / 2
        for (m, r), value in paper_data.TABLE3B_APPROX_MODEL.items():
            assert 0 < value <= (r + 2) / 2
        for (m, r), value in paper_data.TABLE4_BUFFERED_SIMULATION.items():
            assert 0 < value <= (r + 2) / 2

    def test_table3b_monotone_in_r(self):
        # The transcription fix of the (6, 8) typo keeps every row
        # monotone in r (the chain is monotone; only 3(a) has noise).
        for m in paper_data.TABLE3_M_VALUES:
            row = [
                paper_data.TABLE3B_APPROX_MODEL[(m, r)]
                for r in paper_data.TABLE3_R_VALUES
            ]
            assert row == sorted(row)

    def test_table4_rows_peak_then_decay(self):
        # Section 6: the buffered EBW tends to the crossbar value from
        # above as r grows, so every row decays after its peak.
        for m in paper_data.TABLE4_M_VALUES:
            row = [
                paper_data.TABLE4_BUFFERED_SIMULATION[(m, r)]
                for r in paper_data.TABLE4_R_VALUES
            ]
            peak = row.index(max(row))
            tail = row[peak:]
            assert all(
                later <= earlier + 0.01
                for earlier, later in zip(tail, tail[1:])
            )

    def test_figure_parameters_plausible(self):
        assert paper_data.FIGURE3_PROCESSORS == 8
        assert paper_data.FIGURE3_MEMORIES == 16
        assert all(0 < p <= 1 for p in paper_data.FIGURE3_P_VALUES)
        assert paper_data.FIGURE6_P_VALUES == paper_data.FIGURE3_P_VALUES
        assert all(r >= 1 for r in paper_data.FIGURE2_R_VALUES)
