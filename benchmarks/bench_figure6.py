"""Benchmark: regenerate Figure 6 (buffered utilisation vs p)."""

from __future__ import annotations

from repro.experiments.figure3 import run as run_figure3
from repro.experiments.figure6 import run as run_figure6


def test_figure6_curves(benchmark, bench_cycles):
    """Four buffered r-curves over ten p-values, n=8, m=16."""
    result = benchmark.pedantic(
        run_figure6,
        kwargs={"cycles": bench_cycles, "seed": 7},
        rounds=1,
        iterations=1,
    )
    for (row, column), value in result.measured.items():
        assert 0.0 < value <= 1.1  # small window-edge overshoot at bench strength


def test_figure6_dominates_figure3(bench_cycles):
    """Cross-figure claim: buffering never hurts utilisation (p = 1)."""
    buffered = run_figure6(cycles=bench_cycles, seed=7)
    unbuffered = run_figure3(cycles=bench_cycles, seed=7)
    for r in (8, 12, 16):
        assert (
            buffered.measured[(f"r={r}", "p=1")]
            >= unbuffered.measured[(f"r={r}", "p=1")] * 0.97
        )
