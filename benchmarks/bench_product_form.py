"""Benchmark: regenerate the Section 6 product-form comparison."""

from __future__ import annotations

from repro.experiments.product_form import (
    max_delay_discrepancy,
    max_ebw_pessimism,
    run as run_product_form,
)


def test_product_form_grid(benchmark, bench_cycles):
    """Machine vs geometric-machine vs MVA over the Section 6 grid."""
    result = benchmark.pedantic(
        run_product_form,
        kwargs={"cycles": bench_cycles, "seed": 7},
        rounds=1,
        iterations=1,
    )
    # Direction: exponential side pessimistic; magnitude: the paper's
    # ">25%" reproduces on the queueing-delay metric.
    assert max_ebw_pessimism(result) > 0.10 * 100 / 100  # > 0.1%
    assert max_delay_discrepancy(result) > 25.0
