"""Benchmarks: the parallel replication pool path and the result cache.

Perf regressions in :mod:`repro.parallel` would silently erase the
speedups every scaled-up workload depends on, so the pool dispatch, the
serial fast path they must beat, and cache hit latency are each pinned
here at reduced cycles (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.des.replications import replicate
from repro.parallel import EbwTask, ParallelReplicator, ResultCache

CONFIG = SystemConfig(8, 8, 8)
REPLICATIONS = 4
BENCH_PARALLEL_CYCLES = 2_000
"""Short runs: these benches time dispatch overhead, not the simulator."""


def test_replicate_serial_reference(benchmark):
    """Serial baseline the pool path is compared against."""
    task = EbwTask(CONFIG, cycles=BENCH_PARALLEL_CYCLES)
    result = benchmark(
        lambda: replicate(task, replications=REPLICATIONS, base_seed=1)
    )
    assert result.replications == REPLICATIONS


def test_parallel_replicator_pool(benchmark):
    """Pool dispatch (includes worker startup; dominated by it here)."""
    task = EbwTask(CONFIG, cycles=BENCH_PARALLEL_CYCLES)
    replicator = ParallelReplicator(max_workers=2)
    result = benchmark(
        lambda: replicator.run(task, replications=REPLICATIONS, base_seed=1)
    )
    assert result.replications == REPLICATIONS


def test_cache_hit_latency(benchmark, tmp_path):
    """A warm cache lookup must stay far below one simulation."""
    cache = ResultCache(cache_dir=tmp_path, version_tag="bench")
    payload = {"experiment_id": "bench", "kwargs": {"cycles": 1}}
    cache.store(payload, {"measured": [["r=1", "c=1", 1.0]] * 64})
    value = benchmark(lambda: cache.lookup(payload))
    assert value is not None


def test_cache_store_latency(benchmark, tmp_path):
    """Atomic store cost (canonical hash + temp file + rename)."""
    cache = ResultCache(cache_dir=tmp_path, version_tag="bench")
    payload = {"experiment_id": "bench-store", "kwargs": {"cycles": 1}}
    value = {"measured": [["r=1", "c=1", 1.0]] * 64}
    benchmark(lambda: cache.store(payload, value))
