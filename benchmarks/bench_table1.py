"""Benchmark: regenerate Table 1 (exact chain, priority to memories)."""

from __future__ import annotations

from repro.experiments.table1 import run as run_table1


def test_table1_grid(benchmark):
    """Full 4x4 grid of exact-chain evaluations."""
    result = benchmark(run_table1)
    # The artefact must stay digit-exact while we measure its cost.
    assert result.worst_absolute_error() < 1e-3
