"""Benchmark: the hot-spot extension experiment."""

from __future__ import annotations

from repro.experiments.hot_spot import degradation_at, run as run_hot_spot


def test_hot_spot_grid(benchmark, bench_cycles):
    """Six systems x five hot-spot fractions."""
    result = benchmark.pedantic(
        run_hot_spot,
        kwargs={"cycles": bench_cycles, "seed": 7},
        rounds=1,
        iterations=1,
    )
    # Concentrating half the traffic on one module must cost EBW, and
    # buffering must soften the loss.
    unbuffered = degradation_at(result, "8x8 r=8 unbuffered", 0.5)
    buffered = degradation_at(result, "8x8 r=8 buffered", 0.5)
    assert unbuffered > 0.2
    assert buffered < unbuffered
