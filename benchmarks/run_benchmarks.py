#!/usr/bin/env python
"""Record kernel and figure timings in a stable JSON schema.

The benchmark trajectory file (``BENCH_kernels.json``) gives future PRs
a perf baseline: CI runs this script on every build and uploads the JSON
as an artifact, so a hot-path regression shows up as a ratio change
between two artifacts rather than an anecdote.

Usage::

    python benchmarks/run_benchmarks.py --json BENCH_kernels.json
    python benchmarks/run_benchmarks.py --json out.json --quick
    python benchmarks/run_benchmarks.py --json out.json --compare BENCH_kernels.json

Schema (``repro-bench-kernels@4``)::

    {
      "schema": "repro-bench-kernels@4",
      "python": "3.12.x ...",
      "parameters": {"cycles": ..., "repeat": ..., "warmup": ...,
                     "figure_cycles": ...},
      "results": [{"name": ..., "seconds": ..., "mean": ...,
                   "meta": {...}}, ...],
      "speedups": {"<pair>": <reference seconds / fast seconds>, ...}
    }

``results`` names are stable identifiers; every benchmark runs
``--warmup`` untimed iterations first (cache/allocator/JIT effects land
there, not in the measurement), then ``--repeat`` timed ones.
``seconds`` is the minimum timed run (the low-noise signal the compare
gate reads) and ``mean`` the average (the dispersion hint: a mean far
above the min means a noisy host).  Timings are machine-dependent; the
*speedups* are the portable signal.  Batch-kernel fleet entries carry
the array backend in their ``meta`` (``"backend"``), and when the
optional numba/cupy backends are importable the fleet block grows
``batch_fleet_batch_<backend>`` entries timing the identical fleet on
that substrate.

``--compare OLD.json`` prints a per-benchmark speedup/regression table
against a previously written report and exits with status 4 when any
same-parameter benchmark slowed down - or any speedup ratio dropped -
by more than the ``--threshold`` fraction (default 0.25, i.e. 25%).
Reports with different parameters (e.g. a
``--quick`` run against the full baseline) compare *nothing* - every
row prints "skipped (parameters differ)", because neither raw seconds
nor the fleet speedup ratios are comparable across run sizes.  Compare
like with like: quick runs against the committed quick baseline
(``BENCH_kernels_quick.json``, which is what CI does), full runs
against ``BENCH_kernels.json``.  ``--compare-only`` skips benchmarking
and compares an already-written ``--json`` report.

The ``batch_fleet_*`` entries time one figure2-shaped replication fleet
(the (16, 16) r = 8 grid point under many seeds) through all three
kernels; the ``buffered_fleet_*`` entries time the same fleet over the
buffered machine (fast vs batch, plus a latency-collecting batch leg
exercising the quantile sketch).  The batch entries require the
optional numpy extra and are skipped (with a warning) when it is
missing.

The ``sweep_*`` entries time the distributed sweep service itself:
``sweep_workers_{1,2,4,8}`` run figure2 end-to-end over real
subprocess workers (the scaling curve), ``sweep_cache_{cold,warm}``
run the same sweep twice against one result store (the ``warm``
leg is served entirely from the coordinator's pre-lease probe -
the ``warm_cache_collapse`` speedup), and
``sweep_plan_{affine,contiguous}`` drive a fragmented
interleaved-shape batch grid through loopback workers under both
planner modes (the ``affine_vs_contiguous`` speedup: fleet-affine
leases keep batchable rows in one lockstep call).

The ``packed_sweep_*`` entries (schema @4) time fleet packing itself:
a figure2-shaped shape-fragmented grid - every (n, m) system crossed
with several access ratios, 30 replications per point - executed as
one shape-packed super-fleet call (``packed_sweep_packed``) versus one
homogeneous fleet per shape (``packed_sweep_fragmented``); the
``packed_vs_fragmented`` speedup is the packing contract's wall-clock
claim.  When optional backends are importable the block grows
``packed_sweep_packed_<backend>`` entries timing the identical packed
super-fleet on that substrate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable

from repro.bus import simulate
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.workloads.spec import HotSpotWorkload

SCHEMA = "repro-bench-kernels@4"


def best_of(
    repeat: int, func: Callable[[], object], warmup: int = 0
) -> tuple[float, float]:
    """``(min, mean)`` wall-clock seconds over ``repeat`` timed runs.

    ``warmup`` untimed invocations run first, so one-off costs (page
    faults, allocator growth, JIT compilation on the numba backend)
    land outside the measurement window.  The minimum is the low-noise
    statistic the regression gate compares; the mean travels alongside
    as a dispersion hint.
    """
    for _ in range(warmup):
        func()
    timings = []
    for _ in range(repeat):
        started = time.perf_counter()
        func()
        timings.append(time.perf_counter() - started)
    return min(timings), sum(timings) / len(timings)


def _entry(name: str, timing: tuple[float, float], meta: dict) -> dict:
    """One schema-@3 result entry from a :func:`best_of` measurement."""
    seconds, mean = timing
    return {"name": name, "seconds": seconds, "mean": mean, "meta": meta}


def kernel_pairs():
    """The benchmarked (name, config, workload) kernel comparisons."""
    uniform = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS)
    yield "unbuffered_8x16_r8", uniform, None
    yield "buffered_8x16_r8", uniform.with_buffers(), None
    yield (
        "hot_spot_8x16_r8",
        uniform,
        HotSpotWorkload(hot_fraction=0.3),
    )
    yield (
        "partial_load_8x16_r8_p05",
        SystemConfig(8, 16, 8, request_probability=0.5,
                     priority=Priority.PROCESSORS),
        None,
    )


def time_simulation(
    config, workload, cycles: int, kernel: str
) -> Callable[[], object]:
    from repro.parallel.workers import SimulationCase, run_case

    def run():
        return run_case(
            SimulationCase(config, cycles, seed=1, workload=workload,
                           kernel=kernel)
        )

    return run


FLEET_CONFIG = SystemConfig(16, 16, 8, priority=Priority.PROCESSORS)
"""The figure2 (n, m) = (16, 16), r = 8 grid point the fleet benchmark
replicates under many seeds."""


def time_fleet(
    kernel: str,
    rows: int,
    cycles: int,
    config: SystemConfig = FLEET_CONFIG,
    collect_latency: bool = False,
    backend: str = "numpy",
) -> Callable[[], object]:
    """One whole replication fleet under ``kernel`` (and ``backend``).

    The batch kernel runs the fleet as a single lockstep call
    (:func:`repro.parallel.fleet.run_fleet`) on the selected array
    backend; the exact kernels run the same cases one by one - which is
    precisely the comparison the fleet-aggregation layer exists to win.
    """
    from repro.parallel.workers import SimulationCase, run_case

    cases = [
        SimulationCase(
            config, cycles, seed, kernel=kernel,
            collect_latency=collect_latency, backend=backend,
        )
        for seed in range(rows)
    ]

    if kernel == "batch":
        from repro.parallel.fleet import run_fleet

        def run():
            return run_fleet(cases)

    else:

        def run():
            return [run_case(case) for case in cases]

    return run


def compare_reports(old: dict, new: dict, threshold: float = 0.25):
    """Per-benchmark comparison of two report payloads.

    Returns ``(lines, regressions)``: a printable table and the names
    that regressed - a same-parameter benchmark more than ``threshold``
    slower, or a speedup ratio more than ``threshold`` lower.  Entries
    whose ``meta`` parameters differ are skipped (their seconds are not
    comparable), and when the two reports' global ``parameters`` blocks
    differ the speedup section is skipped too: ratios like the fleet
    speedups depend on fleet size, so a ``--quick`` run compared
    against a full baseline must warn about nothing rather than flag
    phantom regressions.
    """
    lines = [
        f"{'benchmark':<42} {'old':>9} {'new':>9} {'ratio':>7}  status"
    ]
    regressions: list[str] = []
    old_results = {entry["name"]: entry for entry in old.get("results", ())}
    for entry in new.get("results", ()):
        name = entry["name"]
        previous = old_results.get(name)
        if previous is None:
            lines.append(f"{name:<42} {'-':>9} {entry['seconds']:>9.3f} {'-':>7}  new")
            continue
        if previous.get("meta") != entry.get("meta"):
            lines.append(
                f"{name:<42} {previous['seconds']:>9.3f} "
                f"{entry['seconds']:>9.3f} {'-':>7}  skipped (parameters differ)"
            )
            continue
        ratio = entry["seconds"] / previous["seconds"]
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append(name)
        elif ratio < 1.0 - threshold:
            status = "improved"
        else:
            status = "ok"
        lines.append(
            f"{name:<42} {previous['seconds']:>9.3f} "
            f"{entry['seconds']:>9.3f} {ratio:>6.2f}x  {status}"
        )
    # Benchmarks the baseline had but this run lost (e.g. batch entries
    # skipped because numpy went missing) are regressions too: a
    # vanished benchmark could otherwise mask a real slowdown forever.
    new_names = {entry["name"] for entry in new.get("results", ())}
    for name in old_results:
        if name not in new_names:
            lines.append(
                f"{name:<42} {old_results[name]['seconds']:>9.3f} "
                f"{'-':>9} {'-':>7}  MISSING from new report"
            )
            regressions.append(name)
    old_speedups = old.get("speedups", {})
    parameters_match = old.get("parameters") == new.get("parameters")
    for key, value in sorted(new.get("speedups", {}).items()):
        previous = old_speedups.get(key)
        name = f"speedup:{key}"
        if previous is None or previous <= 0:
            lines.append(f"{name:<42} {'-':>9} {value:>8.2f}x {'-':>7}  new")
            continue
        if not parameters_match:
            lines.append(
                f"{name:<42} {previous:>8.2f}x {value:>8.2f}x {'-':>7}  "
                "skipped (parameters differ)"
            )
            continue
        ratio = value / previous
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            regressions.append(name)
        elif ratio > 1.0 + threshold:
            status = "improved"
        else:
            status = "ok"
        lines.append(
            f"{name:<42} {previous:>8.2f}x {value:>8.2f}x "
            f"{ratio:>6.2f}x  {status}"
        )
    return lines, regressions


def time_sweep_service(workers: int, cycles: int) -> Callable[[], object]:
    """Figure2 end-to-end through the sweep service over ``workers``
    real subprocess workers, cache disabled (pure scheduling signal)."""
    import dataclasses

    from repro.scenarios.registry import get_scenario
    from repro.service.coordinator import run_service

    spec = dataclasses.replace(get_scenario("figure2"), cycles=cycles)

    def run():
        return run_service(
            spec, workers=workers, kernel="fast", cache_enabled=False
        )

    return run


def time_cached_sweep(store: str, cycles: int) -> Callable[[], object]:
    """The same figure2 sweep against one shared result store: the
    first call populates it, every later call is resolved entirely by
    the coordinator's pre-lease probe."""
    import dataclasses

    from repro.scenarios.registry import get_scenario
    from repro.service.coordinator import run_service

    spec = dataclasses.replace(get_scenario("figure2"), cycles=cycles)

    def run():
        return run_service(
            spec,
            workers=2,
            kernel="fast",
            cache_enabled=True,
            cache_dir=store,
        )

    return run


def time_planned_sweep(
    plan_mode: str, replications: int, cycles: int
) -> Callable[[], object]:
    """A fragmented batch grid through loopback workers under one
    planner mode.

    The grid interleaves fleet shapes (the ``buffered`` axis varies
    fastest), so contiguous leases split every batchable group across
    lease boundaries while affine leases reunite them into single
    lockstep batch calls - the wall-clock difference is the planner's
    whole value proposition.
    """
    from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec
    from repro.service.coordinator import Coordinator
    from repro.service.transports import LoopbackTransport

    spec = ScenarioSpec(
        name="bench-fragmented-grid",
        base={"processors": 16, "memories": 16, "memory_cycle_ratio": 8},
        grid=(
            GridAxis("request_probability", (0.25, 0.5, 0.75, 1.0)),
            GridAxis("buffered", (False, True)),
        ),
        cycles=cycles,
        plan=ReplicationPlan(replications=replications, base_seed=7),
        description="interleaved fleet shapes for planner benchmarks",
    )

    def run():
        coordinator = Coordinator(
            spec,
            [LoopbackTransport(f"w{index}") for index in range(2)],
            kernel="batch",
            plan_mode=plan_mode,
            cache_enabled=False,
        )
        return coordinator.run()

    return run


PACKED_GRID_SYSTEMS = ((4, 4), (8, 8), (16, 16))
"""The figure2 (n, m) systems of the shape-fragmented packing grid."""

PACKED_GRID_RATIOS = (2, 4, 8, 16, 24)
"""Access ratios crossed with the systems: 15 distinct fleet shapes."""


def time_packed_sweep(
    pack: bool, replications: int, cycles: int, backend: str = "numpy"
) -> Callable[[], object]:
    """The figure2-shaped fragmented grid as one grouping or the other.

    Every (n, m) system crossed with every access ratio, ``replications``
    seeds per point: 15 distinct shapes that share the pack fields.
    ``pack=True`` runs the whole grid as one padded super-fleet batch
    call; ``pack=False`` runs one homogeneous lockstep fleet per shape.
    Identical bytes either way (the packing contract) - the timing gap
    is the per-call overhead packing exists to amortize.
    """
    from repro.parallel.fleet import run_fleet
    from repro.parallel.workers import SimulationCase

    cases = [
        SimulationCase(
            SystemConfig(n, m, ratio, priority=Priority.PROCESSORS),
            cycles,
            seed,
            kernel="batch",
            backend=backend,
        )
        for n, m in PACKED_GRID_SYSTEMS
        for ratio in PACKED_GRID_RATIOS
        for seed in range(replications)
    ]

    def run():
        return run_fleet(cases, pack=pack)

    return run


def time_figure2(cycles: int, kernel: str) -> Callable[[], object]:
    import dataclasses

    from repro.scenarios.execute import run_scenario
    from repro.scenarios.registry import get_scenario

    spec = dataclasses.replace(get_scenario("figure2"), cycles=cycles)

    def run():
        return run_scenario(spec, kernel=kernel)

    return run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the simulation kernels and the figure2 scenario, "
        "writing a stable-schema JSON perf baseline."
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_kernels.json",
        help="output file (default BENCH_kernels.json)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=100_000,
        metavar="N",
        help="simulated cycles per kernel benchmark (default 100000)",
    )
    parser.add_argument(
        "--figure-cycles",
        type=int,
        default=4_000,
        metavar="N",
        help="cycles per figure2 scenario unit (default 4000)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        metavar="K",
        help="timed runs per benchmark; min and mean are recorded "
        "(default 3)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        metavar="K",
        help="untimed warm-up runs before the timed repeats (default 1; "
        "the expensive reference fleet leg always skips warm-up, and "
        "JIT-backend legs always take at least one)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: fewer cycles, single repetition",
    )
    parser.add_argument(
        "--compare",
        metavar="OLD.json",
        help="after running, print a speedup/regression table against a "
        "previous report and exit 4 on a regression beyond --threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="regression tolerance for --compare as a fraction "
        "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--compare-only",
        action="store_true",
        help="with --compare: skip benchmarking and compare the existing "
        "--json report against OLD.json (e.g. a CI compare step reusing "
        "the timings the benchmark step just wrote)",
    )
    args = parser.parse_args(argv)
    if args.compare_only:
        if not args.compare:
            parser.error("--compare-only requires --compare OLD.json")
        with open(args.json, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return _compare_and_report(args.compare, payload, args.threshold)
    if args.warmup < 0:
        parser.error("--warmup must be >= 0")
    cycles = 20_000 if args.quick else args.cycles
    figure_cycles = 1_500 if args.quick else args.figure_cycles
    repeat = 1 if args.quick else args.repeat
    warmup = args.warmup
    fleet_rows = 64 if args.quick else 512
    fleet_cycles = 800 if args.quick else 2_400

    results = []
    speedups = {}
    for name, config, workload in kernel_pairs():
        pair = {}
        for kernel in ("reference", "fast"):
            timing = best_of(
                repeat, time_simulation(config, workload, cycles, kernel),
                warmup=warmup,
            )
            pair[kernel] = timing[0]
            results.append(
                _entry(
                    f"kernel_{kernel}_{name}",
                    timing,
                    {
                        "cycles": cycles,
                        "kernel": kernel,
                        "config": config.describe(),
                        "workload": workload.describe() if workload else "uniform",
                    },
                )
            )
        speedups[name] = pair["reference"] / pair["fast"]
        print(
            f"{name}: reference {pair['reference']:.3f}s, "
            f"fast {pair['fast']:.3f}s, speedup {speedups[name]:.2f}x",
            file=sys.stderr,
        )
    for kernel in ("reference", "fast"):
        timing = best_of(
            1, time_figure2(figure_cycles, kernel), warmup=warmup
        )
        results.append(
            _entry(
                f"scenario_figure2_{kernel}",
                timing,
                {"cycles": figure_cycles, "kernel": kernel},
            )
        )
        print(f"scenario_figure2_{kernel}: {timing[0]:.3f}s", file=sys.stderr)
    reference, fast = results[-2]["seconds"], results[-1]["seconds"]
    speedups["scenario_figure2"] = reference / fast

    # Fleet benchmark: the same figure2-shaped replication block through
    # every kernel; the batch entries need the optional numpy extra.
    from repro.bus.batch import numpy_available

    fleet_kernels = ["reference", "fast"]
    if numpy_available():
        fleet_kernels.append("batch")
    else:
        print(
            "warning: numpy unavailable - skipping batch_fleet_batch "
            "(install the [batch] extra)",
            file=sys.stderr,
        )
    if "batch" in fleet_kernels:
        # Untimed warm-up: the first batch call pays one-off numpy
        # bit-generator/allocator setup that would otherwise pollute
        # the timed leg.
        time_fleet("batch", 8, 200)()
    fleet_seconds = {}
    for kernel in fleet_kernels:
        # The reference leg takes ~30 s per run, too long to repeat
        # (and to warm up); the cheap legs get best-of-2 to shave
        # scheduler noise.  Meta records each leg's repeat so
        # --compare only matches like runs.
        fleet_repeat = 1 if kernel == "reference" else 2
        meta = {
            "rows": fleet_rows,
            "cycles": fleet_cycles,
            "kernel": kernel,
            "config": FLEET_CONFIG.describe(),
            "repeat": fleet_repeat,
        }
        if kernel == "batch":
            meta["backend"] = "numpy"
        timing = best_of(
            fleet_repeat, time_fleet(kernel, fleet_rows, fleet_cycles),
            warmup=0 if kernel == "reference" else warmup,
        )
        fleet_seconds[kernel] = timing[0]
        results.append(_entry(f"batch_fleet_{kernel}", timing, meta))
        print(f"batch_fleet_{kernel}: {timing[0]:.3f}s", file=sys.stderr)
    if "batch" in fleet_seconds:
        speedups["batch_fleet_vs_fast"] = (
            fleet_seconds["fast"] / fleet_seconds["batch"]
        )
        speedups["batch_fleet_vs_reference"] = (
            fleet_seconds["reference"] / fleet_seconds["batch"]
        )
        print(
            f"batch fleet speedup: {speedups['batch_fleet_vs_fast']:.2f}x "
            f"over fast, {speedups['batch_fleet_vs_reference']:.2f}x over "
            "reference",
            file=sys.stderr,
        )

    # Per-backend fleet legs: the identical batch fleet on every
    # optional array substrate importable here.  A missing backend is
    # skipped with a warning naming its extra - never silently retimed
    # on numpy - so the baseline only ever contains entries this host
    # actually produced.
    if "batch" in fleet_seconds:
        from repro.bus.backends import get_backend

        for backend_name in ("numba", "numba-parallel", "cupy"):
            backend = get_backend(backend_name)
            if not backend.available():
                print(
                    f"warning: {backend_name} unavailable - skipping "
                    f"batch_fleet_batch_{backend_name} (install the "
                    f"[{backend.extra}] extra)",
                    file=sys.stderr,
                )
                continue
            # At least one warm-up run: the numba leg's first call pays
            # the JIT compile, which must stay outside the measurement.
            timing = best_of(
                2,
                time_fleet(
                    "batch", fleet_rows, fleet_cycles, backend=backend_name
                ),
                warmup=max(warmup, 1),
            )
            results.append(
                _entry(
                    f"batch_fleet_batch_{backend_name}",
                    timing,
                    {
                        "rows": fleet_rows,
                        "cycles": fleet_cycles,
                        "kernel": "batch",
                        "backend": backend_name,
                        "config": FLEET_CONFIG.describe(),
                        "repeat": 2,
                    },
                )
            )
            key = f"{backend_name}_fleet_vs_numpy"
            speedups[key] = fleet_seconds["batch"] / timing[0]
            print(
                f"batch_fleet_batch_{backend_name}: {timing[0]:.3f}s "
                f"({speedups[key]:.2f}x over the numpy backend)",
                file=sys.stderr,
            )

    # Buffered fleet: the same replication block over the buffered
    # machine - the circular-queue hot path the batch kernel vectorizes.
    # The reference leg is omitted (minutes per run at full size); the
    # fast kernel is the meaningful baseline.  The latency leg times the
    # per-row quantile sketch on top of the plain batch run.
    buffered_config = FLEET_CONFIG.with_buffers()
    if "batch" in fleet_kernels:
        buffered_legs = [("fast", False), ("batch", False), ("batch", True)]
    else:
        buffered_legs = [("fast", False)]
    buffered_seconds = {}
    for kernel, latency in buffered_legs:
        leg = f"{kernel}_latency" if latency else kernel
        meta = {
            "rows": fleet_rows,
            "cycles": fleet_cycles,
            "kernel": kernel,
            "collect_latency": latency,
            "config": buffered_config.describe(),
            "repeat": 2,
        }
        if kernel == "batch":
            meta["backend"] = "numpy"
        timing = best_of(
            2,
            time_fleet(
                kernel, fleet_rows, fleet_cycles,
                config=buffered_config, collect_latency=latency,
            ),
            warmup=warmup,
        )
        buffered_seconds[leg] = timing[0]
        results.append(_entry(f"buffered_fleet_{leg}", timing, meta))
        print(f"buffered_fleet_{leg}: {timing[0]:.3f}s", file=sys.stderr)
    if "batch" in buffered_seconds:
        speedups["buffered_fleet_vs_fast"] = (
            buffered_seconds["fast"] / buffered_seconds["batch"]
        )
        speedups["buffered_fleet_latency_vs_fast"] = (
            buffered_seconds["fast"] / buffered_seconds["batch_latency"]
        )
        print(
            "buffered fleet speedup: "
            f"{speedups['buffered_fleet_vs_fast']:.2f}x over fast "
            f"({speedups['buffered_fleet_latency_vs_fast']:.2f}x with "
            "latency sketches)",
            file=sys.stderr,
        )

    # Sweep-service legs: worker scaling, the warm-cache collapse, and
    # the planner's affine-vs-contiguous lease composition.
    # Full-size sweeps carry enough per-unit work for the scaling
    # curve to reflect scheduling rather than subprocess startup; the
    # quick legs only guard that the service path keeps working.
    sweep_cycles = 400 if args.quick else 20_000
    sweep_seconds = {}
    for workers in (1, 2, 4, 8):
        timing = best_of(
            1, time_sweep_service(workers, sweep_cycles), warmup=0
        )
        sweep_seconds[workers] = timing[0]
        results.append(
            _entry(
                f"sweep_workers_{workers}",
                timing,
                {
                    "scenario": "figure2",
                    "workers": workers,
                    "cycles": sweep_cycles,
                    "kernel": "fast",
                    "repeat": 1,
                },
            )
        )
        print(
            f"sweep_workers_{workers}: {timing[0]:.3f}s", file=sys.stderr
        )
    speedups["sweep_workers_4_vs_1"] = sweep_seconds[1] / sweep_seconds[4]
    print(
        f"sweep worker scaling: {speedups['sweep_workers_4_vs_1']:.2f}x "
        "at 4 workers",
        file=sys.stderr,
    )

    import tempfile

    with tempfile.TemporaryDirectory() as store:
        # The cold leg must run exactly once into the fresh store (any
        # warm-up or repeat would pre-populate it); the warm leg is
        # idempotent and gets best-of-2.
        cold = best_of(1, time_cached_sweep(store, sweep_cycles), warmup=0)
        warm = best_of(2, time_cached_sweep(store, sweep_cycles), warmup=0)
    cache_meta = {
        "scenario": "figure2",
        "workers": 2,
        "cycles": sweep_cycles,
        "kernel": "fast",
    }
    results.append(
        _entry(
            "sweep_cache_cold", cold, {**cache_meta, "cache": "cold",
                                       "repeat": 1}
        )
    )
    results.append(
        _entry(
            "sweep_cache_warm", warm, {**cache_meta, "cache": "warm",
                                       "repeat": 2}
        )
    )
    speedups["warm_cache_collapse"] = cold[0] / warm[0]
    print(
        f"sweep_cache_cold: {cold[0]:.3f}s, sweep_cache_warm: "
        f"{warm[0]:.3f}s (collapse "
        f"{speedups['warm_cache_collapse']:.2f}x)",
        file=sys.stderr,
    )

    if numpy_available():
        plan_replications = 4 if args.quick else 16
        plan_cycles = 300 if args.quick else 1_200
        plan_seconds = {}
        for plan_mode in ("affine", "contiguous"):
            timing = best_of(
                2,
                time_planned_sweep(
                    plan_mode, plan_replications, plan_cycles
                ),
                warmup=warmup,
            )
            plan_seconds[plan_mode] = timing[0]
            results.append(
                _entry(
                    f"sweep_plan_{plan_mode}",
                    timing,
                    {
                        "plan_mode": plan_mode,
                        "replications": plan_replications,
                        "cycles": plan_cycles,
                        "kernel": "batch",
                        "workers": 2,
                        "repeat": 2,
                    },
                )
            )
            print(
                f"sweep_plan_{plan_mode}: {timing[0]:.3f}s",
                file=sys.stderr,
            )
        speedups["affine_vs_contiguous"] = (
            plan_seconds["contiguous"] / plan_seconds["affine"]
        )
        print(
            "affine lease planning: "
            f"{speedups['affine_vs_contiguous']:.2f}x over contiguous "
            "on the fragmented grid",
            file=sys.stderr,
        )
    else:
        print(
            "warning: numpy unavailable - skipping sweep_plan_* "
            "(install the [batch] extra)",
            file=sys.stderr,
        )

    # Fleet-packing legs: the shape-fragmented grid as one packed
    # super-fleet call versus one homogeneous fleet per shape.
    packed_replications = 8 if args.quick else 30
    packed_cycles = 400 if args.quick else 1_200
    if numpy_available():
        packed_seconds = {}
        for leg, pack in (("packed", True), ("fragmented", False)):
            timing = best_of(
                2,
                time_packed_sweep(pack, packed_replications, packed_cycles),
                warmup=warmup,
            )
            packed_seconds[leg] = timing[0]
            results.append(
                _entry(
                    f"packed_sweep_{leg}",
                    timing,
                    {
                        "pack": pack,
                        "replications": packed_replications,
                        "cycles": packed_cycles,
                        "kernel": "batch",
                        "backend": "numpy",
                        "repeat": 2,
                    },
                )
            )
            print(
                f"packed_sweep_{leg}: {timing[0]:.3f}s", file=sys.stderr
            )
        speedups["packed_vs_fragmented"] = (
            packed_seconds["fragmented"] / packed_seconds["packed"]
        )
        print(
            "fleet packing: "
            f"{speedups['packed_vs_fragmented']:.2f}x over per-shape "
            "fleets on the fragmented grid",
            file=sys.stderr,
        )
        from repro.bus.backends import get_backend

        for backend_name in ("numba", "numba-parallel", "cupy"):
            backend = get_backend(backend_name)
            if not backend.available():
                print(
                    f"warning: {backend_name} unavailable - skipping "
                    f"packed_sweep_packed_{backend_name} (install the "
                    f"[{backend.extra}] extra)",
                    file=sys.stderr,
                )
                continue
            timing = best_of(
                2,
                time_packed_sweep(
                    True,
                    packed_replications,
                    packed_cycles,
                    backend=backend_name,
                ),
                warmup=max(warmup, 1),
            )
            results.append(
                _entry(
                    f"packed_sweep_packed_{backend_name}",
                    timing,
                    {
                        "pack": True,
                        "replications": packed_replications,
                        "cycles": packed_cycles,
                        "kernel": "batch",
                        "backend": backend_name,
                        "repeat": 2,
                    },
                )
            )
            key = f"packed_sweep_{backend_name}_vs_numpy"
            speedups[key] = packed_seconds["packed"] / timing[0]
            print(
                f"packed_sweep_packed_{backend_name}: {timing[0]:.3f}s "
                f"({speedups[key]:.2f}x over the numpy backend)",
                file=sys.stderr,
            )
    else:
        print(
            "warning: numpy unavailable - skipping packed_sweep_* "
            "(install the [batch] extra)",
            file=sys.stderr,
        )

    payload = {
        "schema": SCHEMA,
        "python": sys.version,
        "parameters": {
            "cycles": cycles,
            "figure_cycles": figure_cycles,
            "repeat": repeat,
            "warmup": warmup,
            "fleet_rows": fleet_rows,
            "fleet_cycles": fleet_cycles,
            "sweep_cycles": sweep_cycles,
            "packed_replications": packed_replications,
            "packed_cycles": packed_cycles,
        },
        "results": results,
        "speedups": speedups,
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.json}", file=sys.stderr)
    if args.compare:
        return _compare_and_report(args.compare, payload, args.threshold)
    return 0


def _compare_and_report(
    baseline_path: str, payload: dict, threshold: float = 0.25
) -> int:
    """Print the comparison table; 4 when any regression crossed
    ``threshold`` (a fraction, e.g. 0.25 for 25%)."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        old = json.load(handle)
    lines, regressions = compare_reports(old, payload, threshold=threshold)
    print(f"comparison against {baseline_path}:")
    for line in lines:
        print(line)
    if regressions:
        print(
            f"{len(regressions)} regression(s) beyond {threshold:.0%}: "
            + ", ".join(regressions),
            file=sys.stderr,
        )
        return 4
    return 0


if __name__ == "__main__":
    sys.exit(main())
