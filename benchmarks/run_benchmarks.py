#!/usr/bin/env python
"""Record kernel and figure timings in a stable JSON schema.

The benchmark trajectory file (``BENCH_kernels.json``) gives future PRs
a perf baseline: CI runs this script on every build and uploads the JSON
as an artifact, so a hot-path regression shows up as a ratio change
between two artifacts rather than an anecdote.

Usage::

    python benchmarks/run_benchmarks.py --json BENCH_kernels.json
    python benchmarks/run_benchmarks.py --json out.json --quick

Schema (``repro-bench-kernels@1``)::

    {
      "schema": "repro-bench-kernels@1",
      "python": "3.12.x ...",
      "parameters": {"cycles": ..., "repeat": ..., "figure_cycles": ...},
      "results": [{"name": ..., "seconds": ..., "meta": {...}}, ...],
      "speedups": {"<pair>": <reference seconds / fast seconds>, ...}
    }

``results`` names are stable identifiers; ``seconds`` is the best of
``--repeat`` runs (wall clock, :func:`time.perf_counter`).  Timings are
machine-dependent; the *speedups* are the portable signal.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable

from repro.bus import simulate
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.workloads.spec import HotSpotWorkload

SCHEMA = "repro-bench-kernels@1"


def best_of(repeat: int, func: Callable[[], object]) -> float:
    """Minimum wall-clock seconds of ``repeat`` invocations."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def kernel_pairs():
    """The benchmarked (name, config, workload) kernel comparisons."""
    uniform = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS)
    yield "unbuffered_8x16_r8", uniform, None
    yield "buffered_8x16_r8", uniform.with_buffers(), None
    yield (
        "hot_spot_8x16_r8",
        uniform,
        HotSpotWorkload(hot_fraction=0.3),
    )
    yield (
        "partial_load_8x16_r8_p05",
        SystemConfig(8, 16, 8, request_probability=0.5,
                     priority=Priority.PROCESSORS),
        None,
    )


def time_simulation(
    config, workload, cycles: int, kernel: str
) -> Callable[[], object]:
    from repro.parallel.workers import SimulationCase, run_case

    def run():
        return run_case(
            SimulationCase(config, cycles, seed=1, workload=workload,
                           kernel=kernel)
        )

    return run


def time_figure2(cycles: int, kernel: str) -> Callable[[], object]:
    import dataclasses

    from repro.scenarios.execute import run_scenario
    from repro.scenarios.registry import get_scenario

    spec = dataclasses.replace(get_scenario("figure2"), cycles=cycles)

    def run():
        return run_scenario(spec, kernel=kernel)

    return run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the simulation kernels and the figure2 scenario, "
        "writing a stable-schema JSON perf baseline."
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_kernels.json",
        help="output file (default BENCH_kernels.json)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=100_000,
        metavar="N",
        help="simulated cycles per kernel benchmark (default 100000)",
    )
    parser.add_argument(
        "--figure-cycles",
        type=int,
        default=4_000,
        metavar="N",
        help="cycles per figure2 scenario unit (default 4000)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        metavar="K",
        help="runs per benchmark; best is recorded (default 3)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run: fewer cycles, single repetition",
    )
    args = parser.parse_args(argv)
    cycles = 20_000 if args.quick else args.cycles
    figure_cycles = 1_500 if args.quick else args.figure_cycles
    repeat = 1 if args.quick else args.repeat

    results = []
    speedups = {}
    for name, config, workload in kernel_pairs():
        pair = {}
        for kernel in ("reference", "fast"):
            seconds = best_of(
                repeat, time_simulation(config, workload, cycles, kernel)
            )
            pair[kernel] = seconds
            results.append(
                {
                    "name": f"kernel_{kernel}_{name}",
                    "seconds": seconds,
                    "meta": {
                        "cycles": cycles,
                        "kernel": kernel,
                        "config": config.describe(),
                        "workload": workload.describe() if workload else "uniform",
                    },
                }
            )
        speedups[name] = pair["reference"] / pair["fast"]
        print(
            f"{name}: reference {pair['reference']:.3f}s, "
            f"fast {pair['fast']:.3f}s, speedup {speedups[name]:.2f}x",
            file=sys.stderr,
        )
    for kernel in ("reference", "fast"):
        seconds = best_of(1, time_figure2(figure_cycles, kernel))
        results.append(
            {
                "name": f"scenario_figure2_{kernel}",
                "seconds": seconds,
                "meta": {"cycles": figure_cycles, "kernel": kernel},
            }
        )
        print(f"scenario_figure2_{kernel}: {seconds:.3f}s", file=sys.stderr)
    reference, fast = results[-2]["seconds"], results[-1]["seconds"]
    speedups["scenario_figure2"] = reference / fast

    payload = {
        "schema": SCHEMA,
        "python": sys.version,
        "parameters": {
            "cycles": cycles,
            "figure_cycles": figure_cycles,
            "repeat": repeat,
        },
        "results": results,
        "speedups": speedups,
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
