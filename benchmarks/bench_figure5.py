"""Benchmark: regenerate Figure 5 (buffering effect on EBW)."""

from __future__ import annotations

from repro.experiments.figure5 import check_claims, run as run_figure5


def test_figure5_curves(benchmark, bench_cycles):
    """Buffered and unbuffered sweeps plus crossbar references."""
    result = benchmark.pedantic(
        run_figure5,
        kwargs={"cycles": bench_cycles, "seed": 7},
        rounds=1,
        iterations=1,
    )
    checks = check_claims(result)
    assert checks.buffered_dominates_unbuffered
    assert checks.buffered_exceeds_crossbar_somewhere
