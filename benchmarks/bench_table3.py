"""Benchmarks: regenerate Table 3 (priority to processors).

Table 3(a) is the simulation grid (42 cells); the benchmark runs it at
reduced cycle counts.  Table 3(b) is the reduced Markov chain, evaluated
at full fidelity (it is deterministic and fast).
"""

from __future__ import annotations

from repro.experiments.table3 import run_model, run_simulation


def test_table3a_simulation_grid(benchmark, bench_cycles):
    """All 42 simulated cells of Table 3(a) at benchmark strength."""
    result = benchmark.pedantic(
        run_simulation,
        kwargs={"cycles": bench_cycles, "seed": 7},
        rounds=1,
        iterations=1,
    )
    # Even at reduced strength the grid tracks the paper's simulation.
    assert result.worst_relative_error() < 0.10


def test_table3b_model_grid(benchmark):
    """All 42 reduced-chain cells of Table 3(b)."""
    result = benchmark(run_model)
    assert result.worst_absolute_error() < 0.30
