"""Ablation benchmarks: the design choices DESIGN.md calls out.

Each ablation varies one mechanism of the machine and records the EBW
effect, regenerating the paper's design arguments:

* arbitration priority (the Section 3 g' vs g'' comparison);
* tie-break rule (random - hypothesis (h) - vs FCFS);
* buffer depth (the paper fixes 1; deeper buffers are the natural
  extension);
* request distribution (hypothesis (e) uniform vs hot-spot).
"""

from __future__ import annotations

from repro.bus import MultiplexedBusSystem, simulate
from repro.core.config import SystemConfig
from repro.core.policy import Priority, TieBreak
from repro.des.rng import StreamFactory
from repro.workloads.generators import HotSpotTargets

BASE = SystemConfig(8, 8, 8, priority=Priority.PROCESSORS)


def test_ablation_priority(benchmark, bench_cycles):
    """g' vs g'': priority to processors must win (Section 3)."""

    def run_pair():
        g_prime = simulate(BASE, cycles=bench_cycles, seed=5).ebw
        g_second = simulate(
            SystemConfig(8, 8, 8, priority=Priority.MEMORIES),
            cycles=bench_cycles,
            seed=5,
        ).ebw
        return g_prime, g_second

    g_prime, g_second = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert g_prime >= g_second * 0.98


def test_ablation_tie_break(benchmark, bench_cycles):
    """Random vs FCFS intra-class arbitration: a second-order effect."""

    def run_pair():
        random_tb = simulate(BASE, cycles=bench_cycles, seed=5).ebw
        fcfs = simulate(
            SystemConfig(8, 8, 8, tie_break=TieBreak.FCFS),
            cycles=bench_cycles,
            seed=5,
        ).ebw
        return random_tb, fcfs

    random_tb, fcfs = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    # The tie-break rule must not change EBW by more than a few percent.
    assert abs(random_tb - fcfs) / random_tb < 0.05


def test_ablation_buffer_depth(benchmark, bench_cycles):
    """Depth 0 (unbuffered) vs 1 (the paper) vs 4 (extension)."""

    def run_sweep():
        values = {}
        values[0] = simulate(BASE, cycles=bench_cycles, seed=5).ebw
        for depth in (1, 2, 4):
            values[depth] = simulate(
                BASE.with_buffers(depth), cycles=bench_cycles, seed=5
            ).ebw
        return values

    values = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Depth 1 captures most of the buffering gain (Section 6's design).
    assert values[1] >= values[0]
    assert values[4] >= values[1] * 0.98
    gain_first = values[1] - values[0]
    gain_rest = values[4] - values[1]
    assert gain_first >= gain_rest


def test_ablation_hot_spot(benchmark, bench_cycles):
    """Violating hypothesis (e): hot-spot traffic degrades EBW."""

    def run_pair():
        uniform = simulate(BASE, cycles=bench_cycles, seed=5).ebw
        streams = StreamFactory(5)
        hot = MultiplexedBusSystem(
            BASE,
            seed=5,
            targets=HotSpotTargets(
                BASE.memories, streams.get("hot"), hot_fraction=0.5
            ),
        ).run(bench_cycles).ebw
        return uniform, hot

    uniform, hot = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert hot < uniform


def test_ablation_service_distribution(benchmark, bench_cycles):
    """Constant vs geometric access times (Section 6 comparison)."""

    def run_pair():
        config = BASE.with_buffers()
        constant = MultiplexedBusSystem(config, seed=5).run(bench_cycles).ebw
        geometric = (
            MultiplexedBusSystem(config, seed=5, geometric_access_times=True)
            .run(bench_cycles)
            .ebw
        )
        return constant, geometric

    constant, geometric = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert geometric < constant
