"""Shared helpers for the benchmark harness.

Every paper artefact has one benchmark that regenerates it at reduced
statistical strength (fewer simulated cycles than the headline
experiment run, same code path).  ``pytest benchmarks/ --benchmark-only``
therefore provides both a performance regression net and a quick
end-to-end smoke of every table and figure.
"""

from __future__ import annotations

import pytest

# Simulation length used by benchmark-grade experiment runs.  The
# headline numbers in EXPERIMENTS.md use the experiments' defaults
# (100k cycles); benchmarks trade precision for runtime.
BENCH_CYCLES = 8_000


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point every benchmark's result cache at a pytest tmp dir.

    Benchmarks measure compute, so serving (or polluting) the user's
    ``~/.cache/repro-single-bus`` would skew timings and leave litter;
    pytest prunes its tmp dirs automatically, so the fixture cleans up
    after itself.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def bench_cycles() -> int:
    """Reduced simulation length for benchmark runs."""
    return BENCH_CYCLES
