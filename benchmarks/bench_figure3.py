"""Benchmark: regenerate Figure 3 (processor utilisation vs p)."""

from __future__ import annotations

from repro.experiments.figure3 import run as run_figure3


def test_figure3_curves(benchmark, bench_cycles):
    """Four r-curves over ten p-values, unbuffered n=8, m=16."""
    result = benchmark.pedantic(
        run_figure3,
        kwargs={"cycles": bench_cycles, "seed": 7},
        rounds=1,
        iterations=1,
    )
    # Shape checks: utilisation in (0, 1] and decreasing in p for the
    # smallest r (where the bus saturates at heavy load).
    for (row, column), value in result.measured.items():
        assert 0.0 < value <= 1.1  # small window-edge overshoot at bench strength
    r4 = [result.measured[("r=4", f"p={p:g}")] for p in (0.2, 0.6, 1.0)]
    assert r4[0] >= r4[-1]
