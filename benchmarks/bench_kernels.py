"""Microbenchmarks of the computational kernels.

These measure the cost of the building blocks (simulator cycle loops -
reference and fast - chain construction, stationary solve, event engine)
so performance regressions are visible independently of the experiment
wrappers.  The ``*_fast_*`` benchmarks pair one-to-one with the
reference-loop ones; ``benchmarks/run_benchmarks.py`` records the same
pairs (plus the speedup ratios) in ``BENCH_kernels.json`` for CI.
"""

from __future__ import annotations

import pytest

from repro.bus import MultiplexedBusSystem
from repro.bus.kernel import FastBusKernel
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.des.engine import Engine
from repro.markov.occupancy import OccupancyChain
from repro.models.processor_priority import ProcessorPriorityChain
from repro.queueing.mva import solve_mva
from repro.queueing.network import buffered_bus_network


def test_kernel_simulator_cycles(benchmark):
    """Raw cycle throughput of the 8x16 machine (reference loop)."""
    config = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS)
    system = MultiplexedBusSystem(config, seed=1)

    def run_block():
        for _ in range(2_000):
            system.step()
        return system.cycle

    benchmark(run_block)


def test_kernel_fast_simulator_cycles(benchmark):
    """Raw cycle throughput of the 8x16 machine (fast kernel)."""
    config = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS)
    kernel = FastBusKernel(config, seed=1)

    def run_block():
        kernel.advance(2_000)
        return kernel.cycle

    benchmark(run_block)


def test_kernel_buffered_simulator_cycles(benchmark):
    """Raw cycle throughput with buffered modules (reference loop)."""
    config = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS, buffered=True)
    system = MultiplexedBusSystem(config, seed=1)

    def run_block():
        for _ in range(2_000):
            system.step()
        return system.cycle

    benchmark(run_block)


def test_kernel_fast_buffered_simulator_cycles(benchmark):
    """Raw cycle throughput with buffered modules (fast kernel)."""
    config = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS, buffered=True)
    kernel = FastBusKernel(config, seed=1)

    def run_block():
        kernel.advance(2_000)
        return kernel.cycle

    benchmark(run_block)


def test_kernel_fast_partial_load_cycles(benchmark):
    """Fast kernel under partial load (think-time wake calendar path)."""
    config = SystemConfig(
        8, 16, 8, request_probability=0.5, priority=Priority.PROCESSORS
    )
    kernel = FastBusKernel(config, seed=1)

    def run_block():
        kernel.advance(2_000)
        return kernel.cycle

    benchmark(run_block)


def test_kernel_occupancy_chain_build_and_solve(benchmark):
    """Build + solve the 16x16 occupancy chain (231 states)."""

    def build():
        chain = OccupancyChain(16, 16, service_width=9)
        return chain.expected_completions()

    value = benchmark(build)
    assert 0.0 < value <= 9.0


def test_kernel_reduced_chain_build_and_solve(benchmark):
    """Build + solve the Section 4 chain for n=8, m=16, r=12."""

    def build():
        chain = ProcessorPriorityChain(8, 16, 12)
        return chain.ebw()

    value = benchmark(build)
    assert 0.0 < value <= 7.0


def test_kernel_mva_solve(benchmark):
    """MVA on the 16-memory central-server model, n=16."""
    network = buffered_bus_network(
        SystemConfig(16, 16, 8, priority=Priority.PROCESSORS, buffered=True)
    )
    solution = benchmark(solve_mva, network)
    assert solution.throughput > 0


def test_kernel_event_engine(benchmark):
    """Schedule and drain 10k events through the heap scheduler."""

    def run_events():
        engine = Engine()
        count = 10_000
        for i in range(count):
            engine.schedule(float(i % 97), lambda: None)
        engine.run()
        return engine.processed

    processed = benchmark(run_events)
    assert processed == 10_000


def test_kernel_batch_fleet_cycles(benchmark):
    """Lockstep throughput of a 64-row fleet (batch kernel).

    Measures whole-fleet cycles: divide by 64 for the per-row cost the
    ``batch_fleet_*`` entries of BENCH_kernels.json compare across
    kernels.
    """
    pytest.importorskip("numpy")
    from repro.bus.batch import BatchBusKernel

    config = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS)
    kernel = BatchBusKernel([config] * 64, list(range(64)))

    def run_block():
        kernel.advance(500)
        return kernel.cycle

    benchmark(run_block)


def test_kernel_batch_fleet_cycles_numba(benchmark):
    """The same 64-row fleet on the numba backend (JIT cycle loop).

    Pairs with :func:`test_kernel_batch_fleet_cycles` the way the fast
    benchmarks pair with the reference ones; the one-off JIT compile
    lands in the untimed setup call, not the measurement.
    """
    pytest.importorskip("numpy")
    pytest.importorskip("numba")
    from repro.bus.batch import BatchBusKernel

    config = SystemConfig(8, 16, 8, priority=Priority.PROCESSORS)
    kernel = BatchBusKernel([config] * 64, list(range(64)), backend="numba")
    kernel.advance(1)  # trigger the JIT compile outside the timing loop

    def run_block():
        kernel.advance(500)
        return kernel.cycle

    benchmark(run_block)
