"""Benchmark: regenerate Figure 2 (EBW vs r, both priorities)."""

from __future__ import annotations

from repro.experiments.figure2 import check_claims, run as run_figure2


def test_figure2_curves(benchmark, bench_cycles):
    """Six simulated curves plus three crossbar reference lines."""
    result = benchmark.pedantic(
        run_figure2,
        kwargs={"cycles": bench_cycles, "seed": 7},
        rounds=1,
        iterations=1,
    )
    checks = check_claims(result)
    assert checks.processors_beat_memories
    assert checks.ebw_above_crossbar_at_large_r
