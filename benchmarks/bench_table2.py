"""Benchmark: regenerate Table 2 (combinational model)."""

from __future__ import annotations

from repro.experiments.table2 import run as run_table2


def test_table2_grid(benchmark):
    """Full 4x4 grid of combinational-model evaluations."""
    result = benchmark(run_table2)
    assert result.worst_absolute_error() < 1.1e-3


def test_table2_symmetric_variant(benchmark):
    """The symmetrised variant the paper suggests in Section 5."""
    result = benchmark(run_table2, symmetric=True)
    # Symmetrised output has no printed reference; sanity-check range.
    for (row, column), value in result.measured.items():
        assert 1.0 < value < 5.5
