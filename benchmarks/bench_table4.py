"""Benchmark: regenerate Table 4 (buffered system, 70 cells)."""

from __future__ import annotations

from repro.experiments.table4 import run as run_table4


def test_table4_buffered_grid(benchmark, bench_cycles):
    """All 70 buffered-simulation cells at benchmark strength."""
    result = benchmark.pedantic(
        run_table4,
        kwargs={"cycles": bench_cycles, "seed": 7},
        rounds=1,
        iterations=1,
    )
    assert result.worst_relative_error() < 0.10
