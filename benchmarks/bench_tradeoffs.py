"""Benchmark: the Section 7 design-space searches."""

from __future__ import annotations

from repro.analysis.tradeoffs import (
    crossbar_target,
    find_crossbar_equivalent,
    saturation_limit,
)


def test_tradeoff_crossbar_equivalent_search(benchmark, bench_cycles):
    """Scan m in {10..16} for the 8x8-crossbar-equivalent at r=8."""

    def search():
        return find_crossbar_equivalent(
            processors=8,
            crossbar_size=8,
            memory_options=[10, 12, 14, 16],
            memory_cycle_ratio=8,
            tolerance=0.01,
            cycles=bench_cycles,
            seed=3,
        )

    result = benchmark.pedantic(search, rounds=1, iterations=1)
    assert result.found
    # Section 7: m = 14 attains the 8x8 crossbar at r = 8 (within 1%).
    assert result.config.memories <= 16


def test_tradeoff_buffered_saturation_search(benchmark, bench_cycles):
    """Largest r keeping the buffered 8x8 bus saturated."""

    def search():
        return saturation_limit(
            processors=8,
            memories=8,
            r_options=[2, 4, 6, 8],
            cycles=bench_cycles,
            seed=3,
        )

    limit = benchmark.pedantic(search, rounds=1, iterations=1)
    # Section 7: saturation holds until r approaches min(n, m) = 8.
    assert limit in (4, 6, 8)


def test_tradeoff_crossbar_targets(benchmark):
    """Exact crossbar targets for the sizes the paper quotes."""

    def targets():
        return (
            crossbar_target(8, 8),
            crossbar_target(16, 16),
            crossbar_target(8, 16),
        )

    t8, t16, t8x16 = benchmark(targets)
    assert 4.9 < t8 < 5.0
    assert 9.5 < t16 < 9.7
    assert 6.2 < t8x16 < 6.4
