"""Request-target generators (workload models).

Hypothesis (e) of the paper makes requests independent and uniform over
the ``m`` memory modules; :class:`UniformTargets` implements it and is
the default everywhere.  Two extensions support studies *around* the
paper's assumptions:

* :class:`HotSpotTargets` concentrates a fraction of the traffic on one
  module, quantifying how sensitive the results are to hypothesis (e);
* :class:`TraceTargets` replays a recorded target sequence, enabling
  deterministic regression tests and trace-driven experiments.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.errors import ConfigurationError
from repro.des.rng import RandomStream


class TargetSampler(Protocol):
    """Anything that can produce the next request's target module."""

    def next_target(self, processor: int) -> int:
        """Module index targeted by ``processor``'s next request."""


class UniformTargets:
    """Hypothesis (e): independent, uniform over ``modules``."""

    def __init__(self, modules: int, stream: RandomStream) -> None:
        if modules < 1:
            raise ConfigurationError(f"modules must be >= 1, got {modules}")
        self._modules = modules
        self._stream = stream

    def next_target(self, processor: int) -> int:
        return self._stream.uniform_index(self._modules)


class HotSpotTargets:
    """A fraction ``hot_fraction`` of requests hit ``hot_module``.

    The remaining traffic is uniform over all modules (including the hot
    one), matching the classic hot-spot model of interconnection-network
    studies.  ``hot_fraction = 0`` reduces to :class:`UniformTargets`.
    """

    def __init__(
        self,
        modules: int,
        stream: RandomStream,
        hot_fraction: float,
        hot_module: int = 0,
    ) -> None:
        if modules < 1:
            raise ConfigurationError(f"modules must be >= 1, got {modules}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must lie in [0, 1], got {hot_fraction}"
            )
        if not 0 <= hot_module < modules:
            raise ConfigurationError(
                f"hot_module must name one of the {modules} modules, got {hot_module}"
            )
        self._modules = modules
        self._stream = stream
        self._hot_fraction = hot_fraction
        self._hot_module = hot_module

    def next_target(self, processor: int) -> int:
        if self._stream.bernoulli(self._hot_fraction):
            return self._hot_module
        return self._stream.uniform_index(self._modules)


class TraceTargets:
    """Replays a fixed per-processor target sequence, cycling at the end.

    Useful for byte-for-byte deterministic tests: the same trace always
    produces the same simulation, independent of RNG evolution.
    """

    def __init__(self, traces: Sequence[Sequence[int]], modules: int) -> None:
        if not traces:
            raise ConfigurationError("at least one per-processor trace is required")
        for processor, trace in enumerate(traces):
            if not trace:
                raise ConfigurationError(f"trace for processor {processor} is empty")
            bad = [t for t in trace if not 0 <= t < modules]
            if bad:
                raise ConfigurationError(
                    f"trace for processor {processor} targets missing modules: {bad}"
                )
        self._traces = [list(trace) for trace in traces]
        self._positions = [0] * len(traces)

    def next_target(self, processor: int) -> int:
        if not 0 <= processor < len(self._traces):
            raise ConfigurationError(
                f"no trace recorded for processor {processor}"
            )
        trace = self._traces[processor]
        position = self._positions[processor]
        self._positions[processor] = (position + 1) % len(trace)
        return trace[position]
