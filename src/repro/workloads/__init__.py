"""Workload models: request-target generators and traces."""

from repro.workloads.generators import (
    HotSpotTargets,
    TargetSampler,
    TraceTargets,
    UniformTargets,
)
from repro.workloads.trace import RequestTrace

__all__ = [
    "TargetSampler",
    "UniformTargets",
    "HotSpotTargets",
    "TraceTargets",
    "RequestTrace",
]
