"""Workload models: request-target generators, traces, and specs."""

from repro.workloads.generators import (
    HotSpotTargets,
    TargetSampler,
    TraceTargets,
    UniformTargets,
)
from repro.workloads.spec import (
    HotSpotWorkload,
    RequestMixWorkload,
    TraceWorkload,
    UniformWorkload,
    WorkloadSpec,
    workload_from_payload,
    workload_payload,
)
from repro.workloads.trace import RequestTrace

__all__ = [
    "TargetSampler",
    "UniformTargets",
    "HotSpotTargets",
    "TraceTargets",
    "RequestTrace",
    "WorkloadSpec",
    "UniformWorkload",
    "HotSpotWorkload",
    "TraceWorkload",
    "RequestMixWorkload",
    "workload_payload",
    "workload_from_payload",
]
