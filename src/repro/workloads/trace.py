"""Request trace records and (de)serialisation.

A :class:`RequestTrace` is a compact record of which module each
processor targeted on each successive request.  Traces bridge the
simulator and reproducible experiments: record once with
``TraceRecorder``-style instrumentation, replay with
:class:`repro.workloads.generators.TraceTargets`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RequestTrace:
    """Per-processor sequences of requested module indices."""

    modules: int
    targets: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.modules < 1:
            raise ConfigurationError(f"modules must be >= 1, got {self.modules}")
        for processor, sequence in enumerate(self.targets):
            for target in sequence:
                if not 0 <= target < self.modules:
                    raise ConfigurationError(
                        f"processor {processor} targets unknown module {target}"
                    )

    @property
    def processors(self) -> int:
        """Number of processors recorded in the trace."""
        return len(self.targets)

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        payload = {
            "modules": self.modules,
            "targets": [list(sequence) for sequence in self.targets],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RequestTrace":
        """Parse a trace previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
            modules = payload["modules"]
            targets = tuple(tuple(seq) for seq in payload["targets"])
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ConfigurationError(f"malformed trace JSON: {error}") from error
        return cls(modules=modules, targets=targets)

    def save(self, path: str | Path) -> None:
        """Write the trace to ``path`` as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "RequestTrace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
