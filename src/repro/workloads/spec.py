"""Declarative, picklable workload specifications.

The generator classes in :mod:`repro.workloads.generators` are *live*
objects: they hold random streams and replay positions, so they cannot
cross process boundaries or participate in content-addressed cache keys.
This module provides their declarative counterparts - small frozen
dataclasses that fully describe a workload without instantiating it:

* :class:`UniformWorkload` - hypothesis (e), the paper's default;
* :class:`HotSpotWorkload` - a fraction of traffic pinned to one module;
* :class:`TraceWorkload` - replay of recorded per-processor targets;
* :class:`RequestMixWorkload` - per-processor request probabilities
  (heterogeneous ``p``), keeping uniform targeting.

A spec does three jobs: it validates itself against a
:class:`~repro.core.config.SystemConfig`, it *builds* the matching live
generator for a given seed (:meth:`build_targets`), and it serialises to
a canonical JSON-able payload (:func:`workload_payload`) that cache keys
and scenario files share.  ``workload_from_payload`` inverts the
serialisation, so TOML/JSON scenario files and cache keys round-trip
through the same code path.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Mapping, Sequence, Union

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.workloads.generators import (
    HotSpotTargets,
    TargetSampler,
    TraceTargets,
)

HOT_SPOT_STREAM = "hot-spot"
"""Stream name used for hot-spot target draws (matches the hot-spot
experiment, so spec-built and hand-built generators are bit-identical)."""


@dataclasses.dataclass(frozen=True)
class UniformWorkload:
    """Hypothesis (e): requests independent and uniform over modules."""

    kind: ClassVar[str] = "uniform"

    def validate(self, config: SystemConfig) -> None:
        """Uniform traffic fits every configuration."""

    def build_targets(self, config: SystemConfig, seed: int) -> TargetSampler | None:
        """``None``: the simulator's own default is already uniform.

        Returning ``None`` (rather than a fresh :class:`UniformTargets`)
        keeps the random-stream layout bit-identical to a plain
        ``simulate(config, seed=seed)`` call.
        """
        return None

    def request_probabilities(self, config: SystemConfig) -> tuple[float, ...] | None:
        """No override: every processor uses ``config.request_probability``."""
        return None

    def describe(self) -> str:
        """Compact single-token description for report lines."""
        return "uniform"


@dataclasses.dataclass(frozen=True)
class HotSpotWorkload:
    """A fraction of all requests is pinned to one hot module."""

    hot_fraction: float
    hot_module: int = 0

    kind: ClassVar[str] = "hot_spot"

    def __post_init__(self) -> None:
        if not isinstance(self.hot_fraction, (int, float)) or isinstance(
            self.hot_fraction, bool
        ):
            raise ConfigurationError(
                f"hot_fraction must be a number, got {self.hot_fraction!r}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must lie in [0, 1], got {self.hot_fraction}"
            )
        if not isinstance(self.hot_module, int) or isinstance(
            self.hot_module, bool
        ) or self.hot_module < 0:
            raise ConfigurationError(
                f"hot_module must be a non-negative integer, got {self.hot_module!r}"
            )

    def validate(self, config: SystemConfig) -> None:
        if self.hot_module >= config.memories:
            raise ConfigurationError(
                f"hot_module {self.hot_module} does not exist in a system "
                f"with {config.memories} memory modules"
            )

    def build_targets(self, config: SystemConfig, seed: int) -> TargetSampler:
        from repro.des.rng import StreamFactory

        return HotSpotTargets(
            config.memories,
            StreamFactory(seed).get(HOT_SPOT_STREAM),
            hot_fraction=self.hot_fraction,
            hot_module=self.hot_module,
        )

    def request_probabilities(self, config: SystemConfig) -> tuple[float, ...] | None:
        return None

    def describe(self) -> str:
        return f"hot_spot(f={self.hot_fraction:g},module={self.hot_module})"


@dataclasses.dataclass(frozen=True)
class TraceWorkload:
    """Replay fixed per-processor target sequences (cycling at the end)."""

    traces: tuple[tuple[int, ...], ...]

    kind: ClassVar[str] = "trace"

    def __post_init__(self) -> None:
        try:
            normalised = tuple(
                tuple(int(target) for target in trace) for trace in self.traces
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"traces must be sequences of module indices: {exc}"
            ) from exc
        object.__setattr__(self, "traces", normalised)
        if not self.traces:
            raise ConfigurationError("at least one per-processor trace is required")
        for processor, trace in enumerate(self.traces):
            if not trace:
                raise ConfigurationError(
                    f"trace for processor {processor} is empty"
                )
            bad = [target for target in trace if target < 0]
            if bad:
                raise ConfigurationError(
                    f"trace for processor {processor} has negative targets: {bad}"
                )

    def validate(self, config: SystemConfig) -> None:
        if len(self.traces) < config.processors:
            raise ConfigurationError(
                f"trace workload records {len(self.traces)} processors but "
                f"the system has {config.processors}"
            )
        for processor, trace in enumerate(self.traces):
            bad = [t for t in trace if t >= config.memories]
            if bad:
                raise ConfigurationError(
                    f"trace for processor {processor} targets missing "
                    f"modules: {bad}"
                )

    def build_targets(self, config: SystemConfig, seed: int) -> TargetSampler:
        return TraceTargets(self.traces, config.memories)

    def request_probabilities(self, config: SystemConfig) -> tuple[float, ...] | None:
        return None

    def describe(self) -> str:
        return f"trace(processors={len(self.traces)})"


@dataclasses.dataclass(frozen=True)
class RequestMixWorkload:
    """Heterogeneous ``p``: one request probability per processor."""

    probabilities: tuple[float, ...]

    kind: ClassVar[str] = "request_mix"

    def __post_init__(self) -> None:
        try:
            normalised = tuple(float(p) for p in self.probabilities)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"probabilities must be a sequence of numbers: {exc}"
            ) from exc
        object.__setattr__(self, "probabilities", normalised)
        if not self.probabilities:
            raise ConfigurationError(
                "at least one per-processor probability is required"
            )
        for processor, p in enumerate(self.probabilities):
            if not 0.0 < p <= 1.0:
                raise ConfigurationError(
                    f"probability for processor {processor} must satisfy "
                    f"0 < p <= 1, got {p!r}"
                )

    def validate(self, config: SystemConfig) -> None:
        if len(self.probabilities) != config.processors:
            raise ConfigurationError(
                f"request mix lists {len(self.probabilities)} probabilities "
                f"but the system has {config.processors} processors"
            )

    def build_targets(self, config: SystemConfig, seed: int) -> TargetSampler | None:
        return None

    def request_probabilities(self, config: SystemConfig) -> tuple[float, ...]:
        return self.probabilities

    def describe(self) -> str:
        mean = sum(self.probabilities) / len(self.probabilities)
        return f"request_mix(n={len(self.probabilities)},mean={mean:g})"


WorkloadSpec = Union[
    UniformWorkload, HotSpotWorkload, TraceWorkload, RequestMixWorkload
]

_KINDS: dict[str, type] = {
    UniformWorkload.kind: UniformWorkload,
    HotSpotWorkload.kind: HotSpotWorkload,
    TraceWorkload.kind: TraceWorkload,
    RequestMixWorkload.kind: RequestMixWorkload,
}


def workload_payload(workload: WorkloadSpec | None) -> dict[str, Any]:
    """Canonical JSON-able description of a workload spec.

    ``None`` encodes as the uniform workload, so cache keys for legacy
    uniform runs and explicit :class:`UniformWorkload` runs coincide -
    while every non-uniform workload necessarily produces a different
    key than uniform traffic over the same configuration.
    """
    if workload is None:
        workload = UniformWorkload()
    payload: dict[str, Any] = {"kind": workload.kind}
    for field in dataclasses.fields(workload):
        value = getattr(workload, field.name)
        if isinstance(value, tuple):
            value = _listify(value)
        payload[field.name] = value
    return payload


def _listify(value):
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


def workload_from_payload(payload: Mapping[str, Any]) -> WorkloadSpec:
    """Rebuild a workload spec from :func:`workload_payload` output.

    Also the parser for the ``[workload]`` table of TOML/JSON scenario
    files, so file format and cache format can never drift apart.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"workload payload must be a mapping, got {payload!r}"
        )
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind not in _KINDS:
        known = ", ".join(sorted(_KINDS))
        raise ConfigurationError(
            f"unknown workload kind {kind!r}; known kinds: {known}"
        )
    cls = _KINDS[kind]
    field_names = {field.name for field in dataclasses.fields(cls)}
    unknown = sorted(set(data) - field_names)
    if unknown:
        raise ConfigurationError(
            f"workload kind {kind!r} does not accept keys: {', '.join(unknown)}"
        )
    converted: dict[str, Any] = {}
    for key, value in data.items():
        if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            value = tuple(
                tuple(item) if isinstance(item, Sequence) else item
                for item in value
            )
        converted[key] = value
    return cls(**converted)
