"""Asymptotic and balanced-job bounds for closed queueing networks.

Classic operational-analysis bounds that bracket the exact MVA solution
of the Section 6 product-form model without solving the recursion:

* **asymptotic bounds** (Muntz-Wong / Denning-Buzen):
  ``X(N) <= min(N / (D + Z), 1 / Dmax)`` and
  ``X(N) >= N / (N D + Z)`` for FIFO demands totalling ``D``, bottleneck
  demand ``Dmax`` and think time ``Z``;
* **balanced-job bounds** (Zahorjan et al.), which tighten both sides
  using the average demand.

They serve two purposes here: cheap sanity envelopes in the tests, and
the back-of-envelope analysis a designer would do before running the
simulator - e.g. the bus-bound ceiling ``EBW <= (r+2)/2`` of Section 2
is exactly the ``1/Dmax`` bound of the central-server model.
"""

from __future__ import annotations

import dataclasses

from repro.core.errors import ConfigurationError
from repro.queueing.network import ClosedNetwork, StationKind


@dataclasses.dataclass(frozen=True)
class ThroughputBounds:
    """Lower and upper bounds on the closed-network throughput ``X(N)``."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-12:
            raise ConfigurationError(
                f"inconsistent bounds: lower {self.lower} > upper {self.upper}"
            )

    def contains(self, value: float, slack: float = 1e-9) -> bool:
        """Whether ``value`` lies inside the bounds (with float slack)."""
        return self.lower - slack <= value <= self.upper + slack


def _demand_summary(network: ClosedNetwork) -> tuple[float, float, float, int]:
    """Total FIFO demand, bottleneck demand, think time, station count."""
    total = 0.0
    bottleneck = 0.0
    think = 0.0
    stations = 0
    for station in network.stations:
        if station.kind is StationKind.QUEUEING:
            total += station.demand
            bottleneck = max(bottleneck, station.demand)
            stations += 1
        else:
            think += station.demand
    if stations == 0 or total <= 0.0:
        raise ConfigurationError("bounds need at least one loaded FIFO station")
    return total, bottleneck, think, stations


def asymptotic_bounds(network: ClosedNetwork) -> ThroughputBounds:
    """The Denning-Buzen asymptotic bounds on ``X(N)``."""
    total, bottleneck, think, _ = _demand_summary(network)
    population = network.population
    upper = min(population / (total + think), 1.0 / bottleneck)
    lower = population / (population * total + think)
    return ThroughputBounds(lower=lower, upper=upper)


def balanced_job_bounds(network: ClosedNetwork) -> ThroughputBounds:
    """Balanced-job bounds: tighter than asymptotic on both sides.

    With total demand ``D``, bottleneck ``Dmax``, average ``Davg = D/K``
    and think time ``Z`` (Zahorjan, Sevcik, Eager, Galler 1982):

        ``N / (D + Z + (N-1) Dmax)  <=  X(N)  <=
          N / (D + Z + (N-1) Davg * D / (D + Z/...))``

    The implementation uses the standard simplified form with think time
    folded in linearly, which preserves the bracketing property.
    """
    total, bottleneck, think, stations = _demand_summary(network)
    population = network.population
    average = total / stations
    lower = population / (total + think + (population - 1) * bottleneck)
    upper = population / (total + think + (population - 1) * average)
    upper = min(upper, 1.0 / bottleneck)
    return ThroughputBounds(lower=lower, upper=upper)


def bus_ceiling_matches_section2(memory_cycle_ratio: int) -> float:
    """The ``1/Dmax`` bound of the central-server model, in EBW units.

    The bus station has demand 2 (two transfers per request), so
    ``X <= 1/2`` requests per bus cycle; per processor cycle that is
    exactly the Section 2 ceiling ``(r + 2) / 2``.
    """
    if memory_cycle_ratio < 1:
        raise ConfigurationError(
            f"memory_cycle_ratio must be >= 1, got {memory_cycle_ratio}"
        )
    return (memory_cycle_ratio + 2) / 2.0
