"""Buzen's convolution algorithm (ref [19]).

An independent exact solver for the same product-form networks as
:mod:`repro.queueing.mva`; having both lets the test suite cross-check
two classic algorithms against each other.

For a single-class network with single-server FIFO stations of demand
``d_i`` and delay stations of demand ``z_j``, the normalising constant
satisfies

    ``G(k) = sum over populations`` - computed iteratively, station by
    station, with the recurrences

* FIFO station: ``g_new(k) = g_old(k) + d_i * g_new(k - 1)``;
* delay station: ``g_new(k) = sum_{j=0..k} (z^j / j!) g_old(k - j)``.

Throughput then follows from ``X(N) = G(N - 1) / G(N)``.
"""

from __future__ import annotations

import math

from repro.core.errors import ConfigurationError
from repro.queueing.network import ClosedNetwork, StationKind


def normalising_constants(network: ClosedNetwork) -> list[float]:
    """``[G(0), G(1), ..., G(N)]`` for the network.

    Station demands are taken per network cycle; the constants are those
    of the standard Gordon-Newell form.
    """
    size = network.population
    g = [0.0] * (size + 1)
    g[0] = 1.0
    for station in network.stations:
        demand = station.demand
        if station.kind is StationKind.QUEUEING:
            for k in range(1, size + 1):
                g[k] = g[k] + demand * g[k - 1]
        elif station.kind is StationKind.DELAY:
            new = [0.0] * (size + 1)
            for k in range(size + 1):
                total = 0.0
                for j in range(k + 1):
                    total += (demand**j / math.factorial(j)) * g[k - j]
                new[k] = total
            g = new
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigurationError(f"unsupported station kind {station.kind}")
    return g


def throughput(network: ClosedNetwork) -> float:
    """Network throughput ``X(N) = G(N-1) / G(N)`` (cycles per time unit)."""
    g = normalising_constants(network)
    if g[network.population] <= 0.0:
        raise ConfigurationError("degenerate network: zero normalising constant")
    return g[network.population - 1] / g[network.population]


def queueing_utilization(network: ClosedNetwork, station_name: str) -> float:
    """Utilisation ``d_i X(N)`` of one queueing station."""
    for station in network.stations:
        if station.name == station_name:
            if station.kind is not StationKind.QUEUEING:
                raise ConfigurationError(
                    f"{station_name!r} is not a queueing station"
                )
            return station.demand * throughput(network)
    raise ConfigurationError(f"unknown station {station_name!r}")
