"""Closed queueing-network descriptions (Section 6 comparison substrate).

The paper notes that, were the bus and memory service times exponential,
the buffered system would be a product-form closed network (refs [18] -
BCMP, [19] - Buzen, [20] - MVA) and could be solved analytically.  This
module describes such networks; :mod:`repro.queueing.mva` and
:mod:`repro.queueing.convolution` solve them.

The central-server model of the buffered single-bus machine has:

* one FIFO *bus* station, visited twice per memory request (request +
  response transfers) with mean service 1 bus cycle;
* ``m`` FIFO *memory* stations, each visited with ratio ``1/m`` and mean
  service ``r``;
* ``n`` circulating customers (the processors, ``p = 1``);
* optionally a *delay* (infinite-server) station modelling internal
  processing for ``p < 1``.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError


class StationKind(enum.Enum):
    """Station types supported by the solvers."""

    QUEUEING = "queueing"
    """Single-server FIFO station."""

    DELAY = "delay"
    """Infinite-server (pure delay) station."""


@dataclasses.dataclass(frozen=True)
class Station:
    """One service station of a closed network."""

    name: str
    kind: StationKind
    visit_ratio: float
    """Mean visits per network cycle (one complete memory request)."""
    service_time: float
    """Mean service time per visit."""

    def __post_init__(self) -> None:
        if self.visit_ratio < 0:
            raise ConfigurationError(
                f"visit ratio of {self.name!r} must be >= 0, got {self.visit_ratio}"
            )
        if self.service_time < 0:
            raise ConfigurationError(
                f"service time of {self.name!r} must be >= 0, got {self.service_time}"
            )

    @property
    def demand(self) -> float:
        """Service demand per network cycle: ``visit_ratio * service_time``."""
        return self.visit_ratio * self.service_time


@dataclasses.dataclass(frozen=True)
class ClosedNetwork:
    """A single-class closed queueing network."""

    stations: tuple[Station, ...]
    population: int

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ConfigurationError(
                f"population must be >= 1, got {self.population}"
            )
        if not self.stations:
            raise ConfigurationError("a network needs at least one station")
        names = [station.name for station in self.stations]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate station names in {names}")

    @property
    def bottleneck_demand(self) -> float:
        """The largest queueing-station demand (asymptotic bound)."""
        demands = [
            station.demand
            for station in self.stations
            if station.kind is StationKind.QUEUEING
        ]
        if not demands:
            raise ConfigurationError("no queueing stations in the network")
        return max(demands)

    @property
    def total_demand(self) -> float:
        """Sum of all service demands (the no-contention cycle time)."""
        return sum(station.demand for station in self.stations)


def buffered_bus_network(config: SystemConfig) -> ClosedNetwork:
    """The central-server model of the buffered single-bus machine.

    One network cycle is one complete memory request: a bus request
    transfer, one memory access, and a bus response transfer.  With
    ``p < 1`` a delay station adds the mean internal-processing time
    ``(r + 2)(1 - p)/p`` implied by the geometric think rule of
    hypothesis (f).
    """
    r = config.memory_cycle_ratio
    stations = [
        Station("bus", StationKind.QUEUEING, visit_ratio=2.0, service_time=1.0)
    ]
    for k in range(config.memories):
        stations.append(
            Station(
                f"memory-{k}",
                StationKind.QUEUEING,
                visit_ratio=1.0 / config.memories,
                service_time=float(r),
            )
        )
    p = config.request_probability
    if p < 1.0:
        think = config.processor_cycle * (1.0 - p) / p
        stations.append(
            Station("think", StationKind.DELAY, visit_ratio=1.0, service_time=think)
        )
    return ClosedNetwork(stations=tuple(stations), population=config.processors)
