"""Event-driven simulation of the central-server model (Section 6 check).

The paper measured "the numerical differences between the two service
times characterizations" - constant (the real machine) versus exponential
(the product-form assumption) - by simulation, finding discrepancies
above 25% with the exponential model on the pessimistic side.

This simulator runs the *closed queueing network* of
:mod:`repro.queueing.network` on the generator-process layer of the
event kernel, with either exponential or deterministic service times.
With exponential times its throughput converges to the MVA solution
(a strong correctness check of both); with deterministic times it shows
the distribution effect the paper reports, isolated from the
finite-buffer effects of the full machine model in :mod:`repro.bus`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.des.engine import Engine
from repro.des.processes import Acquire, FifoResource, ProcessRunner, Timeout
from repro.des.rng import StreamFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics import LatencyReport


class ServiceDistribution(enum.Enum):
    """Service-time law used by every station."""

    EXPONENTIAL = "exponential"
    DETERMINISTIC = "deterministic"


@dataclasses.dataclass(frozen=True)
class CentralServerResult:
    """Measured outcome of one central-server simulation."""

    config: SystemConfig
    distribution: ServiceDistribution
    completions: int
    duration: float
    seed: int
    latency: "LatencyReport | None" = None
    """Streaming wait/service/total summaries over the measured
    requests (populated when the run collected latency metrics)."""

    @property
    def throughput(self) -> float:
        """Request completions per bus cycle."""
        if self.duration <= 0.0:
            return 0.0
        return self.completions / self.duration

    @property
    def ebw(self) -> float:
        """Completions per processor cycle - the paper's EBW unit."""
        return self.throughput * self.config.processor_cycle


class CentralServerSimulator:
    """Closed central-server network: bus + ``m`` memories + think."""

    def __init__(
        self,
        config: SystemConfig,
        distribution: ServiceDistribution,
        seed: int = 0,
        collect_latency: bool = False,
    ) -> None:
        self.config = config
        self.distribution = distribution
        self.seed = seed
        self.latency = None
        if collect_latency:
            from repro.metrics import LatencyTracker

            self.latency = LatencyTracker()
        self._engine = Engine()
        self._runner = ProcessRunner(self._engine)
        self._bus = self._runner.resource("bus")
        self._memories = [
            self._runner.resource(f"memory-{k}") for k in range(config.memories)
        ]
        streams = StreamFactory(seed)
        self._service_stream = streams.get("qn-service")
        self._target_stream = streams.get("qn-targets")
        self._think_stream = streams.get("qn-think")
        self.completions = 0
        self._measuring = False

    # ------------------------------------------------------------------
    def _service(self, mean: float) -> float:
        if self.distribution is ServiceDistribution.EXPONENTIAL:
            return self._service_stream.exponential(mean)
        return mean

    def _think_time(self) -> float:
        """Geometric think rule of hypothesis (f), in bus cycles."""
        failures = self._think_stream.geometric_failures(
            self.config.request_probability
        )
        return failures * self.config.processor_cycle

    def _processor(self, index: int):
        memories = self._memories
        bus = self._bus
        engine = self._engine
        r = float(self.config.memory_cycle_ratio)
        while True:
            think = self._think_time()
            if think > 0.0:
                yield Timeout(think)
            target = memories[self._target_stream.uniform_index(len(memories))]
            # Timestamps bracket each phase; every random draw below
            # happens at exactly the position it did before latency
            # tracking existed, so seeded runs are bit-identical.
            issued = engine.now
            yield Acquire(bus)
            request_transfer = self._service(1.0)
            yield Timeout(request_transfer)
            bus.release()
            yield Acquire(target)
            service_start = engine.now
            service = self._service(r)
            yield Timeout(service)
            target.release()
            yield Acquire(bus)
            yield Timeout(self._service(1.0))
            bus.release()
            if self._measuring:
                self.completions += 1
                if self.latency is not None:
                    # wait: pure queueing delay before the memory access
                    # (bus queue + memory queue, excluding the request
                    # transfer itself) - the analogue of the bus
                    # simulator's wait component.
                    wait = service_start - issued - request_transfer
                    total = engine.now - issued
                    self.latency.record(max(wait, 0.0), service, total)

    # ------------------------------------------------------------------
    def run(self, duration: float, warmup: float | None = None) -> CentralServerResult:
        """Simulate for ``duration`` measured bus cycles (after warm-up)."""
        if duration <= 0.0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        if warmup is None:
            warmup = duration * 0.25
        if warmup < 0.0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        for index in range(self.config.processors):
            self._runner.start(self._processor(index))
        self._engine.run(until=warmup)
        self._measuring = True
        self.completions = 0
        if self.latency is not None:
            # Fresh collectors: summaries cover the measurement window.
            from repro.metrics import LatencyTracker

            self.latency = LatencyTracker()
        self._engine.run(until=warmup + duration)
        return CentralServerResult(
            config=self.config,
            distribution=self.distribution,
            completions=self.completions,
            duration=duration,
            seed=self.seed,
            latency=self.latency.report() if self.latency is not None else None,
        )


def simulate_central_server(
    config: SystemConfig,
    distribution: ServiceDistribution = ServiceDistribution.EXPONENTIAL,
    duration: float = 200_000.0,
    seed: int = 0,
    collect_latency: bool = False,
) -> CentralServerResult:
    """One-call wrapper used by experiments and tests."""
    simulator = CentralServerSimulator(
        config, distribution, seed, collect_latency=collect_latency
    )
    return simulator.run(duration)
