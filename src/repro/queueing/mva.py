"""Exact Mean Value Analysis (ref [20]: Reiser & Lavenberg).

Solves single-class closed product-form networks by the classic
recursion on population ``k = 1 .. N``:

* residence time at a FIFO station: ``R_i(k) = s_i (1 + Q_i(k-1))``;
* residence time at a delay station: ``R_i(k) = s_i``;
* throughput: ``X(k) = k / sum_i v_i R_i(k)``;
* queue lengths: ``Q_i(k) = X(k) v_i R_i(k)``.

The result is exact for exponential FIFO service (BCMP conditions); the
paper's point - reproduced by experiment ``product_form`` - is that the
buffered bus system has *constant* service times, for which this model
errs pessimistically by more than 25%.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.queueing.network import ClosedNetwork, StationKind, buffered_bus_network


@dataclasses.dataclass(frozen=True)
class MvaSolution:
    """The solved performance quantities of a closed network."""

    network: ClosedNetwork
    throughput: float
    """Network cycles (memory requests) completed per time unit."""
    cycle_time: float
    """Mean time for one network cycle."""
    queue_lengths: Mapping[str, float]
    """Mean customers at each station (including in service)."""
    utilizations: Mapping[str, float]
    """Utilisation of each queueing station (demand * throughput)."""


def solve_mva(network: ClosedNetwork) -> MvaSolution:
    """Run the exact MVA recursion for ``network``."""
    stations = network.stations
    queue_lengths = [0.0] * len(stations)
    throughput = 0.0
    for k in range(1, network.population + 1):
        residences = []
        for i, station in enumerate(stations):
            if station.kind is StationKind.QUEUEING:
                residences.append(station.service_time * (1.0 + queue_lengths[i]))
            else:
                residences.append(station.service_time)
        cycle_time = sum(
            station.visit_ratio * residence
            for station, residence in zip(stations, residences)
        )
        if cycle_time <= 0.0:
            raise ConfigurationError("network has zero total demand")
        throughput = k / cycle_time
        queue_lengths = [
            throughput * station.visit_ratio * residence
            for station, residence in zip(stations, residences)
        ]
    return MvaSolution(
        network=network,
        throughput=throughput,
        cycle_time=network.population / throughput,
        queue_lengths={
            station.name: q for station, q in zip(stations, queue_lengths)
        },
        utilizations={
            station.name: throughput * station.demand
            for station in stations
            if station.kind is StationKind.QUEUEING
        },
    )


def product_form_ebw(config: SystemConfig) -> float:
    """EBW predicted by the product-form (exponential) model.

    The MVA throughput is in requests per bus cycle; multiplying by the
    processor cycle ``r + 2`` expresses it in the paper's EBW unit
    (requests serviced per processor cycle).
    """
    solution = solve_mva(buffered_bus_network(config))
    return solution.throughput * config.processor_cycle


def solve_littles_law(config: SystemConfig):
    """Analytic mean-wait/queue-length metrics of the product-form model.

    Applies Little's law ``N = X R`` to the solved central-server
    network: the mean issue-to-response residence time is the closed
    cycle time minus the think (delay-station) time, the mean wait is
    residence minus the per-request service demand ``r + 2`` (two bus
    transfers plus one memory access), and the queue lengths come
    straight from the MVA recursion.  These are the exact means of the
    exponential model - the columns ``--metrics latency`` emits for the
    ``mva`` method where the simulator would emit percentile summaries.
    """
    from repro.engine.base import LittlesLawLatency

    solution = solve_mva(buffered_bus_network(config))
    think = sum(
        station.demand
        for station in solution.network.stations
        if station.kind is StationKind.DELAY
    )
    total_mean = config.processors / solution.throughput - think
    service = 2.0 + config.memory_cycle_ratio
    memory_queues = [
        length
        for name, length in solution.queue_lengths.items()
        if name.startswith("memory-")
    ]
    return LittlesLawLatency(
        wait_mean=total_mean - service,
        total_mean=total_mean,
        queue_bus=solution.queue_lengths["bus"],
        queue_memory=sum(memory_queues) / len(memory_queues),
    )
