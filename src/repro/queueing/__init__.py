"""Product-form queueing substrate for the Section 6 comparison."""

from repro.queueing.bounds import (
    ThroughputBounds,
    asymptotic_bounds,
    balanced_job_bounds,
    bus_ceiling_matches_section2,
)
from repro.queueing.convolution import (
    normalising_constants,
    queueing_utilization,
    throughput,
)
from repro.queueing.exponential_sim import (
    CentralServerResult,
    CentralServerSimulator,
    ServiceDistribution,
    simulate_central_server,
)
from repro.queueing.mva import MvaSolution, product_form_ebw, solve_mva
from repro.queueing.network import (
    ClosedNetwork,
    Station,
    StationKind,
    buffered_bus_network,
)

__all__ = [
    "ThroughputBounds",
    "asymptotic_bounds",
    "balanced_job_bounds",
    "bus_ceiling_matches_section2",
    "ClosedNetwork",
    "Station",
    "StationKind",
    "buffered_bus_network",
    "MvaSolution",
    "solve_mva",
    "product_form_ebw",
    "normalising_constants",
    "throughput",
    "queueing_utilization",
    "ServiceDistribution",
    "CentralServerSimulator",
    "CentralServerResult",
    "simulate_central_server",
]
