"""The unified evaluation-engine layer.

One abstraction for every way the library attaches numbers to a
configuration: evaluators declare capabilities, serve
``EvalRequest -> EvalResult``, and contribute versioned engine tokens to
cache keys.  See :mod:`repro.engine.base` for the value types,
:mod:`repro.engine.evaluators` for the built-in machines and
:mod:`repro.engine.registry` for the dispatch point, and
``ARCHITECTURE.md`` at the repository root for how the layer sits
between workloads/scenarios above and kernels/models below.
"""

from __future__ import annotations

from repro.engine.base import (
    ALL_WORKLOAD_KINDS,
    EvalRequest,
    EvalResult,
    EvaluationMethod,
    Evaluator,
    EvaluatorCapabilities,
    LITTLES_LAW_TOKEN,
    LittlesLawLatency,
    UNIFORM_ONLY,
)
from repro.engine.registry import (
    all_evaluators,
    get_evaluator,
    register_evaluator,
)


def evaluate(request: EvalRequest, method: EvaluationMethod | str) -> EvalResult:
    """Validate ``request`` against ``method``'s capabilities and run it.

    The one-call convenience the experiment modules use for reference
    values (crossbar lines, table models); scenario execution goes
    through :func:`repro.scenarios.execute.evaluate_unit`, which adds
    caching and pooling around the same registry dispatch.
    """
    evaluator = get_evaluator(method)
    evaluator.capabilities.check(request)
    return evaluator.evaluate(request)


def evaluate_config(
    config, method: EvaluationMethod | str, **kwargs
) -> EvalResult:
    """Shorthand: evaluate a bare configuration under ``method``.

    Keyword arguments populate the :class:`EvalRequest` (``seed``,
    ``cycles``, ``workload``, ...).
    """
    return evaluate(EvalRequest(config=config, **kwargs), method)


__all__ = [
    "ALL_WORKLOAD_KINDS",
    "EvalRequest",
    "EvalResult",
    "EvaluationMethod",
    "Evaluator",
    "EvaluatorCapabilities",
    "LITTLES_LAW_TOKEN",
    "LittlesLawLatency",
    "UNIFORM_ONLY",
    "all_evaluators",
    "evaluate",
    "evaluate_config",
    "get_evaluator",
    "register_evaluator",
]
