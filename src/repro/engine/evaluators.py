"""The built-in evaluators wrapping every evaluation machine.

Each class pairs a capability declaration with the thin adapter that
turns an :class:`~repro.engine.base.EvalRequest` into the library call
the pre-engine dispatcher made - the numerical code paths (and therefore
the produced bytes) are unchanged.  Heavy model modules are imported
inside :meth:`evaluate` so importing the engine stays cheap and worker
processes only pay for the models they run.

Two methods are first-class here for the first time:

* ``bounds`` - the balanced-job bounds of :mod:`repro.queueing.bounds`
  on the central-server network; the reported EBW is the bound midpoint
  (the exact product-form value always lies inside the bracket);
* ``approx`` - the cheap approximation for each priority: the Section
  3.2 combinational model for priority to memories
  (:mod:`repro.models.approx_memory_priority`), the Section 4 reduced
  chain for priority to processors
  (:mod:`repro.models.processor_priority`).
"""

from __future__ import annotations

from typing import Any

from repro.engine.base import (
    ALL_WORKLOAD_KINDS,
    EvalRequest,
    EvalResult,
    EvaluationMethod,
    EvaluatorCapabilities,
    LITTLES_LAW_TOKEN,
)


def _analytic_payload(
    capabilities: EvaluatorCapabilities, request: EvalRequest
) -> dict[str, Any]:
    """Cache identity shared by every analytic evaluator.

    Deterministic functions of the configuration alone: seed, cycles and
    warmup are excluded, so replications and ``--cycles`` overrides hit
    the same entry instead of recomputing the identical value.
    """
    from repro.parallel.cache import config_payload
    from repro.workloads.spec import workload_payload

    payload: dict[str, Any] = {
        "config": config_payload(request.config),
        "workload": workload_payload(request.workload),
        "method": str(capabilities.method),
        "engine": capabilities.engine_token,
    }
    if request.metrics:
        payload["metrics"] = [LITTLES_LAW_TOKEN]
    return payload


def _model_result(model) -> EvalResult:
    """Adapt a :class:`~repro.core.results.ModelResult` to the engine."""
    return EvalResult(
        ebw=model.ebw,
        processor_utilization=model.processor_utilization,
        bus_utilization=model.bus_utilization,
    )


class SimulationEvaluator:
    """Cycle-accurate bus simulation (:func:`repro.bus.simulate`)."""

    capabilities = EvaluatorCapabilities(
        method=EvaluationMethod.SIMULATION,
        engine_token="simulation@1",
        workloads=ALL_WORKLOAD_KINDS,
        metrics=frozenset({"latency"}),
        description="cycle-accurate simulation of the Figure 1/4 machine "
        "(every workload, buffering, p and metric family)",
    )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        from repro.parallel.workers import run_case

        result = run_case(request.case())
        if request.collects_latency:
            assert result.latency is not None
        return EvalResult(
            ebw=result.ebw,
            processor_utilization=result.processor_utilization,
            bus_utilization=result.bus_utilization,
            latency=result.latency if request.collects_latency else None,
        )

    def cache_payload(self, request: EvalRequest) -> dict[str, Any]:
        """Simulation identity: the full case (config, workload, seed,
        cycles, warmup, metrics) plus the engine namespace.

        The ``reference`` and ``fast`` kernels are property-tested
        bit-identical, so they share the ``simulation@1`` namespace and
        the kernel lever stays out of the key.  The ``batch`` kernel is
        only statistically equivalent, so its requests carry a distinct
        engine namespace - resolved per backend through
        :func:`repro.bus.backends.backend_engine_token`: the
        bit-identical numpy/numba pair shares ``simulation-batch@1``
        (their cache entries are interchangeable), while
        statistically-equivalent backends like cupy own their token, so
        entries can never cross an equivalence boundary.
        """
        from repro.parallel.cache import case_payload

        payload = case_payload(request.case())
        payload["method"] = str(self.capabilities.method)
        if request.kernel == "batch":
            from repro.bus.backends import backend_engine_token

            payload["engine"] = backend_engine_token(request.backend)
        else:
            payload["engine"] = self.capabilities.engine_token
        return payload


class MarkovEvaluator:
    """The paper's chains: Section 3.1.1 exact (priority to memories),
    Section 4 reduced (priority to processors)."""

    capabilities = EvaluatorCapabilities(
        method=EvaluationMethod.MARKOV,
        engine_token="markov@1",
        supports_buffering=False,
        full_load_only=True,
        description="Section 3/4 Markov chains (p = 1, unbuffered)",
    )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        from repro.core.policy import Priority
        from repro.models.exact_memory_priority import exact_memory_priority_ebw
        from repro.models.processor_priority import processor_priority_ebw

        if request.config.priority is Priority.PROCESSORS:
            return _model_result(processor_priority_ebw(request.config))
        return _model_result(exact_memory_priority_ebw(request.config))

    def cache_payload(self, request: EvalRequest) -> dict[str, Any]:
        return _analytic_payload(self.capabilities, request)


class MvaEvaluator:
    """Product-form MVA on the central-server model, with optional
    Little's-law mean-wait/queue-length metrics."""

    capabilities = EvaluatorCapabilities(
        method=EvaluationMethod.MVA,
        engine_token="mva@1",
        metrics=frozenset({"latency"}),
        description="product-form MVA of the central-server network "
        "(exact means via Little's law for the latency metric)",
    )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        from repro.core import metrics
        from repro.queueing.mva import product_form_ebw, solve_littles_law

        config = request.config
        ebw = product_form_ebw(config)
        littles = None
        if request.collects_latency:
            littles = solve_littles_law(config)
        return EvalResult(
            ebw=ebw,
            processor_utilization=metrics.processor_utilization(ebw, config),
            bus_utilization=metrics.bus_utilization_from_ebw(
                ebw, config.memory_cycle_ratio
            ),
            littles=littles,
        )

    def cache_payload(self, request: EvalRequest) -> dict[str, Any]:
        return _analytic_payload(self.capabilities, request)


class CrossbarEvaluator:
    """The Bhandarkar exact crossbar chain (comparison baseline)."""

    capabilities = EvaluatorCapabilities(
        method=EvaluationMethod.CROSSBAR,
        engine_token="crossbar@1",
        full_load_only=True,
        description="exact n x m crossbar EBW (p = 1; r carried through "
        "but irrelevant to the value)",
    )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        from repro.models.crossbar import crossbar_exact_ebw

        return _model_result(crossbar_exact_ebw(request.config))

    def cache_payload(self, request: EvalRequest) -> dict[str, Any]:
        return _analytic_payload(self.capabilities, request)


class BandwidthEvaluator:
    """The Section 3.2 combinational bandwidth model (p <= 1)."""

    capabilities = EvaluatorCapabilities(
        method=EvaluationMethod.BANDWIDTH,
        engine_token="bandwidth@1",
        supports_buffering=False,
        description="Section 3.2 combinational busy-module profile under "
        "the Section 3 useful-cycle weights (unbuffered)",
    )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        from repro.models.bandwidth import combinational_bandwidth_ebw

        return _model_result(combinational_bandwidth_ebw(request.config))

    def cache_payload(self, request: EvalRequest) -> dict[str, Any]:
        return _analytic_payload(self.capabilities, request)


class BoundsEvaluator:
    """Balanced-job bounds on the central-server model.

    The cheapest analytic envelope: no chain build, no recursion.  The
    reported EBW is the midpoint of the balanced-job bracket expressed
    in the paper's EBW unit; the exact MVA solution of the same network
    always lies inside the bracket, so the midpoint errs by at most half
    the bracket width.
    """

    capabilities = EvaluatorCapabilities(
        method=EvaluationMethod.BOUNDS,
        engine_token="bounds@1",
        description="balanced-job throughput bounds on the central-server "
        "network; EBW is the bracket midpoint",
    )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        from repro.core import metrics
        from repro.queueing.bounds import balanced_job_bounds
        from repro.queueing.network import buffered_bus_network

        config = request.config
        bounds = balanced_job_bounds(buffered_bus_network(config))
        ebw = 0.5 * (bounds.lower + bounds.upper) * config.processor_cycle
        return EvalResult(
            ebw=ebw,
            processor_utilization=metrics.processor_utilization(ebw, config),
            bus_utilization=metrics.bus_utilization_from_ebw(
                ebw, config.memory_cycle_ratio
            ),
        )

    def cache_payload(self, request: EvalRequest) -> dict[str, Any]:
        return _analytic_payload(self.capabilities, request)


class ApproxEvaluator:
    """The memory/processor-priority approximations as one method.

    Mirrors the ``markov`` priority dispatch at the approximation tier:
    priority to memories uses the Section 3.2 combinational profile (the
    Table 2 model), priority to processors uses the Section 4 reduced
    chain (which *is* the paper's approximation for that priority)."""

    capabilities = EvaluatorCapabilities(
        method=EvaluationMethod.APPROX,
        engine_token="approx@1",
        supports_buffering=False,
        full_load_only=True,
        description="Section 3.2 combinational approximation (priority "
        "to memories) / Section 4 reduced chain (priority to processors)",
    )

    def evaluate(self, request: EvalRequest) -> EvalResult:
        from repro.core.policy import Priority
        from repro.models.approx_memory_priority import (
            approximate_memory_priority_ebw,
        )
        from repro.models.processor_priority import processor_priority_ebw

        if request.config.priority is Priority.PROCESSORS:
            return _model_result(processor_priority_ebw(request.config))
        return _model_result(approximate_memory_priority_ebw(request.config))

    def cache_payload(self, request: EvalRequest) -> dict[str, Any]:
        return _analytic_payload(self.capabilities, request)


BUILTIN_EVALUATORS = (
    SimulationEvaluator(),
    MarkovEvaluator(),
    MvaEvaluator(),
    CrossbarEvaluator(),
    BandwidthEvaluator(),
    BoundsEvaluator(),
    ApproxEvaluator(),
)
"""One instance of each built-in evaluator, in registration order."""
