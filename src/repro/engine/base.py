"""Core types of the unified evaluation-engine layer.

Every way this library can attach a number to a configuration - the
cycle-accurate simulator, the Section 3/4 Markov chains, product-form
MVA, the crossbar chain, the Section 3.2 combinational bandwidth model,
operational-analysis bounds - is an *evaluator*: an object that turns an
:class:`EvalRequest` into an :class:`EvalResult` and declares, up front,
what it can evaluate (:class:`EvaluatorCapabilities`).  The scenario
compiler, the sweep helpers and the experiment modules all dispatch
through the evaluator registry (:mod:`repro.engine.registry`) instead of
hand-rolled ``if/elif`` chains, so

* invalid method/workload/configuration combinations are rejected when a
  scenario is *loaded*, with a message naming the violated capability,
  rather than deep inside a worker process;
* cache keys carry each evaluator's versioned engine token, so a change
  to one evaluator's semantics retires exactly that evaluator's entries;
* new methods (and replacement implementations) plug in by registering
  an evaluator, without touching the dispatch sites.

This module holds the request/result/capability value types plus the
:class:`EvaluationMethod` enum, which historically lived in
:mod:`repro.scenarios.spec` and is still re-exported from there.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import TYPE_CHECKING, Any, Mapping, Protocol, runtime_checkable

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.metrics import LatencyReport
    from repro.workloads.spec import WorkloadSpec


class EvaluationMethod(enum.Enum):
    """How one scenario point is evaluated."""

    SIMULATION = "simulation"
    """Cycle-accurate bus simulation (:func:`repro.bus.simulate`)."""

    MARKOV = "markov"
    """Markov-chain models: the Section 4 reduced chain for priority to
    processors, the Section 3 exact chain for priority to memories."""

    MVA = "mva"
    """Product-form Mean Value Analysis (:mod:`repro.queueing.mva`)."""

    CROSSBAR = "crossbar"
    """Closed-form exact crossbar EBW (:mod:`repro.models.crossbar`)."""

    BANDWIDTH = "bandwidth"
    """The paper's Section 3.2 combinational bandwidth model: the
    distinct-modules busy distribution (:mod:`repro.models.combinatorics`)
    weighted through :func:`repro.models.bandwidth.ebw_from_busy_distribution`."""

    BOUNDS = "bounds"
    """Operational-analysis balanced-job bounds on the central-server
    model (:mod:`repro.queueing.bounds`); the reported EBW is the bound
    midpoint, bracketed by the exact product-form value."""

    APPROX = "approx"
    """The cheap approximation for each priority: the Section 3.2
    combinational model for priority to memories, the Section 4 reduced
    chain for priority to processors."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ALL_WORKLOAD_KINDS: frozenset[str] = frozenset(
    {"uniform", "hot_spot", "trace", "request_mix"}
)
"""Every workload kind the library defines (:mod:`repro.workloads.spec`)."""

UNIFORM_ONLY: frozenset[str] = frozenset({"uniform"})
"""Workload capability of the analytic methods (hypothesis (e))."""


@dataclasses.dataclass(frozen=True)
class EvaluatorCapabilities:
    """What one evaluator declares it can evaluate.

    The declaration is the single source of truth for request
    validation: :meth:`check` raises a :class:`ConfigurationError`
    naming the violated constraint, and the scenario layer calls it both
    at spec-construction time (static fields) and at compile time (every
    grid point), so invalid sweeps fail before any work is scheduled.
    """

    method: EvaluationMethod
    engine_token: str
    """Versioned cache-key contribution, e.g. ``"markov@1"``.  Bump the
    version when the evaluator's numerical semantics change; only that
    evaluator's cache entries are retired."""
    workloads: frozenset[str] = UNIFORM_ONLY
    """Workload kinds the evaluator accepts (``uniform`` for the
    analytic models - hypothesis (e))."""
    supports_buffering: bool = True
    """Whether buffered configurations are evaluable."""
    supports_unbuffered: bool = True
    """Whether unbuffered configurations are evaluable."""
    full_load_only: bool = False
    """Whether the evaluator requires ``p = 1`` (hypothesis (f) with no
    internal processing)."""
    metrics: frozenset[str] = frozenset()
    """Extra metric families the evaluator can attach (e.g. ``latency``)."""
    description: str = ""

    @property
    def analytic(self) -> bool:
        """True for deterministic closed-form/numerical methods.

        Analytic results are functions of the configuration alone, so
        their cache keys ignore seed/cycles/warmup and replications
        collapse onto one computation.
        """
        return self.method is not EvaluationMethod.SIMULATION

    # ------------------------------------------------------------------
    def check_metrics(self, metrics: tuple[str, ...]) -> None:
        """Reject metric families this evaluator cannot produce."""
        unsupported = sorted(set(metrics) - self.metrics)
        if unsupported:
            kind = "analytic " if self.analytic else ""
            raise ConfigurationError(
                f"method {self.method} ({kind}evaluator) does not support "
                f"metric(s) {', '.join(unsupported)}; supported: "
                f"{', '.join(sorted(self.metrics)) or 'none'}"
            )

    def check_workload_kind(self, kind: str) -> None:
        """Reject workload kinds outside the declared capability."""
        if kind not in self.workloads:
            label = "analytic and supports only" if self.workloads == UNIFORM_ONLY else "restricted to"
            raise ConfigurationError(
                f"method {self.method} is {label} the "
                f"{', '.join(sorted(self.workloads))} workload "
                f"(hypothesis (e)); got workload kind {kind!r}"
            )

    def check_config(self, config: SystemConfig) -> None:
        """Reject configurations outside the declared capability."""
        if config.buffered and not self.supports_buffering:
            raise ConfigurationError(
                f"method {self.method} covers the unbuffered system only; "
                f"use simulation (or mva/bounds) for buffered "
                f"configurations like {config.describe()}"
            )
        if not config.buffered and not self.supports_unbuffered:
            raise ConfigurationError(
                f"method {self.method} covers the buffered system only; "
                f"got unbuffered configuration {config.describe()}"
            )
        if self.full_load_only and config.request_probability != 1.0:
            raise ConfigurationError(
                f"method {self.method} assumes full load p = 1 "
                f"(got p = {config.request_probability:g}); use simulation "
                "for partial-load estimates"
            )

    def check(self, request: "EvalRequest") -> None:
        """Validate a whole request against this declaration."""
        self.check_workload_kind(request.workload_kind)
        self.check_config(request.config)
        self.check_metrics(request.metrics)


@dataclasses.dataclass(frozen=True)
class EvalRequest:
    """One fully-specified evaluation of one configuration.

    The engine-layer counterpart of a scenario
    :class:`~repro.scenarios.compiler.WorkUnit`, stripped of sweep
    bookkeeping (index, scenario name, replication number).  ``seed``,
    ``cycles`` and ``warmup`` only matter to the simulation evaluator;
    analytic evaluators ignore them (and exclude them from cache
    payloads).  ``kernel`` selects the simulation loop implementation:
    ``"reference"`` and ``"fast"`` are bit-identical, so that choice
    never enters a cache key; ``"batch"`` (the vectorized lockstep
    fleet kernel) is reproducible in itself but not bit-identical, so
    batch requests cache under the distinct ``simulation-batch@1``
    engine namespace.  ``backend`` selects the batch kernel's array
    substrate (:mod:`repro.bus.backends`); bit-identical backends
    (numpy/numba) share the batch namespace, while others carry their
    own engine token.
    """

    config: SystemConfig
    workload: "WorkloadSpec | None" = None
    cycles: int = 50_000
    warmup: int | None = None
    seed: int = 0
    metrics: tuple[str, ...] = ()
    kernel: str = "reference"
    backend: str = "numpy"

    @property
    def workload_kind(self) -> str:
        """The workload spec's kind tag (``None`` means uniform)."""
        return "uniform" if self.workload is None else self.workload.kind

    @property
    def collects_latency(self) -> bool:
        """Whether the request asks for latency-distribution metrics."""
        return "latency" in self.metrics

    def case(self):
        """The :class:`~repro.parallel.workers.SimulationCase` a
        simulation evaluator executes for this request."""
        from repro.parallel.workers import SimulationCase

        return SimulationCase(
            config=self.config,
            cycles=self.cycles,
            seed=self.seed,
            warmup=self.warmup,
            workload=self.workload,
            collect_latency=self.collects_latency,
            kernel=self.kernel,
            backend=self.backend,
        )


LITTLES_LAW_TOKEN = "littles@1"
"""Versioned cache-key token for analytic Little's-law latency columns."""


@dataclasses.dataclass(frozen=True)
class LittlesLawLatency:
    """Analytic mean-wait/queue-length metrics via Little's law.

    Produced by the ``mva`` evaluator when a scenario requests the
    ``latency`` metric: the product-form solution yields exact mean
    residence times and queue lengths, so instead of silently omitting
    the percentile columns the unit line carries the analytic means.

    All times are in bus cycles; queue lengths are mean customers
    (including the one in service).
    """

    wait_mean: float
    """Mean queueing delay per request: residence minus service."""
    total_mean: float
    """Mean issue-to-response residence time per request."""
    queue_bus: float
    """Mean customers at the bus station."""
    queue_memory: float
    """Mean customers per memory module (average over modules)."""

    def payload(self) -> dict[str, float]:
        """JSON-able encoding (floats round-trip exactly)."""
        return {
            "wait_mean": self.wait_mean,
            "total_mean": self.total_mean,
            "queue_bus": self.queue_bus,
            "queue_memory": self.queue_memory,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "LittlesLawLatency":
        """Inverse of :meth:`payload`; raises on malformed input."""
        try:
            return cls(
                wait_mean=float(payload["wait_mean"]),
                total_mean=float(payload["total_mean"]),
                queue_bus=float(payload["queue_bus"]),
                queue_memory=float(payload["queue_memory"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed Little's-law latency payload: {exc!r}"
            ) from exc


@dataclasses.dataclass(frozen=True)
class EvalResult:
    """The uniform outcome of one evaluation.

    ``payload()`` is the JSON-able encoding the result cache stores
    verbatim; floats round-trip exactly through JSON, so cached and
    freshly-computed runs are byte-identical.  The encoding is the exact
    shape the pre-engine dispatcher produced, so the refactor changed no
    stored or printed bytes.
    """

    ebw: float
    processor_utilization: float
    bus_utilization: float
    latency: "LatencyReport | None" = None
    """Streaming wait/service/total summaries (simulation only)."""
    littles: LittlesLawLatency | None = None
    """Analytic Little's-law means (mva with the latency metric)."""

    def payload(self) -> dict[str, Any]:
        """Cacheable JSON-able metrics mapping."""
        payload: dict[str, Any] = {
            "ebw": self.ebw,
            "processor_utilization": self.processor_utilization,
            "bus_utilization": self.bus_utilization,
        }
        if self.latency is not None:
            payload["latency"] = self.latency.payload()
        if self.littles is not None:
            payload["littles_law"] = self.littles.payload()
        return payload

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, Any],
        expect_latency: bool = False,
        expect_littles: bool = False,
    ) -> "EvalResult":
        """Rebuild a result from a cached payload.

        ``expect_latency`` / ``expect_littles`` make the corresponding
        entry mandatory, so a stale cache entry missing the metrics a
        unit asked for is reported as malformed (and recomputed) instead
        of silently dropping columns.
        """
        try:
            latency = None
            if expect_latency:
                from repro.metrics import LatencyReport

                latency = LatencyReport.from_payload(payload["latency"])
            littles = None
            if expect_littles:
                littles = LittlesLawLatency.from_payload(payload["littles_law"])
            return cls(
                ebw=float(payload["ebw"]),
                processor_utilization=float(payload["processor_utilization"]),
                bus_utilization=float(payload["bus_utilization"]),
                latency=latency,
                littles=littles,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed evaluation payload: {exc!r}"
            ) from exc


@runtime_checkable
class Evaluator(Protocol):
    """Anything that can serve :class:`EvalRequest` objects.

    Implementations declare :attr:`capabilities`, turn a validated
    request into an :class:`EvalResult`, and describe the computation's
    cache identity.  Register instances with
    :func:`repro.engine.registry.register_evaluator`.
    """

    capabilities: EvaluatorCapabilities

    def evaluate(self, request: EvalRequest) -> EvalResult:
        """Evaluate one request (must be process-pool safe)."""
        ...  # pragma: no cover - protocol

    def cache_payload(self, request: EvalRequest) -> dict[str, Any]:
        """Content-addressed identity of the computation.

        Two requests with equal payloads must produce byte-identical
        results; the payload carries the evaluator's versioned
        :attr:`~EvaluatorCapabilities.engine_token`.
        """
        ...  # pragma: no cover - protocol
