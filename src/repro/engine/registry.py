"""The evaluator registry: one dispatch point for every layer.

The registry maps method names (the string values of
:class:`~repro.engine.base.EvaluationMethod`) to
:class:`~repro.engine.base.Evaluator` instances.  The scenario executor,
the sweep helpers and the experiment modules all resolve methods here,
so replacing or extending an evaluation machine is one
:func:`register_evaluator` call - no dispatch site changes.

Built-in evaluators self-register on import.  A custom evaluator may be
registered under a new name (reachable through
:func:`repro.engine.evaluate`) or may *replace* a built-in one
(``replace=True``), e.g. to wrap simulation with instrumentation while
keeping every scenario byte-compatible.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import ConfigurationError
from repro.engine.base import EvaluationMethod, Evaluator
from repro.engine.evaluators import BUILTIN_EVALUATORS

_REGISTRY: dict[str, Evaluator] = {}


def _method_name(method: EvaluationMethod | str) -> str:
    return method.value if isinstance(method, EvaluationMethod) else str(method)


def register_evaluator(evaluator: Evaluator, replace: bool = False) -> Evaluator:
    """Register ``evaluator`` under its declared method name.

    Raises :class:`ConfigurationError` on a duplicate name unless
    ``replace`` is set.  Returns the evaluator for decorator-ish use.
    """
    capabilities = getattr(evaluator, "capabilities", None)
    if capabilities is None or not hasattr(evaluator, "evaluate"):
        raise ConfigurationError(
            f"{evaluator!r} is not an Evaluator: it needs a 'capabilities' "
            "declaration and an 'evaluate' method"
        )
    name = _method_name(capabilities.method)
    if not replace and name in _REGISTRY:
        raise ConfigurationError(
            f"an evaluator for method {name!r} is already registered; "
            "pass replace=True to substitute it"
        )
    _REGISTRY[name] = evaluator
    return evaluator


def get_evaluator(method: EvaluationMethod | str) -> Evaluator:
    """The registered evaluator for ``method``; raises if unknown."""
    name = _method_name(method)
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"no evaluator registered for method {name!r}; known: {known}"
        ) from None


def all_evaluators() -> Iterable[Evaluator]:
    """Every registered evaluator, sorted by method name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


for _evaluator in BUILTIN_EVALUATORS:
    register_evaluator(_evaluator)
del _evaluator
