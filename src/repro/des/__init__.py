"""Discrete-event simulation kernel.

A small, deterministic, dependency-free event scheduler plus the
statistics and random-stream utilities that every simulator in this
repository builds on.  It replaces the SimPy dependency with an
auditable in-tree core.
"""

from repro.des.engine import Engine
from repro.des.events import Event, EventHandle
from repro.des.processes import Acquire, FifoResource, ProcessRunner, Timeout
from repro.des.replications import (
    ReplicationResult,
    ebw_estimator,
    replicate,
    replicate_until,
    replication_seeds,
)
from repro.des.rng import RandomStream, StreamFactory, derive_seed
from repro.des.stats import BatchMeans, Counter, TimeWeighted, autocorrelation

__all__ = [
    "Engine",
    "Event",
    "EventHandle",
    "RandomStream",
    "StreamFactory",
    "derive_seed",
    "BatchMeans",
    "Counter",
    "TimeWeighted",
    "autocorrelation",
    "ProcessRunner",
    "FifoResource",
    "Acquire",
    "Timeout",
    "ReplicationResult",
    "replicate",
    "replicate_until",
    "replication_seeds",
    "ebw_estimator",
]
