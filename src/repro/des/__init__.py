"""Discrete-event simulation kernel.

A small, deterministic, dependency-free event scheduler plus the
statistics and random-stream utilities that every simulator in this
repository builds on.  It replaces the SimPy dependency with an
auditable in-tree core.
"""

from repro.des.engine import Engine
from repro.des.events import Event, EventHandle
from repro.des.processes import Acquire, FifoResource, ProcessRunner, Timeout
from repro.des.replications import (
    LatencyReplication,
    ReplicationResult,
    ebw_estimator,
    latency_estimator,
    replicate,
    replicate_latency,
    replicate_until,
    replication_seeds,
)
from repro.des.rng import RandomStream, StreamFactory, derive_seed
from repro.des.stats import BatchMeans, Counter, TimeWeighted, autocorrelation

__all__ = [
    "Engine",
    "Event",
    "EventHandle",
    "RandomStream",
    "StreamFactory",
    "derive_seed",
    "BatchMeans",
    "Counter",
    "TimeWeighted",
    "autocorrelation",
    "ProcessRunner",
    "FifoResource",
    "Acquire",
    "Timeout",
    "ReplicationResult",
    "LatencyReplication",
    "replicate",
    "replicate_latency",
    "replicate_until",
    "replication_seeds",
    "latency_estimator",
    "ebw_estimator",
]
