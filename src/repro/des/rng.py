"""Named deterministic random-number streams.

Simulations draw randomness for several independent purposes (arbitration
tie-breaks, request targets, think-time coin flips).  Giving each purpose
its own stream, derived deterministically from a master seed and a name,
keeps results reproducible even when code evolution changes *how many*
draws one purpose makes: other purposes' streams are unaffected.

Streams wrap :class:`random.Random` seeded with a stable SHA-256 digest of
``(master seed, stream name)`` - no dependence on Python's hash
randomisation.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """A stable 64-bit seed for stream ``name`` under ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """One purpose-specific random stream.

    Thin convenience facade over :class:`random.Random` with the handful
    of draws the simulators need.
    """

    def __init__(self, master_seed: int, name: str) -> None:
        self.name = name
        self._random = random.Random(derive_seed(master_seed, name))

    def uniform_index(self, bound: int) -> int:
        """An integer uniform on ``[0, bound)``."""
        if bound < 1:
            raise ValueError(f"bound must be positive, got {bound}")
        return self._random.randrange(bound)

    def choice(self, items: Sequence[T]) -> T:
        """A uniform choice among ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self._random.randrange(len(items))]

    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {probability}")
        if probability == 1.0:
            return True
        return self._random.random() < probability

    def geometric_failures(self, success_probability: float) -> int:
        """Number of failures before the first success (support {0,1,...}).

        Used for think times: a processor that declines to issue with
        probability ``1-p`` at each processor-cycle boundary waits a
        geometric number of extra processor cycles.
        """
        if not 0.0 < success_probability <= 1.0:
            raise ValueError(
                f"success probability must lie in (0, 1], got {success_probability}"
            )
        if success_probability == 1.0:
            return 0
        count = 0
        while not self.bernoulli(success_probability):
            count += 1
        return count

    def exponential(self, mean: float) -> float:
        """An exponential variate with the given mean."""
        if mean <= 0.0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def random(self) -> float:
        """A uniform float in [0, 1)."""
        return self._random.random()


class StreamFactory:
    """Creates and caches named :class:`RandomStream` objects.

    >>> streams = StreamFactory(master_seed=7)
    >>> streams.get("arbitration") is streams.get("arbitration")
    True
    """

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, int):
            raise ValueError(f"master seed must be an integer, got {master_seed!r}")
        self.master_seed = master_seed
        self._streams: dict[str, RandomStream] = {}

    def get(self, name: str) -> RandomStream:
        """The stream for ``name``, created on first use."""
        if name not in self._streams:
            self._streams[name] = RandomStream(self.master_seed, name)
        return self._streams[name]


def mean_and_half_width(values: Sequence[float], z: float = 1.96) -> tuple[float, float]:
    """Sample mean and normal-approximation CI half width.

    Shared by batch-means estimators; returns half width 0 for fewer than
    two values.
    """
    if not values:
        raise ValueError("values must be non-empty")
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, z * math.sqrt(variance / len(values))
