"""Statistics collection for simulations.

Three collectors cover the needs of the bus and queueing simulators:

* :class:`Counter` - monotone event counts with window snapshots, used to
  exclude warm-up;
* :class:`TimeWeighted` - time-averaged piecewise-constant quantities
  (queue lengths, busy indicators);
* :class:`BatchMeans` - the classic batch-means method for confidence
  intervals on steady-state rates from a single long run.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.des.rng import mean_and_half_width


class Counter:
    """A monotone event counter with support for measurement windows."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0
        self._window_start_value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative: {amount}")
        self.total += amount

    def start_window(self) -> None:
        """Begin the measurement window (typically after warm-up)."""
        self._window_start_value = self.total

    @property
    def in_window(self) -> int:
        """Events counted since :meth:`start_window`."""
        return self.total - self._window_start_value


class TimeWeighted:
    """Time average of a piecewise-constant signal.

    >>> tw = TimeWeighted("queue", initial=0.0, start_time=0.0)
    >>> tw.update(2.0, at=3.0)   # value was 0 during [0, 3)
    >>> tw.update(0.0, at=4.0)   # value was 2 during [3, 4)
    >>> tw.average(until=4.0)
    0.5
    """

    def __init__(self, name: str, initial: float = 0.0, start_time: float = 0.0) -> None:
        self.name = name
        self._value = initial
        self._last_time = start_time
        self._area = 0.0
        self._window_start_time = start_time

    @property
    def value(self) -> float:
        """The current signal value."""
        return self._value

    def update(self, new_value: float, at: float) -> None:
        """Record that the signal changed to ``new_value`` at time ``at``."""
        if at < self._last_time:
            raise ValueError(
                f"time went backwards: {at} < {self._last_time} in {self.name}"
            )
        self._area += self._value * (at - self._last_time)
        self._value = new_value
        self._last_time = at

    def start_window(self, at: float) -> None:
        """Restart averaging from time ``at`` (typically after warm-up)."""
        self.update(self._value, at)
        self._area = 0.0
        self._window_start_time = at

    def average(self, until: float) -> float:
        """Time average of the signal over the current window up to ``until``."""
        if until < self._last_time:
            raise ValueError(f"until={until} precedes last update {self._last_time}")
        span = until - self._window_start_time
        if span <= 0.0:
            return self._value
        area = self._area + self._value * (until - self._last_time)
        return area / span


class BatchMeans:
    """Batch-means estimator for a steady-state rate.

    Observations (e.g. completions per cycle over consecutive equal-length
    batches) are appended; the estimator reports their mean and a normal
    confidence interval.  Batching de-correlates successive observations,
    the textbook remedy for serial correlation in a single long run.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._batches: list[float] = []

    def add(self, value: float) -> None:
        """Record one batch observation."""
        if math.isnan(value):
            raise ValueError("batch observation is NaN")
        self._batches.append(value)

    @property
    def batches(self) -> tuple[float, ...]:
        """The recorded batch observations."""
        return tuple(self._batches)

    @property
    def count(self) -> int:
        """Number of recorded batches."""
        return len(self._batches)

    def mean(self) -> float:
        """Mean of the batch observations."""
        if not self._batches:
            raise ValueError("no batches recorded")
        return sum(self._batches) / len(self._batches)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI ``(low, high)`` on the mean."""
        mean, half = mean_and_half_width(self._batches, z)
        return mean - half, mean + half

    def relative_half_width(self, z: float = 1.96) -> float:
        """CI half width divided by the mean (``inf`` if the mean is 0)."""
        mean, half = mean_and_half_width(self._batches, z)
        if mean == 0.0:
            return math.inf
        return half / abs(mean)


def autocorrelation(values: Sequence[float], lag: int) -> float:
    """Sample autocorrelation at ``lag``, used to validate batch sizing."""
    if lag < 0:
        raise ValueError(f"lag must be non-negative, got {lag}")
    n = len(values)
    if lag >= n:
        raise ValueError(f"lag {lag} must be smaller than sample size {n}")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values)
    if variance == 0.0:
        return 0.0
    covariance = sum(
        (values[i] - mean) * (values[i + lag] - mean) for i in range(n - lag)
    )
    return covariance / variance
