"""A minimal deterministic discrete-event simulation engine.

The engine is a classic heap-based event scheduler: callbacks are
scheduled at future times and executed in ``(time, priority, insertion
order)`` order.  It is deliberately small - the cycle-accurate bus model
(:mod:`repro.bus`) and the exponential-service queueing simulator
(:mod:`repro.queueing.exponential_sim`) are both built on it, replacing
the SimPy dependency a reader might expect with an auditable ~100-line
core.

Determinism guarantees
----------------------
Two runs with the same schedule calls and the same RNG seeds produce
identical event orders: simultaneous events fire by explicit priority,
then by scheduling order.  No wall-clock or hash-order dependence exists
anywhere in the kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.core.errors import SimulationError
from repro.des.events import Event, EventHandle


class Engine:
    """The event loop.

    Example
    -------
    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(2.0, lambda: fired.append("b"))
    >>> _ = engine.schedule(1.0, lambda: fired.append("a"))
    >>> engine.run()
    >>> fired
    ['a', 'b']
    >>> engine.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: list[Event] = []
        self._sequence = 0
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to fire at absolute ``time``.

        Raises :class:`SimulationError` if ``time`` lies in the past;
        scheduling at the current time is allowed (the event fires within
        the current run, after already-queued events of equal time and
        priority).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = Event(time, priority, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` after the current time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, priority)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the event heap empties or a bound is hit.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is then advanced to ``until``.
        max_events:
            Stop after executing this many events (guards against
            run-away simulations in tests).
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    self._now = until
                    return
                heapq.heappop(self._heap)
                self._now = event.time
                self._processed += 1
                event.callback()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
