"""Generator-based processes on top of the event engine.

This layer gives the event kernel a SimPy-like coroutine interface: a
process is a generator that yields the commands defined here, and the
:class:`ProcessRunner` resumes it when the awaited condition is met.

Only the two primitives the library needs are provided:

* :class:`Timeout` - resume after a delay;
* :class:`Acquire` / release of a :class:`FifoResource` - a single- or
  multi-server FIFO station, the building block of the exponential
  queueing simulator used for the Section 6 product-form comparison.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Generator, Union

from repro.core.errors import SimulationError
from repro.des.engine import Engine


@dataclasses.dataclass(frozen=True)
class Timeout:
    """Yield this from a process to sleep for ``delay`` time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {self.delay}")


@dataclasses.dataclass(frozen=True)
class Acquire:
    """Yield this from a process to queue for one server of ``resource``."""

    resource: "FifoResource"


Command = Union[Timeout, Acquire]
Process = Generator[Command, None, None]


class FifoResource:
    """A FIFO station with ``servers`` identical servers.

    Processes acquire a server by yielding :class:`Acquire`; they must
    call :meth:`release` when done.  Waiters resume in arrival order.
    """

    def __init__(self, runner: "ProcessRunner", name: str, servers: int = 1) -> None:
        if servers < 1:
            raise SimulationError(f"servers must be >= 1, got {servers}")
        self.name = name
        self.servers = servers
        self._runner = runner
        self._busy = 0
        self._waiting: collections.deque[Process] = collections.deque()

    @property
    def busy(self) -> int:
        """Number of servers currently held."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a server."""
        return len(self._waiting)

    def _try_acquire(self, process: Process) -> None:
        if self._busy < self.servers and not self._waiting:
            self._busy += 1
            self._runner._resume_soon(process)
        else:
            self._waiting.append(process)

    def release(self) -> None:
        """Free one server, waking the oldest waiter if any."""
        if self._busy < 1:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiting:
            waiter = self._waiting.popleft()
            self._runner._resume_soon(waiter)
        else:
            self._busy -= 1


class ProcessRunner:
    """Drives generator processes on an :class:`Engine`."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def resource(self, name: str, servers: int = 1) -> FifoResource:
        """Create a FIFO resource attached to this runner."""
        return FifoResource(self, name, servers)

    def start(self, process: Process) -> None:
        """Begin executing ``process`` at the current simulation time."""
        self._resume_soon(process)

    # ------------------------------------------------------------------
    def _resume_soon(self, process: Process) -> None:
        self.engine.schedule(self.engine.now, lambda: self._advance(process))

    def _advance(self, process: Process) -> None:
        try:
            command = next(process)
        except StopIteration:
            return
        if isinstance(command, Timeout):
            self.engine.schedule_after(command.delay, lambda: self._advance(process))
        elif isinstance(command, Acquire):
            command.resource._try_acquire(process)
        else:
            raise SimulationError(f"process yielded unknown command {command!r}")
