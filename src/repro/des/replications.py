"""Independent-replication statistics for simulation experiments.

Batch means (:class:`repro.des.stats.BatchMeans`) derive a confidence
interval from one long run; the orthogonal - and more robust - method is
*independent replications*: run the same configuration under several
seeds and treat each run's estimate as one i.i.d. observation.  This
module provides both a fixed-count replicator and a sequential version
that keeps adding replications until the confidence interval is tight
enough, the standard stopping rule in simulation methodology.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Callable, Sequence

from repro.core.errors import ConfigurationError
from repro.des.rng import mean_and_half_width

Estimator = Callable[[int], float]
"""Maps a seed to one replication's point estimate."""


@dataclasses.dataclass(frozen=True)
class ReplicationResult:
    """Aggregate of several independent replications."""

    estimates: tuple[float, ...]
    seeds: tuple[int, ...]
    confidence: float

    @property
    def replications(self) -> int:
        """Number of completed replications."""
        return len(self.estimates)

    @property
    def mean(self) -> float:
        """Point estimate: the mean across replications."""
        return sum(self.estimates) / len(self.estimates)

    @property
    def half_width(self) -> float:
        """Normal-approximation CI half width at the stored confidence."""
        _, half = mean_and_half_width(self.estimates, _z_value(self.confidence))
        return half

    @property
    def relative_half_width(self) -> float:
        """Half width relative to the mean (``inf`` for zero mean)."""
        if self.mean == 0.0:
            return math.inf
        return self.half_width / abs(self.mean)

    def interval(self) -> tuple[float, float]:
        """The confidence interval ``(low, high)``."""
        return self.mean - self.half_width, self.mean + self.half_width

    def summary(self) -> str:
        """One-line human-readable digest."""
        low, high = self.interval()
        return (
            f"{self.mean:.4f} +/- {self.half_width:.4f} "
            f"[{low:.4f}, {high:.4f}] over {self.replications} replications"
        )


def _z_value(confidence: float) -> float:
    """Two-sided normal quantile for the common confidence levels."""
    table = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}
    try:
        return table[round(confidence, 2)]
    except KeyError:
        raise ConfigurationError(
            f"confidence must be one of {sorted(table)}, got {confidence}"
        ) from None


def replication_seeds(base_seed: int, replications: int) -> tuple[int, ...]:
    """The canonical seed tuple ``base_seed, base_seed + 1, ...``.

    Single source of truth for the seed-to-replication mapping: both the
    serial path below and :class:`repro.parallel.ParallelReplicator`
    derive their seeds here, which is what makes serial and parallel
    replication results bit-for-bit identical.  Distinct seeds produce
    independent random streams (see :mod:`repro.des.rng`).
    """
    if replications < 2:
        raise ConfigurationError(
            f"at least 2 replications are required, got {replications}"
        )
    return tuple(base_seed + i for i in range(replications))


def replicate(
    estimator: Estimator,
    replications: int,
    base_seed: int = 0,
    confidence: float = 0.95,
    parallel: bool = False,
    max_workers: int | None = None,
) -> ReplicationResult:
    """Run a fixed number of independent replications.

    With ``parallel=True`` - or simply a ``max_workers`` value - the
    replications are fanned out over a process pool (``max_workers``
    processes, defaulting to the CPU count); the estimator must then be
    picklable - e.g. the task returned by :func:`ebw_estimator` or any
    module-level function.  The result is identical to the serial run
    either way.
    """
    if parallel or max_workers is not None:
        from repro.parallel.replicator import ParallelReplicator

        return ParallelReplicator(max_workers=max_workers).run(
            estimator,
            replications,
            base_seed=base_seed,
            confidence=confidence,
        )
    seeds = replication_seeds(base_seed, replications)
    estimates = tuple(estimator(seed) for seed in seeds)
    return ReplicationResult(
        estimates=estimates, seeds=seeds, confidence=confidence
    )


def replicate_until(
    estimator: Estimator,
    relative_precision: float,
    base_seed: int = 0,
    confidence: float = 0.95,
    min_replications: int = 3,
    max_replications: int = 50,
) -> ReplicationResult:
    """Sequential stopping: replicate until the CI is relatively tight.

    Adds replications one at a time (after a minimum of
    ``min_replications``) until the CI half width falls below
    ``relative_precision * |mean|``, or ``max_replications`` is reached -
    the textbook sequential procedure for steady-state estimation.
    """
    if not 0.0 < relative_precision < 1.0:
        raise ConfigurationError(
            f"relative_precision must lie in (0, 1), got {relative_precision}"
        )
    if min_replications < 2:
        raise ConfigurationError(
            f"min_replications must be >= 2, got {min_replications}"
        )
    if max_replications < min_replications:
        raise ConfigurationError(
            "max_replications must be >= min_replications "
            f"({max_replications} < {min_replications})"
        )
    estimates: list[float] = []
    seeds: list[int] = []
    for seed in replication_seeds(base_seed, max_replications):
        estimates.append(estimator(seed))
        seeds.append(seed)
        if len(estimates) >= min_replications:
            result = ReplicationResult(
                estimates=tuple(estimates),
                seeds=tuple(seeds),
                confidence=confidence,
            )
            if result.relative_half_width <= relative_precision:
                return result
    return ReplicationResult(
        estimates=tuple(estimates), seeds=tuple(seeds), confidence=confidence
    )


@dataclasses.dataclass(frozen=True)
class LatencyReplication:
    """Latency-distribution aggregate of independent replications.

    ``reports`` holds one :class:`~repro.metrics.LatencyReport` per
    replication, ordered by seed; :attr:`merged` folds them with the
    exactly-associative summary merge, so the aggregate is a
    deterministic function of the per-seed reports alone - serial and
    parallel execution produce bit-identical values.
    """

    reports: tuple  # tuple[LatencyReport, ...]
    seeds: tuple[int, ...]

    @property
    def replications(self) -> int:
        """Number of completed replications."""
        return len(self.reports)

    @functools.cached_property
    def merged(self):
        """The seed-order fold of all per-replication reports.

        Computed once per instance: the fold is exact rational
        arithmetic, which is not free for many replications.  (Caching
        via ``__dict__`` is compatible with the frozen dataclass and
        does not participate in equality.)
        """
        from repro.metrics import merge_latency_reports

        return merge_latency_reports(self.reports)


def replicate_latency(
    estimator,
    replications: int,
    base_seed: int = 0,
    parallel: bool = False,
    max_workers: int | None = None,
) -> LatencyReplication:
    """Aggregate per-seed latency reports across replications.

    ``estimator`` maps a seed to a :class:`~repro.metrics.LatencyReport`
    (e.g. :class:`repro.parallel.workers.LatencyTask`).  Seeds follow
    the canonical :func:`replication_seeds` mapping; with
    ``parallel=True`` (or an explicit ``max_workers``) the replications
    fan out over :class:`repro.parallel.ParallelReplicator`, whose
    result is bit-for-bit identical to the serial loop here.
    """
    if parallel or max_workers is not None:
        from repro.parallel.replicator import ParallelReplicator

        return ParallelReplicator(max_workers=max_workers).run_latency(
            estimator, replications, base_seed=base_seed
        )
    seeds = replication_seeds(base_seed, replications)
    return LatencyReplication(
        reports=tuple(estimator(seed) for seed in seeds), seeds=seeds
    )


def latency_estimator(
    config: "SystemConfig",  # noqa: F821 - forward reference, see below
    cycles: int = 20_000,
):
    """A seed-to-:class:`~repro.metrics.LatencyReport` estimator.

    The latency analogue of :func:`ebw_estimator`: a picklable task for
    :func:`replicate_latency`, serial or parallel alike.
    """
    from repro.parallel.workers import LatencyTask

    return LatencyTask(config=config, cycles=cycles)


def ebw_estimator(
    config: "SystemConfig",  # noqa: F821 - forward reference, see below
    cycles: int = 20_000,
) -> Estimator:
    """An :data:`Estimator` producing the simulated EBW of ``config``.

    Convenience factory tying the replication machinery to the bus
    simulator without creating an import cycle at module load.  The
    returned task is a picklable object, so it works with the serial
    path and with ``replicate(..., parallel=True)`` alike.
    """
    from repro.parallel.workers import EbwTask

    return EbwTask(config=config, cycles=cycles)
