"""Event records for the discrete-event kernel.

An :class:`Event` couples a firing time with a callback.  Events are
totally ordered by ``(time, priority, sequence)``: ties in time are broken
first by an explicit integer priority (smaller fires first) and then by
scheduling order, which makes simulations fully deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(order=True)
class Event:
    """A scheduled callback.

    Instances are created through :meth:`repro.des.engine.Engine.schedule`
    rather than directly; the engine assigns the tie-breaking sequence
    number.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], Any] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)


class EventHandle:
    """A cancellation token for a scheduled event.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  This keeps cancellation O(1) at a small memory cost, the
    standard approach for heap-based schedulers.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True
