"""Spawn-safe worker tasks for process-pool execution.

Everything a worker process touches must be importable at module level
and picklable: no closures, no lambdas, no objects holding open
resources.  The tasks here are small frozen dataclasses that carry a
:class:`~repro.core.config.SystemConfig` (itself a frozen dataclass of
primitives and enums) plus the run parameters, so they cross process
boundaries unchanged under both the ``fork`` and ``spawn`` start
methods.

Non-uniform workloads travel as declarative specs
(:mod:`repro.workloads.spec`) rather than live generators: a
:class:`SimulationCase` carries the spec, and :func:`run_case` builds
the matching generator *inside* the executing process from the case's
own seed.  Live generators hold random streams and replay positions, so
shipping the spec (not the object) is what keeps the tasks spawn-safe
and the results independent of which process runs them.

Determinism contract: a task called with a given seed performs exactly
the computation the serial code path performs with that seed - the
worker functions call the same :func:`repro.bus.simulate` entry point
with the same arguments, so estimates are bit-for-bit identical
regardless of which process (or how many) produced them.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.workloads.spec import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class SimulationCase:
    """One fully-specified simulator invocation.

    ``workload=None`` means the paper's uniform workload and follows the
    exact code path (and random-stream layout) of a plain
    ``simulate(config, ...)`` call, so adding the field changed no
    existing result bytes.  ``collect_latency`` attaches streaming
    wait/service/total latency summaries (:mod:`repro.metrics`) to the
    result; it draws no random numbers, so every simulated counter stays
    bit-identical either way - but it *is* part of the case's cache
    identity (see :func:`repro.parallel.cache.case_payload`), because
    the cached value carries extra fields when it is set.
    """

    config: SystemConfig
    cycles: int
    seed: int
    warmup: int | None = None
    workload: WorkloadSpec | None = None
    collect_latency: bool = False
    kernel: str = "reference"
    """Simulation-loop implementation (``"reference"``, ``"fast"`` or
    ``"batch"``).  Reference and fast are property-tested bit-identical,
    so for them the kernel is a pure execution lever and is deliberately
    **not** part of :func:`repro.parallel.cache.case_payload`.  The
    batch kernel is reproducible in itself but *not* bit-identical, so
    the engine layer caches batch results under their own
    ``simulation-batch@1`` namespace (see
    :meth:`repro.engine.evaluators.SimulationEvaluator.cache_payload`)."""
    backend: str = "numpy"
    """Array substrate for the batch kernel (:mod:`repro.bus.backends`).
    Like ``kernel``, it is an execution lever and stays out of
    :func:`repro.parallel.cache.case_payload`; backends that are not
    bit-identical to numpy carry their own engine token, which is how
    the cache keeps their results apart."""


def run_case(case: SimulationCase) -> SimulationResult:
    """Execute one :class:`SimulationCase` (module-level, hence pool-safe)."""
    from repro.bus import simulate

    targets = None
    request_probabilities = None
    if case.workload is not None:
        case.workload.validate(case.config)
        targets = case.workload.build_targets(case.config, case.seed)
        request_probabilities = case.workload.request_probabilities(case.config)
    return simulate(
        case.config,
        cycles=case.cycles,
        seed=case.seed,
        warmup=case.warmup,
        targets=targets,
        request_probabilities=request_probabilities,
        collect_latency=case.collect_latency,
        kernel=case.kernel,
        backend=case.backend,
    )


def simulate_cases(
    cases, max_workers: int | None = None, mp_context=None
) -> list[SimulationResult]:
    """Run many :class:`SimulationCase` items, results in input order.

    The grid-point dispatcher behind the parallel sweep and experiment
    paths; with ``max_workers=1`` it is exactly the serial loop.
    """
    from repro.parallel.pool import map_ordered

    return map_ordered(
        run_case, cases, max_workers=max_workers, mp_context=mp_context
    )


@dataclasses.dataclass(frozen=True)
class EbwTask:
    """A picklable seed-to-EBW estimator for replication runs.

    Equivalent to the closure built by
    :func:`repro.des.replications.ebw_estimator` but safe to ship to a
    worker process.  Calling it with a seed returns the simulated EBW of
    ``config`` under that seed.  An optional workload spec reproduces
    hot-spot, trace or heterogeneous-p runs; ``None`` is the paper's
    uniform workload.
    """

    config: SystemConfig
    cycles: int = 20_000
    workload: WorkloadSpec | None = None

    def __call__(self, seed: int) -> float:
        return run_case(
            SimulationCase(self.config, self.cycles, seed, workload=self.workload)
        ).ebw


@dataclasses.dataclass(frozen=True)
class LatencyTask:
    """A picklable seed-to-:class:`~repro.metrics.LatencyReport` estimator.

    The latency counterpart of :class:`EbwTask`: calling it with a seed
    runs the seeded simulation with latency collection enabled and
    returns the run's wait/service/total summaries.  Used by
    :func:`repro.des.replications.replicate_latency` and
    :meth:`repro.parallel.replicator.ParallelReplicator.run_latency`,
    whose results are bit-for-bit identical because both merge the same
    per-seed reports in the same seed order.
    """

    config: SystemConfig
    cycles: int = 20_000
    workload: WorkloadSpec | None = None

    def __call__(self, seed: int):
        result = run_case(
            SimulationCase(
                self.config,
                self.cycles,
                seed,
                workload=self.workload,
                collect_latency=True,
            )
        )
        assert result.latency is not None
        return result.latency
