"""Ordered process-pool mapping with a guaranteed serial fallback.

:func:`map_ordered` is the one primitive every parallel code path in
this library uses: it applies a picklable function to a sequence of
items and returns the results *in input order*, regardless of the order
in which workers finish.  That ordering guarantee is what lets the
parallel replication and sweep paths promise bit-for-bit identical
results to their serial counterparts.

When a pool cannot be started at all (sandboxes without POSIX
semaphores, ``max_workers=1``, or a trivially small work list) the map
degrades to an in-process loop computing the very same values.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

from repro.core.errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(max_workers: int | None) -> int:
    """Validate and default the worker count (``None`` -> CPU count)."""
    if max_workers is None:
        return os.cpu_count() or 1
    if not isinstance(max_workers, int) or isinstance(max_workers, bool):
        raise ConfigurationError(
            f"max_workers must be a positive integer or None, got {max_workers!r}"
        )
    if max_workers < 1:
        raise ConfigurationError(
            f"max_workers must be a positive integer or None, got {max_workers!r}"
        )
    return max_workers


def map_ordered(
    function: Callable[[T], R],
    items: Sequence[T],
    max_workers: int | None = None,
    mp_context=None,
) -> list[R]:
    """Apply ``function`` to ``items``, preserving input order.

    Uses a :class:`~concurrent.futures.ProcessPoolExecutor` when more
    than one worker is requested and there is more than one item;
    otherwise (or when the platform cannot start a pool) computes
    in-process.  Either way the returned list satisfies
    ``result[i] == function(items[i])``.
    """
    items = list(items)
    workers = min(resolve_workers(max_workers), max(1, len(items)))
    if workers <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    chunksize = max(1, len(items) // (workers * 4))
    try:
        executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=mp_context
        )
    except (OSError, ValueError, ImportError) as exc:
        # Platforms without POSIX semaphores / process support (CPython
        # raises ImportError from sem_open-less multiprocessing).
        return _serial_fallback(function, items, exc)
    try:
        with executor:
            return list(executor.map(function, items, chunksize=chunksize))
    except BrokenProcessPool as exc:
        # Workers can also die lazily, at first submit.  Only this
        # pool-infrastructure error triggers the fallback: exceptions
        # raised *by the function* propagate unchanged, exactly as in
        # the serial loop.
        return _serial_fallback(function, items, exc)


def _serial_fallback(
    function: Callable[[T], R], items: Sequence[T], exc: BaseException
) -> list[R]:
    warnings.warn(
        f"process pool unavailable ({exc}); computing serially",
        RuntimeWarning,
        stacklevel=3,
    )
    return [function(item) for item in items]
