"""Parallel replication, sweep execution, and result caching.

This subsystem turns the library's embarrassingly parallel workloads -
independent simulation replications, sweep grids, whole experiments -
into process-pool jobs without giving up the reproduction's core
guarantee: *the numbers do not depend on how they were scheduled*.

Three pieces cooperate:

* :class:`ParallelReplicator` (:mod:`repro.parallel.replicator`) fans
  independent replications over a pool while preserving the serial
  seed-to-estimate mapping, returning the same
  :class:`~repro.des.replications.ReplicationResult` bit-for-bit;
* :class:`ResultCache` (:mod:`repro.parallel.cache`) is a
  content-addressed JSON store keyed on a canonical hash of the work
  description plus a code-version tag, so repeated sweeps and experiment
  runs skip already-computed points;
* :mod:`repro.parallel.pool` and :mod:`repro.parallel.workers` supply
  the order-preserving pool map and the spawn-safe picklable tasks the
  other layers (``des.replications``, ``analysis.sweeps``,
  ``analysis.sensitivity``, ``experiments.runner``) dispatch through;
* :mod:`repro.parallel.fleet` aggregates batch-kernel simulation cases
  into lockstep fleets (:func:`~repro.parallel.fleet.run_fleet`,
  :func:`~repro.parallel.fleet.replicate_batch`), handing whole
  replication blocks to one vectorized
  :class:`~repro.bus.batch.BatchBusKernel` call instead of pool-mapping
  single runs.

Determinism guarantee
---------------------
Every parallel entry point takes the exact work list its serial
counterpart would execute, evaluates items in isolated processes (each
item's randomness derives solely from its own seed via
:mod:`repro.des.rng`), and reassembles results in input order.  Serial
and parallel runs therefore produce identical bytes, which the property
tests under ``tests/properties/test_parallel_equivalence.py`` assert
directly.
"""

from repro.parallel.fleet import (
    fleet_key,
    group_fleets,
    replicate_batch,
    run_fleet,
)
from repro.parallel.cache import (
    ENV_CACHE_DIR,
    CacheStats,
    ResultCache,
    canonical_json,
    case_payload,
    code_version_tag,
    config_payload,
    default_cache_dir,
    fingerprint,
    reset_code_version_tag,
)
from repro.parallel.pool import map_ordered, resolve_workers
from repro.parallel.replicator import ParallelReplicator
from repro.parallel.workers import (
    EbwTask,
    LatencyTask,
    SimulationCase,
    run_case,
    simulate_cases,
)

__all__ = [
    "ParallelReplicator",
    "ResultCache",
    "fleet_key",
    "group_fleets",
    "replicate_batch",
    "run_fleet",
    "CacheStats",
    "EbwTask",
    "LatencyTask",
    "SimulationCase",
    "run_case",
    "simulate_cases",
    "map_ordered",
    "resolve_workers",
    "canonical_json",
    "fingerprint",
    "config_payload",
    "case_payload",
    "code_version_tag",
    "reset_code_version_tag",
    "default_cache_dir",
    "ENV_CACHE_DIR",
]
