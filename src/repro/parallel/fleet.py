"""Fleet aggregation: hand whole replication blocks to one batch call.

The pool map in :mod:`repro.parallel.pool` parallelises *across* runs;
the batch kernel (:mod:`repro.bus.batch`) vectorises *within* one call.
This module is the bridge: it groups a list of
:class:`~repro.parallel.workers.SimulationCase` items into lockstep
fleets - cases sharing the batch shape and measurement window - and
executes each fleet with a single :class:`~repro.bus.batch.BatchBusKernel`
invocation instead of pool-mapping the runs one by one.

Because fleet rows are fully independent (see the batch-kernel
reproducibility contract), *how* cases are grouped can never change any
case's result: a case executed alone, inside its scenario's fleet, or
inside some other fleet produces identical bytes.  Grouping is therefore
an execution lever exactly like ``--jobs`` - with the one twist that the
batch kernel's numbers differ from the exact kernels', which is why
batch results carry their own engine cache token.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.results import SimulationResult
from repro.parallel.workers import SimulationCase
from repro.des.replications import ReplicationResult, replication_seeds
from repro.workloads.spec import WorkloadSpec


def fleet_key(case: SimulationCase) -> tuple:
    """The lockstep-grouping key of one simulation case.

    Extends :func:`repro.bus.batch.fleet_shape` with the measurement
    window - rows of one kernel advance through identical cycle counts,
    so ``cycles`` and ``warmup`` must match too - and with
    ``collect_latency``, because latency collection is a whole-kernel
    lever (one sketch pair per fleet): latency and non-latency cases
    never share a kernel.  ``backend`` is part of the key for the same
    reason - one kernel instance runs on one array substrate - even
    though bit-identical backends would produce the same bytes either
    way.
    """
    from repro.bus.batch import fleet_shape

    return fleet_shape(case.config) + (
        case.cycles,
        case.warmup,
        case.collect_latency,
        case.backend,
    )


def pack_key(case: SimulationCase) -> tuple:
    """The super-fleet grouping key: pack fields plus the window.

    The packed layer above :func:`fleet_key`: shape numbers (``n``,
    ``m``, ``r``, buffer depth) are per-row kernel state now, so only
    the :data:`~repro.bus.batch.PACK_FIELDS` - arbitration branch and
    buffering mode - plus the measurement window and backend must
    match for rows to share one padded lockstep program.  Cases with
    equal :func:`fleet_key` always have equal ``pack_key``, so packing
    strictly coarsens the fleet grouping.
    """
    from repro.bus.batch import PACK_FIELDS

    return tuple(
        getattr(case.config, field) for field in PACK_FIELDS
    ) + (
        case.cycles,
        case.warmup,
        case.collect_latency,
        case.backend,
    )


def group_fleets(cases: Sequence[SimulationCase]) -> list[list[int]]:
    """Partition case positions into homogeneous lockstep fleets.

    Groups are keyed on :func:`fleet_key` and ordered by each key's
    first appearance, so the grouping is a deterministic function of the
    case list alone.
    """
    groups: dict[tuple, list[int]] = {}
    for position, case in enumerate(cases):
        groups.setdefault(fleet_key(case), []).append(position)
    return list(groups.values())


def pack_fleets(cases: Sequence[SimulationCase]) -> list[list[int]]:
    """Partition case positions into shape-packed super-fleets.

    Like :func:`group_fleets` but keyed on :func:`pack_key`, so a
    fragmented sweep - many shapes, few replications each - lands in
    one padded batch call per arbitration/window/backend combination
    instead of one tiny fleet per shape.  By the packing contract each
    row's bytes are independent of the grouping (proven in
    ``tests/properties/test_fleet_packing.py``), so this is purely a
    wall-clock lever.
    """
    groups: dict[tuple, list[int]] = {}
    for position, case in enumerate(cases):
        groups.setdefault(pack_key(case), []).append(position)
    return list(groups.values())


def run_fleet(
    cases: Sequence[SimulationCase], pack: bool = True
) -> list[SimulationResult]:
    """Execute simulation cases through lockstep batch fleets.

    The batch counterpart of
    :func:`repro.parallel.workers.simulate_cases`: results come back in
    input order, and each case's result is independent of the grouping
    (rows are independent; property-tested in
    ``tests/properties/test_batch_invariance.py``).  Latency-collecting
    cases run through per-row quantile sketches and come back with
    sketch-based :class:`~repro.metrics.LatencyReport` values attached;
    raises :class:`ConfigurationError` when numpy is unavailable.

    ``pack=True`` (the default) groups by :func:`pack_key`, running
    shape-heterogeneous cases as padded super-fleets; ``pack=False``
    keeps the homogeneous :func:`fleet_key` grouping.  The two produce
    identical bytes - packing only changes how many kernel calls are
    made.
    """
    from repro.bus.batch import BatchBusKernel

    cases = list(cases)
    results: dict[int, SimulationResult] = {}
    grouping = pack_fleets(cases) if pack else group_fleets(cases)
    for positions in grouping:
        configs = []
        seeds = []
        targets = []
        probabilities = []
        for position in positions:
            case = cases[position]
            workload = case.workload
            if workload is not None:
                workload.validate(case.config)
            configs.append(case.config)
            seeds.append(case.seed)
            targets.append(
                workload.build_targets(case.config, case.seed)
                if workload is not None
                else None
            )
            probabilities.append(
                workload.request_probabilities(case.config)
                if workload is not None
                else None
            )
        kernel = BatchBusKernel(
            configs,
            seeds,
            targets=targets,
            request_probabilities=probabilities,
            collect_latency=cases[positions[0]].collect_latency,
            backend=cases[positions[0]].backend,
        )
        fleet_results = kernel.run(
            cases[positions[0]].cycles, warmup=cases[positions[0]].warmup
        )
        for position, result in zip(positions, fleet_results):
            results[position] = result
    return [results[position] for position in range(len(cases))]


def replicate_batch(
    config,
    replications: int,
    base_seed: int = 0,
    cycles: int = 20_000,
    workload: WorkloadSpec | None = None,
    confidence: float = 0.95,
) -> ReplicationResult:
    """Estimate EBW over independent replications with one batch call.

    The fleet-aggregated counterpart of
    :func:`repro.des.replications.replicate` with an
    :class:`~repro.parallel.workers.EbwTask`: the same canonical
    ``base_seed + i`` seed mapping, but the whole replication block
    advances in one lockstep kernel.  Estimates are the batch kernel's
    (reproducible in themselves, statistically equivalent to the exact
    kernels - not bit-identical).
    """
    seeds = replication_seeds(base_seed, replications)
    results = run_fleet(
        [
            SimulationCase(
                config, cycles, seed, workload=workload, kernel="batch"
            )
            for seed in seeds
        ]
    )
    return ReplicationResult(
        estimates=tuple(result.ebw for result in results),
        seeds=seeds,
        confidence=confidence,
    )
