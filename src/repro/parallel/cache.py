"""Content-addressed result cache for experiments and sweeps.

Repeated sweeps and benchmark runs recompute identical seeded
simulations; because every run in this library is deterministic in
``(configuration, seed, code version)``, those recomputations are pure
waste.  This cache keys a JSON-serializable value on the SHA-256 of a
canonical encoding of that triple:

* the *payload* - an arbitrary JSON-able mapping describing the work
  (experiment id, config fields, cycles, seeds, ...);
* the *version tag* - by default a digest over the library's own source
  files, so any code change invalidates every cached entry.

Concurrent store layout
-----------------------
Entries are single JSON files under a configurable directory (the
``REPRO_CACHE_DIR`` environment variable, defaulting to
``~/.cache/repro-single-bus``), fanned out into 256 two-hex-prefix
shard subdirectories (``ab/<key>.json`` for a key starting ``ab``) so a
fleet of workers hammering one shared cache never serializes on a
single directory's inode lock and directory listings stay tractable at
millions of entries.  Entries written by older releases directly under
the cache root (the flat layout) remain readable and are transparently
promoted into the sharded layout on first hit.

The store is safe for any number of concurrent readers and writers on
one filesystem:

* **Writes are crash-safe**: a unique temp file (pid plus a random
  token, so containerized workers sharing a pid namespace cannot
  collide) is fully written, then atomically renamed over the entry via
  ``os.replace``; a writer killed at any point leaves either the old
  entry, the new entry, or an orphaned ``*.tmp`` file - never a
  half-written entry.  Temp files are removed on any write failure, and
  :meth:`ResultCache.clear` sweeps orphans left by killed writers.
* **Same-key races are idempotent**: keys are content hashes, so two
  writers racing on one key write identical bytes and last-writer-wins
  is a no-op.
* **Reads never destroy healthy entries**: only a *proven-corrupt*
  entry (unparseable JSON or a failed integrity check) is evicted;
  transient I/O errors (NFS hiccups, permission races) count as plain
  misses and leave the entry alone for the next reader.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Iterator, Mapping

from repro.core.errors import ConfigurationError

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
"""Environment variable overriding the default cache directory."""

SHARD_PREFIX_LENGTH = 2
"""Hex characters of the key that name an entry's shard subdirectory."""

_SHARD_GLOB = "[0-9a-f]" * SHARD_PREFIX_LENGTH
_CODE_VERSION: str | None = None


def default_cache_dir() -> pathlib.Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-single-bus``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-single-bus"


def canonical_json(payload: Any) -> str:
    """A canonical, whitespace-free, key-sorted JSON encoding."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def config_payload(config) -> dict[str, Any]:
    """A stable JSON-able description of a :class:`SystemConfig`."""
    return {
        "processors": config.processors,
        "memories": config.memories,
        "memory_cycle_ratio": config.memory_cycle_ratio,
        "request_probability": config.request_probability,
        "priority": str(config.priority),
        "buffered": config.buffered,
        "buffer_depth": config.buffer_depth,
        "tie_break": str(config.tie_break),
    }


def case_payload(case) -> dict[str, Any]:
    """A stable JSON-able description of a full :class:`SimulationCase`.

    Covers every field that influences the simulated bytes - including
    the workload spec, so a hot-spot or trace run can never collide with
    a uniform-workload entry for the same configuration and seed
    (``workload=None`` and an explicit uniform spec intentionally share
    a key: they execute identically).

    A latency-collecting case additionally carries a **versioned
    metrics field** (``"metrics": ["latency@1"]``): its cached value
    holds latency-distribution payloads a metric-less entry lacks, so
    the two must never share a key - and a future change to the latency
    payload format bumps the version token, which retires every older
    metric-bearing entry instead of misreading it.  Cases without
    metrics keep the exact pre-metrics payload shape (no ``metrics``
    key at all).
    """
    from repro.workloads.spec import workload_payload

    payload = {
        "config": config_payload(case.config),
        "cycles": case.cycles,
        "seed": case.seed,
        "warmup": case.warmup,
        "workload": workload_payload(case.workload),
    }
    if getattr(case, "collect_latency", False):
        from repro.metrics import LATENCY_METRICS_TOKEN

        payload["metrics"] = [LATENCY_METRICS_TOKEN]
    return payload


def code_version_tag() -> str:
    """A digest over the ``repro`` package sources (computed once).

    Any edit to any module under :mod:`repro` changes the tag, which
    changes every cache key, which turns every lookup into a miss - the
    conservative invalidation rule for a reproduction whose numbers are
    supposed to track the code exactly.

    Lifetime contract: the digest is computed on first call and cached
    for the life of the process, which is correct for batch runs (the
    code cannot change under a running sweep's feet without also
    changing its results) but *stale* for long-lived processes - a
    sweep coordinator or test harness that outlives a source edit keeps
    stamping the old tag.  Such processes must call
    :func:`reset_code_version_tag` after any event that may have
    changed the installed sources (and the service coordinator does so
    on startup, so every serve run re-reads the tree).
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        digest = hashlib.sha256()
        package_root = pathlib.Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def reset_code_version_tag() -> None:
    """Drop the memoized :func:`code_version_tag` digest.

    The next :func:`code_version_tag` call re-hashes the package
    sources.  Call this from long-lived processes (coordinators, test
    harnesses, notebook kernels) whenever the installed code may have
    changed, so freshly-constructed caches never stamp a stale tag.
    """
    global _CODE_VERSION
    _CODE_VERSION = None


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    """Proven-corrupt entries deleted on read."""
    transient_errors: int = 0
    """Reads that failed on I/O (counted as misses, entry left alone)."""


class _Read:
    """Internal read outcomes distinguishing why an entry had no value."""

    ABSENT = "absent"
    TRANSIENT = "transient"
    CORRUPT = "corrupt"


class ResultCache:
    """Content-addressed JSON store for deterministic computation results.

    Safe for concurrent multi-process readers and writers sharing one
    directory; see the module docstring for the layout and the
    crash-safety contract.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        version_tag: str | None = None,
    ) -> None:
        self.cache_dir = pathlib.Path(
            cache_dir if cache_dir is not None else default_cache_dir()
        )
        self.version_tag = (
            version_tag if version_tag is not None else code_version_tag()
        )
        self.stats = CacheStats()
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot create cache directory {self.cache_dir}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def key(self, payload: Mapping[str, Any]) -> str:
        """The cache key for ``payload`` under this cache's version tag."""
        return fingerprint({"payload": payload, "version": self.version_tag})

    def path_for(self, key: str) -> pathlib.Path:
        """The sharded-layout file that does or would hold ``key``'s entry."""
        return self.cache_dir / key[:SHARD_PREFIX_LENGTH] / f"{key}.json"

    def legacy_path_for(self, key: str) -> pathlib.Path:
        """Where the pre-sharding flat layout kept ``key``'s entry."""
        return self.cache_dir / f"{key}.json"

    def _entry_paths(self) -> Iterator[pathlib.Path]:
        """Every entry file, sharded layout first, then legacy flat files."""
        yield from self.cache_dir.glob(f"{_SHARD_GLOB}/*.json")
        yield from self.cache_dir.glob("*.json")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any | None:
        """The stored value for ``key``, or ``None`` on a miss.

        Looks in the sharded layout first, then falls back to the
        legacy flat layout (entries written by older releases), which a
        hit transparently promotes into the sharded layout.  Only a
        *proven-corrupt* file (bad JSON, failed integrity check) is
        evicted; a file that merely cannot be read right now (transient
        I/O error) is left for the next reader and counted as a miss -
        deleting it would throw away work another process just paid for.
        """
        path = self.path_for(key)
        value, state = self._read_entry(path, key)
        if state is None:
            self.stats.hits += 1
            return value
        if state == _Read.ABSENT:
            legacy = self.legacy_path_for(key)
            value, state = self._read_entry(legacy, key)
            if state is None:
                self._promote(key, legacy, value)
                self.stats.hits += 1
                return value
            if state == _Read.CORRUPT:
                self._evict(legacy)
        elif state == _Read.CORRUPT:
            self._evict(path)
        self.stats.misses += 1
        return None

    def _read_entry(
        self, path: pathlib.Path, key: str
    ) -> tuple[Any, str | None]:
        """Read one entry file: ``(value, None)`` or ``(None, why-not)``."""
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None, _Read.ABSENT
        except OSError:
            self.stats.transient_errors += 1
            return None, _Read.TRANSIENT
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("cache entry fails integrity check")
            return entry["value"], None
        except (ValueError, KeyError, TypeError):
            return None, _Read.CORRUPT

    def _promote(
        self, key: str, legacy: pathlib.Path, value: Any
    ) -> None:
        """Move a flat-layout hit into the sharded layout (best effort).

        Writes the sharded entry first, then unlinks the flat file, so
        a concurrent reader always finds one complete copy; any I/O
        failure simply leaves the entry where it was.
        """
        try:
            self._write(key, value)
            legacy.unlink(missing_ok=True)
        except (OSError, ConfigurationError):
            pass

    def put(self, key: str, value: Any) -> pathlib.Path:
        """Atomically store a JSON-serializable ``value`` under ``key``.

        Crash-safe and race-safe: the entry is staged in a uniquely
        named temp file (pid + random token) inside the target shard
        directory and renamed into place with ``os.replace``; the temp
        file is removed on any failure, so a full disk or a killed
        worker can leak at worst an empty ``*.tmp`` that
        :meth:`clear` sweeps.  Two processes racing on one key write
        identical content (keys are content hashes), so whichever
        rename lands last changes nothing.

        ``None`` is rejected: :meth:`get` returns ``None`` for a miss,
        so a stored null could never be distinguished from one.
        """
        if value is None:
            raise ConfigurationError(
                "cannot cache None: a stored null is indistinguishable "
                "from a cache miss"
            )
        path = self._write(key, value)
        self.stats.stores += 1
        return path

    def _write(self, key: str, value: Any) -> pathlib.Path:
        path = self.path_for(key)
        entry = {"key": key, "version": self.version_tag, "value": value}
        encoded = json.dumps(entry, sort_keys=True, indent=None)
        path.parent.mkdir(parents=True, exist_ok=True)
        token = os.urandom(4).hex()
        temp = path.with_name(f".{path.name}.{os.getpid()}.{token}.tmp")
        try:
            temp.write_text(encoded, encoding="utf-8")
            os.replace(temp, path)
        finally:
            temp.unlink(missing_ok=True)
        return path

    def get_many(self, keys) -> dict[str, Any]:
        """Probe many keys at once; returns ``{key: value}`` for hits only.

        The bulk front door for sweep planners: one call resolves every
        already-cached unit of a compiled sweep before any dispatch.
        Repeated keys (replication-deduplicated analytic units) are
        probed once - one hit or one miss in :attr:`stats` per *unique*
        key, matching what the per-unit loop it replaces would have
        charged after its own dedup.  Misses are simply absent from the
        result; per-key semantics (legacy promotion, corrupt eviction,
        transient-as-miss) are exactly those of :meth:`get`.
        """
        found: dict[str, Any] = {}
        probed: set[str] = set()
        for key in keys:
            if key in probed:
                continue
            probed.add(key)
            value = self.get(key)
            if value is not None:
                found[key] = value
        return found

    def lookup(self, payload: Mapping[str, Any]) -> Any | None:
        """:meth:`get` keyed directly on a payload mapping."""
        return self.get(self.key(payload))

    def store(self, payload: Mapping[str, Any], value: Any) -> pathlib.Path:
        """:meth:`put` keyed directly on a payload mapping."""
        return self.put(self.key(payload), value)

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Covers both layouts and also sweeps orphaned ``*.tmp`` staging
        files left behind by writers killed mid-store (orphans do not
        count toward the returned total - they were never entries).
        """
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deleters
                pass
        self.sweep_orphans()
        return removed

    def sweep_orphans(self) -> int:
        """Remove ``*.tmp`` staging files abandoned by killed writers.

        Safe to run while other processes are writing only in the sense
        that an *in-flight* temp file swept here cleanly fails that
        writer's ``os.replace`` (the entry is simply not stored, never
        corrupted); intended for maintenance points such as
        :meth:`clear` or service startup, not for hot loops.
        """
        swept = 0
        for pattern in (".*.tmp", f"{_SHARD_GLOB}/.*.tmp"):
            for orphan in self.cache_dir.glob(pattern):
                try:
                    orphan.unlink()
                    swept += 1
                except OSError:  # pragma: no cover - racing deleters
                    pass
        return swept

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def _evict(self, path: pathlib.Path) -> None:
        self.stats.evictions += 1
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deleters
            pass
