"""Content-addressed result cache for experiments and sweeps.

Repeated sweeps and benchmark runs recompute identical seeded
simulations; because every run in this library is deterministic in
``(configuration, seed, code version)``, those recomputations are pure
waste.  This cache keys a JSON-serializable value on the SHA-256 of a
canonical encoding of that triple:

* the *payload* - an arbitrary JSON-able mapping describing the work
  (experiment id, config fields, cycles, seeds, ...);
* the *version tag* - by default a digest over the library's own source
  files, so any code change invalidates every cached entry.

Entries are single JSON files under a configurable directory (the
``REPRO_CACHE_DIR`` environment variable, defaulting to
``~/.cache/repro-single-bus``).  Writes are atomic (temp file +
``os.replace``) and corrupted or unreadable entries are treated as
misses and deleted, so a damaged cache can never poison results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Mapping

from repro.core.errors import ConfigurationError

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
"""Environment variable overriding the default cache directory."""

_CODE_VERSION: str | None = None


def default_cache_dir() -> pathlib.Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-single-bus``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-single-bus"


def canonical_json(payload: Any) -> str:
    """A canonical, whitespace-free, key-sorted JSON encoding."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def config_payload(config) -> dict[str, Any]:
    """A stable JSON-able description of a :class:`SystemConfig`."""
    return {
        "processors": config.processors,
        "memories": config.memories,
        "memory_cycle_ratio": config.memory_cycle_ratio,
        "request_probability": config.request_probability,
        "priority": str(config.priority),
        "buffered": config.buffered,
        "buffer_depth": config.buffer_depth,
        "tie_break": str(config.tie_break),
    }


def case_payload(case) -> dict[str, Any]:
    """A stable JSON-able description of a full :class:`SimulationCase`.

    Covers every field that influences the simulated bytes - including
    the workload spec, so a hot-spot or trace run can never collide with
    a uniform-workload entry for the same configuration and seed
    (``workload=None`` and an explicit uniform spec intentionally share
    a key: they execute identically).

    A latency-collecting case additionally carries a **versioned
    metrics field** (``"metrics": ["latency@1"]``): its cached value
    holds latency-distribution payloads a metric-less entry lacks, so
    the two must never share a key - and a future change to the latency
    payload format bumps the version token, which retires every older
    metric-bearing entry instead of misreading it.  Cases without
    metrics keep the exact pre-metrics payload shape (no ``metrics``
    key at all).
    """
    from repro.workloads.spec import workload_payload

    payload = {
        "config": config_payload(case.config),
        "cycles": case.cycles,
        "seed": case.seed,
        "warmup": case.warmup,
        "workload": workload_payload(case.workload),
    }
    if getattr(case, "collect_latency", False):
        from repro.metrics import LATENCY_METRICS_TOKEN

        payload["metrics"] = [LATENCY_METRICS_TOKEN]
    return payload


def code_version_tag() -> str:
    """A digest over the ``repro`` package sources (computed once).

    Any edit to any module under :mod:`repro` changes the tag, which
    changes every cache key, which turns every lookup into a miss - the
    conservative invalidation rule for a reproduction whose numbers are
    supposed to track the code exactly.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        digest = hashlib.sha256()
        package_root = pathlib.Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    """Corrupted entries deleted on read."""


class ResultCache:
    """Content-addressed JSON store for deterministic computation results."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        version_tag: str | None = None,
    ) -> None:
        self.cache_dir = pathlib.Path(
            cache_dir if cache_dir is not None else default_cache_dir()
        )
        self.version_tag = (
            version_tag if version_tag is not None else code_version_tag()
        )
        self.stats = CacheStats()
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot create cache directory {self.cache_dir}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def key(self, payload: Mapping[str, Any]) -> str:
        """The cache key for ``payload`` under this cache's version tag."""
        return fingerprint({"payload": payload, "version": self.version_tag})

    def path_for(self, key: str) -> pathlib.Path:
        """The file that does or would hold ``key``'s entry."""
        return self.cache_dir / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any | None:
        """The stored value for ``key``, or ``None`` on a miss.

        A file that cannot be read, parsed, or that fails its integrity
        check counts as a miss; the damaged entry is removed so the next
        store rebuilds it.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.misses += 1
            self._evict(path)
            return None
        try:
            entry = json.loads(raw)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("cache entry fails integrity check")
            value = entry["value"]
        except (ValueError, KeyError, TypeError):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> pathlib.Path:
        """Atomically store a JSON-serializable ``value`` under ``key``.

        ``None`` is rejected: :meth:`get` returns ``None`` for a miss,
        so a stored null could never be distinguished from one.
        """
        if value is None:
            raise ConfigurationError(
                "cannot cache None: a stored null is indistinguishable "
                "from a cache miss"
            )
        path = self.path_for(key)
        entry = {"key": key, "version": self.version_tag, "value": value}
        encoded = json.dumps(entry, sort_keys=True, indent=None)
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temp.write_text(encoded, encoding="utf-8")
        os.replace(temp, path)
        self.stats.stores += 1
        return path

    def lookup(self, payload: Mapping[str, Any]) -> Any | None:
        """:meth:`get` keyed directly on a payload mapping."""
        return self.get(self.key(payload))

    def store(self, payload: Mapping[str, Any], value: Any) -> pathlib.Path:
        """:meth:`put` keyed directly on a payload mapping."""
        return self.put(self.key(payload), value)

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deleters
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def _evict(self, path: pathlib.Path) -> None:
        self.stats.evictions += 1
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deleters
            pass
