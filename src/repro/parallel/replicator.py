"""Fan independent replications out over a process pool.

The serial reference is :func:`repro.des.replications.replicate`: seeds
``base_seed + i`` for ``i`` in ``range(replications)``, one estimate per
seed, estimates ordered by seed.  :class:`ParallelReplicator` reproduces
exactly that mapping - it obtains the seed tuple from the same
:func:`~repro.des.replications.replication_seeds` helper the serial path
uses, evaluates the estimator for each seed in worker processes, and
reassembles the estimates in seed order.  Because every replication is
an independent deterministic function of its seed (see
:mod:`repro.des.rng`), the resulting :class:`ReplicationResult` is
bit-for-bit identical to the serial one.

The estimator must be picklable (a module-level function or a dataclass
task such as :class:`repro.parallel.workers.EbwTask`); closures are
rejected up front with a :class:`ConfigurationError` rather than failing
obscurely inside the pool.
"""

from __future__ import annotations

import dataclasses
import pickle

from repro.core.errors import ConfigurationError
from repro.des.replications import (
    Estimator,
    LatencyReplication,
    ReplicationResult,
    replication_seeds,
)
from repro.parallel.pool import map_ordered, resolve_workers


@dataclasses.dataclass(frozen=True)
class ParallelReplicator:
    """Runs fixed-count independent replications on a worker pool.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` uses the CPU count.  ``1`` computes
        in-process (still producing identical results).
    mp_context:
        Optional :mod:`multiprocessing` context (e.g.
        ``multiprocessing.get_context("spawn")``).  The default is the
        platform's start method; all shipped tasks are spawn-safe.
    """

    max_workers: int | None = None
    mp_context: object = None

    def run(
        self,
        estimator: Estimator,
        replications: int,
        base_seed: int = 0,
        confidence: float = 0.95,
    ) -> ReplicationResult:
        """Replicate ``estimator`` exactly as the serial path would."""
        seeds = replication_seeds(base_seed, replications)
        if min(resolve_workers(self.max_workers), replications) > 1:
            # Only an actual pool needs a picklable estimator; with one
            # worker the map runs in-process and any callable works,
            # matching the serial contract.
            self._require_picklable(estimator)
        estimates = tuple(
            map_ordered(
                estimator,
                seeds,
                max_workers=self.max_workers,
                mp_context=self.mp_context,
            )
        )
        return ReplicationResult(
            estimates=estimates, seeds=seeds, confidence=confidence
        )

    def run_latency(
        self,
        estimator,
        replications: int,
        base_seed: int = 0,
    ) -> LatencyReplication:
        """Fan latency-report replications over the pool.

        ``estimator`` maps a seed to a
        :class:`~repro.metrics.LatencyReport` (e.g.
        :class:`repro.parallel.workers.LatencyTask`).  Per-seed reports
        come back in seed order and merge with the exactly-associative
        summary merge, so the result equals
        :func:`repro.des.replications.replicate_latency` bit-for-bit
        regardless of the worker count.
        """
        seeds = replication_seeds(base_seed, replications)
        if min(resolve_workers(self.max_workers), replications) > 1:
            self._require_picklable(estimator)
        reports = tuple(
            map_ordered(
                estimator,
                seeds,
                max_workers=self.max_workers,
                mp_context=self.mp_context,
            )
        )
        return LatencyReplication(reports=reports, seeds=seeds)

    @staticmethod
    def _require_picklable(estimator: Estimator) -> None:
        try:
            pickle.dumps(estimator)
        except Exception as exc:
            raise ConfigurationError(
                "parallel replication requires a picklable estimator "
                "(a module-level function or a task object such as "
                "repro.parallel.EbwTask); got "
                f"{estimator!r}: {exc}"
            ) from exc
