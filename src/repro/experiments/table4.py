"""Table 4: buffered-system simulation, priority to processors, n = 8.

The registered ``table4`` scenario owns the grid; this module maps its
compiled unit results into the paper's table layout.
"""

from __future__ import annotations

import dataclasses

from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ReplicationPlan


def run(
    cycles: int = 100_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Simulate the Section 6 buffered machine over the Table 4 grid."""
    spec = dataclasses.replace(
        get_scenario("table4"), cycles=cycles, plan=ReplicationPlan(1, seed)
    )
    measured: dict[tuple[str, str], float] = {}
    reference: dict[tuple[str, str], float] = {}
    for result in run_units(compile_scenario(spec), jobs=jobs):
        m = result.unit.config.memories
        r = result.unit.config.memory_cycle_ratio
        key = (f"m={m}", f"r={r}")
        measured[key] = result.ebw
        reference[key] = paper_data.TABLE4_BUFFERED_SIMULATION[(m, r)]
    return ExperimentResult(
        experiment_id="table4",
        title="Table 4 - EBW values, priority to processors, buffered "
        "system, n = 8",
        row_label="m",
        column_label="r",
        rows=tuple(f"m={m}" for m in paper_data.TABLE4_M_VALUES),
        columns=tuple(f"r={r}" for r in paper_data.TABLE4_R_VALUES),
        measured=measured,
        reference=reference,
        notes="stochastic comparison against the paper's simulated values",
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="table4",
        title="Buffered system simulation",
        paper_artifact="Table 4",
        run=run,
    )
)
