"""Table 4: buffered-system simulation, priority to processors, n = 8."""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.experiments import paper_data
from repro.experiments.grids import simulate_mr_grid
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register


def _table4_config(m: int, r: int) -> SystemConfig:
    return SystemConfig(
        processors=paper_data.TABLE4_PROCESSORS,
        memories=m,
        memory_cycle_ratio=r,
        priority=Priority.PROCESSORS,
        buffered=True,
    )


def run(
    cycles: int = 100_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Simulate the Section 6 buffered machine over the Table 4 grid."""
    measured: dict[tuple[str, str], float] = {}
    reference: dict[tuple[str, str], float] = {}
    for (m, r), result in simulate_mr_grid(
        paper_data.TABLE4_M_VALUES,
        paper_data.TABLE4_R_VALUES,
        _table4_config,
        cycles,
        seed,
        jobs=jobs,
    ):
        key = (f"m={m}", f"r={r}")
        measured[key] = result.ebw
        reference[key] = paper_data.TABLE4_BUFFERED_SIMULATION[(m, r)]
    return ExperimentResult(
        experiment_id="table4",
        title="Table 4 - EBW values, priority to processors, buffered "
        "system, n = 8",
        row_label="m",
        column_label="r",
        rows=tuple(f"m={m}" for m in paper_data.TABLE4_M_VALUES),
        columns=tuple(f"r={r}" for r in paper_data.TABLE4_R_VALUES),
        measured=measured,
        reference=reference,
        notes="stochastic comparison against the paper's simulated values",
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="table4",
        title="Buffered system simulation",
        paper_artifact="Table 4",
        run=run,
    )
)
