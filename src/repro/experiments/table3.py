"""Table 3: priority to processors - simulation (a) and reduced chain (b).

Both halves run through the declarative scenario subsystem: the
registered ``table3a`` (simulation) and ``table3b`` (reduced Markov
chain) scenarios own the grid, and this module only maps compiled unit
results into the paper's table layout.
"""

from __future__ import annotations

import dataclasses

from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ReplicationPlan


def run_simulation(
    cycles: int = 100_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Table 3(a): simulate every (m, r) cell with n = 8, p = 1."""
    spec = dataclasses.replace(
        get_scenario("table3a"), cycles=cycles, plan=ReplicationPlan(1, seed)
    )
    measured: dict[tuple[str, str], float] = {}
    reference: dict[tuple[str, str], float] = {}
    for result in run_units(compile_scenario(spec), jobs=jobs):
        m = result.unit.config.memories
        r = result.unit.config.memory_cycle_ratio
        key = (f"m={m}", f"r={r}")
        measured[key] = result.ebw
        reference[key] = paper_data.TABLE3A_SIMULATION[(m, r)]
    return ExperimentResult(
        experiment_id="table3a",
        title="Table 3(a) - EBW simulation, priority to processors, n = 8",
        row_label="m",
        column_label="r",
        rows=tuple(f"m={m}" for m in paper_data.TABLE3_M_VALUES),
        columns=tuple(f"r={r}" for r in paper_data.TABLE3_R_VALUES),
        measured=measured,
        reference=reference,
        notes="stochastic comparison; the paper's (4, 8) entry breaks its "
        "own monotone trend and is likely a 1985 sampling outlier",
    )


def run_model() -> ExperimentResult:
    """Table 3(b): evaluate the reconstructed Section 4 reduced chain."""
    spec = get_scenario("table3b")
    measured: dict[tuple[str, str], float] = {}
    reference: dict[tuple[str, str], float] = {}
    for result in run_units(compile_scenario(spec)):
        m = result.unit.config.memories
        r = result.unit.config.memory_cycle_ratio
        key = (f"m={m}", f"r={r}")
        measured[key] = result.ebw
        reference[key] = paper_data.TABLE3B_APPROX_MODEL[(m, r)]
    return ExperimentResult(
        experiment_id="table3b",
        title="Table 3(b) - EBW approximate model, priority to processors, "
        "n = 8",
        row_label="m",
        column_label="r",
        rows=tuple(f"m={m}" for m in paper_data.TABLE3_M_VALUES),
        columns=tuple(f"r={r}" for r in paper_data.TABLE3_R_VALUES),
        measured=measured,
        reference=reference,
        notes="transition table reconstructed from the OCR-damaged scan "
        "(see DESIGN.md); both chains approximate the same simulation "
        "within a few percent",
    )


SPEC_A = register(
    ExperimentSpec(
        experiment_id="table3a",
        title="Simulation, priority to processors",
        paper_artifact="Table 3(a)",
        run=run_simulation,
    )
)

SPEC_B = register(
    ExperimentSpec(
        experiment_id="table3b",
        title="Reduced Markov chain, priority to processors",
        paper_artifact="Table 3(b)",
        run=run_model,
    )
)
