"""Table 3: priority to processors - simulation (a) and reduced chain (b)."""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.experiments import paper_data
from repro.experiments.grids import simulate_mr_grid
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.models.processor_priority import processor_priority_ebw


def _table3_config(m: int, r: int) -> SystemConfig:
    return SystemConfig(
        processors=paper_data.TABLE3_PROCESSORS,
        memories=m,
        memory_cycle_ratio=r,
        priority=Priority.PROCESSORS,
    )


def run_simulation(
    cycles: int = 100_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Table 3(a): simulate every (m, r) cell with n = 8, p = 1."""
    measured: dict[tuple[str, str], float] = {}
    reference: dict[tuple[str, str], float] = {}
    for (m, r), result in simulate_mr_grid(
        paper_data.TABLE3_M_VALUES,
        paper_data.TABLE3_R_VALUES,
        _table3_config,
        cycles,
        seed,
        jobs=jobs,
    ):
        key = (f"m={m}", f"r={r}")
        measured[key] = result.ebw
        reference[key] = paper_data.TABLE3A_SIMULATION[(m, r)]
    return ExperimentResult(
        experiment_id="table3a",
        title="Table 3(a) - EBW simulation, priority to processors, n = 8",
        row_label="m",
        column_label="r",
        rows=tuple(f"m={m}" for m in paper_data.TABLE3_M_VALUES),
        columns=tuple(f"r={r}" for r in paper_data.TABLE3_R_VALUES),
        measured=measured,
        reference=reference,
        notes="stochastic comparison; the paper's (4, 8) entry breaks its "
        "own monotone trend and is likely a 1985 sampling outlier",
    )


def run_model() -> ExperimentResult:
    """Table 3(b): evaluate the reconstructed Section 4 reduced chain."""
    measured: dict[tuple[str, str], float] = {}
    reference: dict[tuple[str, str], float] = {}
    for m in paper_data.TABLE3_M_VALUES:
        for r in paper_data.TABLE3_R_VALUES:
            config = SystemConfig(
                processors=paper_data.TABLE3_PROCESSORS,
                memories=m,
                memory_cycle_ratio=r,
                priority=Priority.PROCESSORS,
            )
            key = (f"m={m}", f"r={r}")
            measured[key] = processor_priority_ebw(config).ebw
            reference[key] = paper_data.TABLE3B_APPROX_MODEL[(m, r)]
    return ExperimentResult(
        experiment_id="table3b",
        title="Table 3(b) - EBW approximate model, priority to processors, "
        "n = 8",
        row_label="m",
        column_label="r",
        rows=tuple(f"m={m}" for m in paper_data.TABLE3_M_VALUES),
        columns=tuple(f"r={r}" for r in paper_data.TABLE3_R_VALUES),
        measured=measured,
        reference=reference,
        notes="transition table reconstructed from the OCR-damaged scan "
        "(see DESIGN.md); both chains approximate the same simulation "
        "within a few percent",
    )


SPEC_A = register(
    ExperimentSpec(
        experiment_id="table3a",
        title="Simulation, priority to processors",
        paper_artifact="Table 3(a)",
        run=run_simulation,
    )
)

SPEC_B = register(
    ExperimentSpec(
        experiment_id="table3b",
        title="Reduced Markov chain, priority to processors",
        paper_artifact="Table 3(b)",
        run=run_model,
    )
)
