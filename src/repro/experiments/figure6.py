"""Figure 6: buffered processor utilisation EBW/(n p) vs p, n = 8, m = 16.

Companion of Figure 3 for the buffered system.  The paper notes that the
positive influence of buffering fades as p decreases (memory interference
is already low at light load).
"""

from __future__ import annotations

import dataclasses

from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ReplicationPlan


def run(
    cycles: int = 60_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate the Figure 6 curve family (buffered system)."""
    spec = dataclasses.replace(
        get_scenario("figure6"), cycles=cycles, plan=ReplicationPlan(1, seed)
    )
    # Keyed on each unit's own (r, p) so axis reordering cannot scramble
    # the curves.
    utilization = {
        (
            result.unit.config.memory_cycle_ratio,
            result.unit.config.request_probability,
        ): result.processor_utilization
        for result in run_units(compile_scenario(spec), jobs=jobs)
    }
    measured: dict[tuple[str, str], float] = {}
    rows = []
    columns = tuple(f"p={p:g}" for p in paper_data.FIGURE6_P_VALUES)
    for r in paper_data.FIGURE6_R_VALUES:
        label = f"r={r}"
        rows.append(label)
        for p in paper_data.FIGURE6_P_VALUES:
            measured[(label, f"p={p:g}")] = utilization[(r, p)]
    return ExperimentResult(
        experiment_id="figure6",
        title="Figure 6 - Processor utilisation EBW/(n p), buffered, "
        "n = 8, m = 16",
        row_label="curve",
        column_label="p",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="expected shape: like Figure 3 but uniformly higher; the "
        "buffering advantage shrinks as p decreases",
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="figure6",
        title="Processor utilisation vs p (buffered)",
        paper_artifact="Figure 6",
        run=run,
    )
)
