"""Figure 6: buffered processor utilisation EBW/(n p) vs p, n = 8, m = 16.

Companion of Figure 3 for the buffered system.  The paper notes that the
positive influence of buffering fades as p decreases (memory interference
is already low at light load).
"""

from __future__ import annotations

from repro.analysis.sweeps import sweep_p
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register


def run(
    cycles: int = 60_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate the Figure 6 curve family (buffered system)."""
    measured: dict[tuple[str, str], float] = {}
    rows = []
    columns = tuple(f"p={p:g}" for p in paper_data.FIGURE6_P_VALUES)
    for r in paper_data.FIGURE6_R_VALUES:
        base = SystemConfig(
            processors=paper_data.FIGURE6_PROCESSORS,
            memories=paper_data.FIGURE6_MEMORIES,
            memory_cycle_ratio=r,
            priority=Priority.PROCESSORS,
            buffered=True,
        )
        label = f"r={r}"
        rows.append(label)
        sweep = sweep_p(
            base,
            paper_data.FIGURE6_P_VALUES,
            label=label,
            cycles=cycles,
            seed=seed,
            max_workers=jobs,
        )
        for p, utilization in zip(
            sweep.axis_values(), sweep.processor_utilization_values()
        ):
            measured[(label, f"p={p:g}")] = utilization
    return ExperimentResult(
        experiment_id="figure6",
        title="Figure 6 - Processor utilisation EBW/(n p), buffered, "
        "n = 8, m = 16",
        row_label="curve",
        column_label="p",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="expected shape: like Figure 3 but uniformly higher; the "
        "buffering advantage shrinks as p decreases",
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="figure6",
        title="Processor utilisation vs p (buffered)",
        paper_artifact="Figure 6",
        run=run,
    )
)
