"""Command-line experiment runner.

Usage::

    python -m repro.experiments                # list experiments
    python -m repro.experiments all            # run everything
    python -m repro.experiments all --jobs 8   # ... on 8 worker processes
    python -m repro.experiments table1 figure5
    python -m repro.experiments figure5 --chart
    python -m repro.experiments scenario       # list declarative scenarios
    python -m repro.experiments scenario figure2 --shard 1/4 --jobs 8
    python -m repro.experiments scenario figure2 --workers 4
    python -m repro.experiments sweep-serve figure2 --workers 4
    python -m repro.experiments sweep-work     # one stdio protocol worker
    python -m repro.experiments cache sweep    # sweep orphaned tmp files

Each experiment prints the measured grid next to the paper's published
values (when the paper printed any) in the layout of the original
tables; ``--chart`` additionally renders figure experiments as ASCII
curves.

Parallelism and caching
-----------------------
``--jobs N`` fans experiments out over ``N`` worker processes (and, for
a single experiment that supports it, parallelises its internal sweep
grid).  Results are deterministic functions of ``(experiment, seed,
cycles)``, so the report bytes are identical whatever ``N`` is.

Completed results are cached by default under ``$REPRO_CACHE_DIR``
(``~/.cache/repro-single-bus`` if unset), keyed on a content hash of the
experiment id, its parameters and the library source code - re-running
the same command serves the stored grid instantly, and any code change
invalidates the cache automatically.  Disable with ``--no-cache``.
Timings go to stderr so stdout stays byte-reproducible.

Scenarios
---------
``repro-experiments scenario`` enters the declarative scenario
subsystem (:mod:`repro.scenarios`): run a registered scenario or a
TOML/JSON spec file, optionally as one shard of a multi-machine sweep
(``--shard i/k``); see :mod:`repro.scenarios.cli`.

The sweep service
-----------------
``sweep-serve`` runs a scenario through the distributed sweep service
(:mod:`repro.service`): a coordinator leases contiguous unit ranges to
``--workers N`` subprocess workers (each a ``sweep-work`` process
speaking newline-delimited JSON over stdio), retries the leases of
dead or straggling workers, and merges the streamed results into
stdout byte-identical to the serial ``scenario`` run.  ``scenario
--workers N`` is the same machinery behind the familiar subcommand.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Iterator, Sequence

from repro.experiments.asciichart import render_chart
from repro.experiments.formatting import format_result, format_series
from repro.experiments.registry import (
    ExperimentResult,
    ExperimentSpec,
    all_experiments,
    get,
)

_SERIES_EXPERIMENTS = {"figure2", "figure3", "figure5", "figure6"}

_FAST_CYCLES = 6_000
"""Simulation length used by ``--fast`` (smoke-test quality)."""


def list_experiments() -> str:
    """Human-readable table of everything in the registry."""
    lines = ["available experiments:"]
    for spec in all_experiments():
        lines.append(
            f"  {spec.experiment_id:<14} {spec.paper_artifact:<22} {spec.title}"
        )
    return "\n".join(lines)


def iter_reports(
    ids: Sequence[str],
    fast: bool = False,
    chart: bool = False,
    jobs: int = 1,
    cache=None,
) -> Iterator[str]:
    """Yield one formatted report per experiment, as each completes."""
    for outcome in _run_outcomes(ids, fast=fast, chart=chart, jobs=jobs, cache=cache):
        yield outcome.report


def run_experiments(
    ids: Sequence[str],
    fast: bool = False,
    chart: bool = False,
    jobs: int = 1,
    cache=None,
) -> str:
    """Run the named experiments (or all) and return the full report."""
    return "\n\n".join(
        iter_reports(ids, fast=fast, chart=chart, jobs=jobs, cache=cache)
    )


def _accepts_cycles(experiment_id: str) -> bool:
    return experiment_id not in {"table1", "table2", "table3b"}


def _accepts_jobs(spec: ExperimentSpec) -> bool:
    try:
        return "jobs" in inspect.signature(spec.run).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (also installed as ``repro-experiments``)."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "scenario":
        from repro.scenarios.cli import main as scenario_main

        return scenario_main(argv[1:])
    if argv and argv[0] == "sweep-serve":
        from repro.service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "sweep-work":
        from repro.service.cli import work_main

        return work_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the ISCA 1985 "
        "multiplexed single-bus paper.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids to run (or 'all'); with no ids, lists them",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use short simulations (smoke test quality)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figure experiments as ASCII charts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for experiment execution (default 1)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached results for identical runs (default on; "
        "--no-cache disables)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro-single-bus)",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="additionally write a markdown paper-vs-measured report",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer")
    if not args.ids:
        print(list_experiments())
        return 0
    cache = None
    if args.cache:
        from repro.core.errors import ConfigurationError
        from repro.parallel.cache import ResultCache

        try:
            cache = ResultCache(cache_dir=args.cache_dir)
        except (ConfigurationError, OSError) as exc:
            # A broken cache location must never block the science run.
            print(f"warning: caching disabled: {exc}", file=sys.stderr)
    collected = []
    for outcome in _run_outcomes(
        args.ids, fast=args.fast, chart=args.chart, jobs=args.jobs, cache=cache
    ):
        collected.append(outcome.result)
        print(outcome.report, flush=True)
        print(flush=True)
        origin = "cached" if outcome.cached else f"{outcome.elapsed:.1f}s"
        print(f"[{outcome.result.experiment_id}: {origin}]", file=sys.stderr)
    if args.markdown:
        from repro.experiments.report import write_markdown_report

        path = write_markdown_report(
            collected, args.markdown, title="Paper-vs-measured report"
        )
        print(f"markdown report written to {path}")
    return 0


def cache_main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro-experiments cache ...`` maintenance.

    ``cache sweep`` removes the ``*.tmp`` staging files abandoned by
    writers killed mid-store and reports the store's entry count and
    on-disk size - the maintenance that used to require a destructive
    :meth:`~repro.parallel.cache.ResultCache.clear`.  Entries are never
    touched.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description="Inspect and maintain the shared result cache "
        "without deleting any entries.",
    )
    parser.add_argument(
        "action",
        choices=("sweep",),
        help="'sweep' unlinks orphaned *.tmp staging files (abandoned "
        "by killed writers) and prints store statistics; cached "
        "entries are left untouched",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro-single-bus)",
    )
    args = parser.parse_args(argv)
    from repro.core.errors import ConfigurationError
    from repro.parallel.cache import ResultCache

    try:
        cache = ResultCache(cache_dir=args.cache_dir)
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    swept = cache.sweep_orphans()
    entries = 0
    size = 0
    for path in cache._entry_paths():
        try:
            size += path.stat().st_size
            entries += 1
        except OSError:  # racing deleters: the entry just vanished
            pass
    print(
        f"[cache {cache.cache_dir}: swept {swept} orphaned tmp "
        f"file{'s' if swept != 1 else ''}, {entries} "
        f"entr{'ies' if entries != 1 else 'y'} kept, {size} bytes]"
    )
    return 0


class _Outcome:
    """One finished experiment: result, rendered report, provenance."""

    __slots__ = ("result", "report", "elapsed", "cached")

    def __init__(
        self,
        result: ExperimentResult,
        report: str,
        elapsed: float,
        cached: bool,
    ) -> None:
        self.result = result
        self.report = report
        self.elapsed = elapsed
        self.cached = cached


def _run_registered(item: tuple[str, dict]) -> tuple[ExperimentResult, float]:
    """Pool worker: run one registered experiment by id (spawn-safe).

    Returns the result with its own wall time, so pooled runs report
    true per-experiment timings.
    """
    experiment_id, kwargs = item
    started = time.time()
    result = get(experiment_id).run(**kwargs)
    return result, time.time() - started


def _run_outcomes(
    ids: Sequence[str],
    fast: bool = False,
    chart: bool = False,
    jobs: int = 1,
    cache=None,
) -> Iterator[_Outcome]:
    """Run experiments (with optional pool and cache), in registry order."""
    if not ids or list(ids) == ["all"]:
        specs = list(all_experiments())
    else:
        specs = [get(experiment_id) for experiment_id in ids]

    run_kwargs: list[dict] = []
    for spec in specs:
        kwargs: dict = {}
        if fast and _accepts_cycles(spec.experiment_id):
            kwargs["cycles"] = _FAST_CYCLES
        run_kwargs.append(kwargs)

    # Cache lookups first: the key covers the experiment id and its
    # parameters (never the worker count - jobs must not change bytes).
    results: dict[int, tuple[ExperimentResult, float, bool]] = {}
    if cache is not None:
        from repro.core.errors import ExperimentError
        from repro.experiments.serialization import result_from_payload

        for index, (spec, kwargs) in enumerate(zip(specs, run_kwargs)):
            payload = cache.lookup(_cache_payload(spec, kwargs))
            if payload is not None:
                try:
                    results[index] = (result_from_payload(payload), 0.0, True)
                except ExperimentError:
                    # Malformed payload: treat as a miss and recompute.
                    pass

    pending = [index for index in range(len(specs)) if index not in results]

    # Pooled execution streams: every uncached experiment is submitted
    # up front, but each report is yielded as soon as its (in-order)
    # result arrives, matching the serial path's incremental output.
    executor = None
    futures: dict[int, object] = {}
    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor

        # Workers beyond the experiment count are handed down to each
        # experiment's own grid (the cache payload keeps the jobs-free
        # kwargs, so worker counts never reach a cache key).
        share = max(1, jobs // len(pending))
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))
            )
            for index in pending:
                kwargs = dict(run_kwargs[index])
                if share > 1 and _accepts_jobs(specs[index]):
                    kwargs["jobs"] = share
                futures[index] = executor.submit(
                    _run_registered, (specs[index].experiment_id, kwargs)
                )
        except (OSError, ValueError, ImportError):
            # Pool-less platform (CPython raises ImportError when POSIX
            # semaphores are missing): fall back to the serial loop below.
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            executor = None
            futures = {}

    try:
        for index in range(len(specs)):
            spec = specs[index]
            if index in results:
                result, elapsed, cached = results[index]
            elif index in futures:
                result, elapsed = _pooled_result(
                    futures[index], spec, run_kwargs[index]
                )
                cached = False
            else:
                kwargs = dict(run_kwargs[index])
                if jobs > 1 and _accepts_jobs(spec):
                    kwargs["jobs"] = jobs
                started = time.time()
                result = spec.run(**kwargs)
                elapsed = time.time() - started
                cached = False
            if cache is not None and not cached:
                _store_guarded(cache, _cache_payload(spec, run_kwargs[index]), result)
            yield _Outcome(result, _format(spec, result, chart), elapsed, cached)
    finally:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


def _pooled_result(future, spec: ExperimentSpec, kwargs: dict):
    """Collect one pooled experiment, recomputing in-process if the
    pool died underneath it."""
    from concurrent.futures.process import BrokenProcessPool

    try:
        return future.result()
    except BrokenProcessPool:
        return _run_registered((spec.experiment_id, kwargs))


def _store_guarded(cache, payload: dict, result: ExperimentResult) -> None:
    """Cache a result; storage failures must never block the run."""
    from repro.core.errors import ConfigurationError
    from repro.experiments.serialization import result_to_payload

    try:
        cache.store(payload, result_to_payload(result))
    except (OSError, ConfigurationError) as exc:
        print(
            f"warning: could not cache {payload['experiment_id']}: {exc}",
            file=sys.stderr,
        )


def _cache_payload(spec: ExperimentSpec, kwargs: dict) -> dict:
    return {"experiment_id": spec.experiment_id, "kwargs": kwargs}


def _format(spec: ExperimentSpec, result: ExperimentResult, chart: bool) -> str:
    is_series = spec.experiment_id in _SERIES_EXPERIMENTS
    formatter = format_series if is_series else format_result
    report = formatter(result)
    if chart and is_series:
        report += "\n\n" + render_chart(result)
    return report


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
