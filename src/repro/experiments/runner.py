"""Command-line experiment runner.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments all        # run everything
    python -m repro.experiments table1 figure5
    python -m repro.experiments figure5 --chart

Each experiment prints the measured grid next to the paper's published
values (when the paper printed any) in the layout of the original
tables; ``--chart`` additionally renders figure experiments as ASCII
curves.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterator, Sequence

from repro.experiments.asciichart import render_chart
from repro.experiments.formatting import format_result, format_series
from repro.experiments.registry import all_experiments, get

_SERIES_EXPERIMENTS = {"figure2", "figure3", "figure5", "figure6"}


def list_experiments() -> str:
    """Human-readable table of everything in the registry."""
    lines = ["available experiments:"]
    for spec in all_experiments():
        lines.append(
            f"  {spec.experiment_id:<14} {spec.paper_artifact:<22} {spec.title}"
        )
    return "\n".join(lines)


def iter_reports(
    ids: Sequence[str], fast: bool = False, chart: bool = False
) -> Iterator[str]:
    """Yield one formatted report per experiment, as each completes."""
    for _, report in _reports_with_results(ids, fast=fast, chart=chart):
        yield report


def run_experiments(
    ids: Sequence[str], fast: bool = False, chart: bool = False
) -> str:
    """Run the named experiments (or all) and return the full report."""
    return "\n\n".join(iter_reports(ids, fast=fast, chart=chart))


def _accepts_cycles(experiment_id: str) -> bool:
    return experiment_id not in {"table1", "table2", "table3b"}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the ISCA 1985 "
        "multiplexed single-bus paper.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids to run (or 'all'); with no ids, lists them",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use short simulations (smoke test quality)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figure experiments as ASCII charts",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="additionally write a markdown paper-vs-measured report",
    )
    args = parser.parse_args(argv)
    if not args.ids:
        print(list_experiments())
        return 0
    collected = []
    for spec_result, report in _reports_with_results(
        args.ids, fast=args.fast, chart=args.chart
    ):
        collected.append(spec_result)
        print(report, flush=True)
        print(flush=True)
    if args.markdown:
        from repro.experiments.report import write_markdown_report

        path = write_markdown_report(
            collected, args.markdown, title="Paper-vs-measured report"
        )
        print(f"markdown report written to {path}")
    return 0


def _reports_with_results(
    ids: Sequence[str], fast: bool = False, chart: bool = False
) -> Iterator[tuple["ExperimentResult", str]]:
    """Run experiments, yielding ``(result, formatted report)`` pairs."""
    from repro.experiments.registry import ExperimentResult  # noqa: F401

    if not ids or list(ids) == ["all"]:
        specs = list(all_experiments())
    else:
        specs = [get(experiment_id) for experiment_id in ids]
    for spec in specs:
        started = time.time()
        kwargs = {}
        if fast and _accepts_cycles(spec.experiment_id):
            kwargs["cycles"] = 10_000
        result = spec.run(**kwargs)
        is_series = spec.experiment_id in _SERIES_EXPERIMENTS
        formatter = format_series if is_series else format_result
        report = formatter(result)
        if chart and is_series:
            report += "\n\n" + render_chart(result)
        elapsed = time.time() - started
        yield result, report + f"\n[{elapsed:.1f}s]"


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
