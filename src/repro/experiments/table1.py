"""Table 1: exact EBW with priority to memories, ``r = min(n, m) + 7``."""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.engine import EvaluationMethod, evaluate_config
from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register

_SIZES = (2, 4, 6, 8)


def run() -> ExperimentResult:
    """Evaluate the Section 3.1.1 exact chain over the Table 1 grid.

    Dispatches through the engine registry: the ``markov`` evaluator
    resolves priority-to-memories configurations to the exact chain.
    """
    measured: dict[tuple[str, str], float] = {}
    reference: dict[tuple[str, str], float] = {}
    for n in _SIZES:
        for m in _SIZES:
            config = SystemConfig(
                processors=n,
                memories=m,
                memory_cycle_ratio=min(n, m) + 7,
                priority=Priority.MEMORIES,
            )
            key = (f"n={n}", f"m={m}")
            measured[key] = evaluate_config(
                config, EvaluationMethod.MARKOV
            ).ebw
            reference[key] = paper_data.TABLE1_EXACT_MEMORY_PRIORITY[(n, m)]
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1 - EBW exact values, priority to memory modules, "
        "r = min(n, m) + 7",
        row_label="n",
        column_label="m",
        rows=tuple(f"n={n}" for n in _SIZES),
        columns=tuple(f"m={m}" for m in _SIZES),
        measured=measured,
        reference=reference,
        notes="deterministic model output; expected to match to the printed "
        "3 decimals",
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="table1",
        title="Exact Markov chain, priority to memories",
        paper_artifact="Table 1",
        run=run,
    )
)
