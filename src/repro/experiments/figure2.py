"""Figure 2: EBW vs r, both priorities, with crossbar references (p = 1).

The paper's reading of this figure: the multiplexed single bus provides
very good EBW as ``r`` increases, priority to processors (g') beats
priority to memories (g''), and for large ``r`` the crossbar EBW acts as
a lower bound on the single-bus EBW.

The curve family is the registered ``figure2`` scenario: one compile
produces the whole (system, priority, r) grid, so ``--jobs`` parallelism
spans every curve at once instead of one sweep at a time.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.engine import EvaluationMethod, evaluate_config
from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ReplicationPlan


def run(
    cycles: int = 50_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate the Figure 2 curve family.

    ``jobs`` parallelises the scenario grid over worker processes; the
    measured values are identical for any value.
    """
    spec = dataclasses.replace(
        get_scenario("figure2"), cycles=cycles, plan=ReplicationPlan(1, seed)
    )
    # Key each unit result on its own configuration rather than trusting
    # positional order, so the mapping survives axis reordering in the
    # registered scenario.
    ebw = {
        (
            result.unit.config.processors,
            result.unit.config.memories,
            result.unit.config.priority,
            result.unit.config.memory_cycle_ratio,
        ): result.ebw
        for result in run_units(compile_scenario(spec), jobs=jobs)
    }
    measured: dict[tuple[str, str], float] = {}
    rows: list[str] = []
    columns = tuple(f"r={r}" for r in paper_data.FIGURE2_R_VALUES)
    for n, m in paper_data.FIGURE2_SYSTEMS:
        for priority in (Priority.PROCESSORS, Priority.MEMORIES):
            label = f"{n}x{m} priority={priority}"
            rows.append(label)
            for r in paper_data.FIGURE2_R_VALUES:
                measured[(label, f"r={r}")] = ebw[(n, m, priority, r)]
        crossbar_label = f"{n}x{m} crossbar"
        rows.append(crossbar_label)
        crossbar = evaluate_config(
            SystemConfig(n, m, 1), EvaluationMethod.CROSSBAR
        ).ebw
        for r in paper_data.FIGURE2_R_VALUES:
            # The crossbar's basic cycle is (r+2)t, so its EBW per
            # processor cycle is flat in r.
            measured[(crossbar_label, f"r={r}")] = crossbar
    return ExperimentResult(
        experiment_id="figure2",
        title="Figure 2 - Multiplexed single-bus effective bandwidth (p = 1)",
        row_label="curve",
        column_label="r",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="expected shape: g' >= g''; EBW grows with r and stays above "
        "the crossbar line for large r (Section 3 / Section 7)",
    )


@dataclasses.dataclass(frozen=True)
class Figure2Checks:
    """The qualitative claims the figure supports (used by tests)."""

    processors_beat_memories: bool
    ebw_above_crossbar_at_large_r: bool


def check_claims(result: ExperimentResult) -> Figure2Checks:
    """Evaluate the paper's Figure 2 claims on a generated result."""
    beats = True
    above = True
    for n, m in paper_data.FIGURE2_SYSTEMS:
        crossbar = result.measured[(f"{n}x{m} crossbar", "r=24")]
        for r in paper_data.FIGURE2_R_VALUES:
            column = f"r={r}"
            g_prime = result.measured[(f"{n}x{m} priority=processors", column)]
            g_second = result.measured[(f"{n}x{m} priority=memories", column)]
            # Allow simulation noise of a couple of percent.
            if g_prime < g_second * 0.98:
                beats = False
        largest = f"r={paper_data.FIGURE2_R_VALUES[-1]}"
        if result.measured[(f"{n}x{m} priority=processors", largest)] < crossbar * 0.95:
            above = False
    return Figure2Checks(
        processors_beat_memories=beats,
        ebw_above_crossbar_at_large_r=above,
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="figure2",
        title="EBW vs r, both priorities, crossbar reference",
        paper_artifact="Figure 2",
        run=run,
    )
)
