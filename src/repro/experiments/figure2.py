"""Figure 2: EBW vs r, both priorities, with crossbar references (p = 1).

The paper's reading of this figure: the multiplexed single bus provides
very good EBW as ``r`` increases, priority to processors (g') beats
priority to memories (g''), and for large ``r`` the crossbar EBW acts as
a lower bound on the single-bus EBW.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.sweeps import sweep_r
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.models.crossbar import crossbar_exact_ebw


def run(
    cycles: int = 50_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate the Figure 2 curve family.

    ``jobs`` parallelises the sweep grid over worker processes; the
    measured values are identical for any value.
    """
    measured: dict[tuple[str, str], float] = {}
    rows: list[str] = []
    columns = tuple(f"r={r}" for r in paper_data.FIGURE2_R_VALUES)
    for n, m in paper_data.FIGURE2_SYSTEMS:
        for priority, tag in (
            (Priority.PROCESSORS, "priority=processors"),
            (Priority.MEMORIES, "priority=memories"),
        ):
            base = SystemConfig(n, m, 2, priority=priority)
            label = f"{n}x{m} {tag}"
            rows.append(label)
            sweep = sweep_r(
                base,
                paper_data.FIGURE2_R_VALUES,
                label=label,
                cycles=cycles,
                seed=seed,
                max_workers=jobs,
            )
            for r, ebw in zip(sweep.axis_values(), sweep.ebw_values()):
                measured[(label, f"r={int(r)}")] = ebw
        crossbar_label = f"{n}x{m} crossbar"
        rows.append(crossbar_label)
        crossbar = crossbar_exact_ebw(SystemConfig(n, m, 1)).ebw
        for r in paper_data.FIGURE2_R_VALUES:
            # The crossbar's basic cycle is (r+2)t, so its EBW per
            # processor cycle is flat in r.
            measured[(crossbar_label, f"r={r}")] = crossbar
    return ExperimentResult(
        experiment_id="figure2",
        title="Figure 2 - Multiplexed single-bus effective bandwidth (p = 1)",
        row_label="curve",
        column_label="r",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="expected shape: g' >= g''; EBW grows with r and stays above "
        "the crossbar line for large r (Section 3 / Section 7)",
    )


@dataclasses.dataclass(frozen=True)
class Figure2Checks:
    """The qualitative claims the figure supports (used by tests)."""

    processors_beat_memories: bool
    ebw_above_crossbar_at_large_r: bool


def check_claims(result: ExperimentResult) -> Figure2Checks:
    """Evaluate the paper's Figure 2 claims on a generated result."""
    beats = True
    above = True
    for n, m in paper_data.FIGURE2_SYSTEMS:
        crossbar = result.measured[(f"{n}x{m} crossbar", "r=24")]
        for r in paper_data.FIGURE2_R_VALUES:
            column = f"r={r}"
            g_prime = result.measured[(f"{n}x{m} priority=processors", column)]
            g_second = result.measured[(f"{n}x{m} priority=memories", column)]
            # Allow simulation noise of a couple of percent.
            if g_prime < g_second * 0.98:
                beats = False
        largest = f"r={paper_data.FIGURE2_R_VALUES[-1]}"
        if result.measured[(f"{n}x{m} priority=processors", largest)] < crossbar * 0.95:
            above = False
    return Figure2Checks(
        processors_beat_memories=beats,
        ebw_above_crossbar_at_large_r=above,
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="figure2",
        title="EBW vs r, both priorities, crossbar reference",
        paper_artifact="Figure 2",
        run=run,
    )
)
