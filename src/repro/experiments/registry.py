"""Experiment registry: every reproducible table and figure.

An *experiment* is a named, parameter-free callable that regenerates one
artefact of the paper's evaluation and returns an
:class:`ExperimentResult` - a grid of measured values plus, when the
paper printed numbers, the reference values for side-by-side comparison.

The registry gives the command-line runner, the benchmarks and
EXPERIMENTS.md a single source of truth.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Mapping, Sequence

from repro.core.errors import ExperimentError


@dataclasses.dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one experiment run."""

    experiment_id: str
    title: str
    row_label: str
    column_label: str
    rows: tuple[str, ...]
    columns: tuple[str, ...]
    measured: Mapping[tuple[str, str], float]
    reference: Mapping[tuple[str, str], float] = dataclasses.field(
        default_factory=dict
    )
    notes: str = ""

    def measured_value(self, row: str, column: str) -> float:
        """The measured cell value."""
        try:
            return self.measured[(row, column)]
        except KeyError:
            raise ExperimentError(
                f"{self.experiment_id}: no measured cell ({row}, {column})"
            ) from None

    def reference_value(self, row: str, column: str) -> float | None:
        """The paper's value for the cell, if it printed one."""
        return self.reference.get((row, column))

    def worst_absolute_error(self) -> float:
        """Largest |measured - reference| over cells with references."""
        worst = 0.0
        for key, reference in self.reference.items():
            if key in self.measured:
                worst = max(worst, abs(self.measured[key] - reference))
        return worst

    def worst_relative_error(self) -> float:
        """Largest relative deviation over cells with nonzero references."""
        worst = 0.0
        for key, reference in self.reference.items():
            if key in self.measured and reference != 0.0:
                worst = max(
                    worst, abs(self.measured[key] - reference) / abs(reference)
                )
        return worst

    def mean_relative_error(self) -> float:
        """Mean relative deviation over cells with nonzero references."""
        errors = [
            abs(self.measured[key] - reference) / abs(reference)
            for key, reference in self.reference.items()
            if key in self.measured and reference != 0.0
        ]
        if not errors:
            return math.nan
        return sum(errors) / len(errors)


ExperimentFunction = Callable[..., ExperimentResult]


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: metadata plus the generating function."""

    experiment_id: str
    title: str
    paper_artifact: str
    run: ExperimentFunction


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (module import side effect)."""
    if spec.experiment_id in _REGISTRY:
        raise ExperimentError(f"duplicate experiment id {spec.experiment_id!r}")
    _REGISTRY[spec.experiment_id] = spec
    return spec


def get(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment; raises on unknown ids."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiments() -> Sequence[ExperimentSpec]:
    """All registered experiments, sorted by id."""
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda spec: spec.experiment_id)


def _ensure_loaded() -> None:
    """Import the experiment modules so their specs register."""
    from repro.experiments import (  # noqa: F401
        figure2,
        figure3,
        figure5,
        figure6,
        hot_spot,
        product_form,
        table1,
        table2,
        table3,
        table4,
    )
