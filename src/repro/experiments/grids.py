"""Shared ``(m, r)`` grid dispatch for the simulated paper tables.

Tables 3(a) and 4 both simulate every cell of an ``m x r`` grid under
one seed; this helper owns the grid enumeration and the process-pool
dispatch so the two experiments (and any future simulated table) cannot
drift apart.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.parallel.workers import SimulationCase, simulate_cases


def simulate_mr_grid(
    m_values: Iterable[int],
    r_values: Iterable[int],
    config_factory: Callable[[int, int], SystemConfig],
    cycles: int,
    seed: int,
    jobs: int | None = 1,
) -> Sequence[tuple[tuple[int, int], SimulationResult]]:
    """Simulate ``config_factory(m, r)`` for every grid cell, in order."""
    grid = [(m, r) for m in m_values for r in r_values]
    cases = [
        SimulationCase(config_factory(m, r), cycles, seed) for m, r in grid
    ]
    results = simulate_cases(cases, max_workers=jobs)
    return list(zip(grid, results))
