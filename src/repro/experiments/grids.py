"""Shared ``(m, r)`` grid scenario for the simulated paper tables.

Tables 3(a), 3(b) and 4 all evaluate every cell of an ``m x r`` grid
with the remaining configuration fixed.  :func:`mr_grid_scenario` owns
that shape; the registered ``table3a``/``table3b``/``table4`` scenarios
(:mod:`repro.scenarios.builtin`) are built from it, so the tables (and
any future ``m x r`` study) cannot drift apart in axis order, seeding,
or enumeration.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec


def mr_grid_scenario(
    name: str,
    m_values: Iterable[int],
    r_values: Iterable[int],
    base: Mapping[str, Any],
    cycles: int,
    seed: int,
) -> ScenarioSpec:
    """The canonical ``m`` (outer) x ``r`` (inner) table scenario.

    ``base`` maps :class:`~repro.core.config.SystemConfig` field names
    to the values fixed across the grid (e.g. ``processors`` and
    ``priority``).
    """
    return ScenarioSpec(
        name=name,
        base=dict(base),
        grid=(
            GridAxis("memories", tuple(m_values)),
            GridAxis("memory_cycle_ratio", tuple(r_values)),
        ),
        cycles=cycles,
        plan=ReplicationPlan(1, seed),
    )
