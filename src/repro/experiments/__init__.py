"""Experiment harness: regenerates every table and figure of the paper.

See :mod:`repro.experiments.registry` for the experiment list and
:mod:`repro.experiments.runner` for the command-line interface.
"""

from repro.experiments.registry import (
    ExperimentResult,
    ExperimentSpec,
    all_experiments,
    get,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "all_experiments",
    "get",
]
