"""ASCII rendering of experiment results, in the paper's table layout.

Measured values are printed with the paper's three decimals; when a
reference value exists the cell shows ``measured (reference)`` so the
side-by-side comparison needs no external tooling.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult


def format_result(result: ExperimentResult, show_reference: bool = True) -> str:
    """Render one experiment result as a fixed-width table."""
    has_reference = bool(result.reference) and show_reference
    cell_width = 16 if has_reference else 8
    header_cells = [f"{result.row_label}\\{result.column_label}".ljust(8)]
    header_cells += [column.rjust(cell_width) for column in result.columns]
    lines = [result.title, "=" * len(result.title), "".join(header_cells)]
    for row in result.rows:
        cells = [row.ljust(8)]
        for column in result.columns:
            measured = result.measured.get((row, column))
            reference = result.reference.get((row, column))
            if measured is None:
                cells.append("-".rjust(cell_width))
            elif has_reference and reference is not None:
                cells.append(f"{measured:7.3f} ({reference:6.3f})".rjust(cell_width))
            else:
                cells.append(f"{measured:7.3f}".rjust(cell_width))
        lines.append("".join(cells))
    if result.reference:
        lines.append(
            f"worst |err| {result.worst_absolute_error():.3f}"
            f"  worst rel {100 * result.worst_relative_error():.1f}%"
            f"  mean rel {100 * result.mean_relative_error():.1f}%"
        )
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)


def format_series(result: ExperimentResult) -> str:
    """Render a figure-style result: one line per curve (row)."""
    lines = [result.title, "=" * len(result.title)]
    axis = "  ".join(f"{column:>7}" for column in result.columns)
    lines.append(f"{result.row_label:<24} {result.column_label}: {axis}")
    for row in result.rows:
        values = []
        for column in result.columns:
            measured = result.measured.get((row, column))
            values.append(f"{measured:7.3f}" if measured is not None else "      -")
        lines.append(f"{row:<24}    {'  '.join(values)}")
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)
