"""Figure 5: the effect of memory buffers on EBW (vs r, with crossbar).

The paper's reading: buffered single-bus EBW can exceed the
(non-multiplexed) crossbar because buffering removes the extra memory
interference of the unbuffered operation; as ``r`` grows the advantage
shrinks and the buffered curve approaches the crossbar value from above.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import SystemConfig
from repro.engine import EvaluationMethod, evaluate_config
from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ReplicationPlan


def run(
    cycles: int = 50_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate the Figure 5 curve family."""
    spec = dataclasses.replace(
        get_scenario("figure5"), cycles=cycles, plan=ReplicationPlan(1, seed)
    )
    # Keyed on each unit's own configuration so axis reordering cannot
    # swap the buffered and unbuffered curves.
    ebw = {
        (
            result.unit.config.processors,
            result.unit.config.memories,
            result.unit.config.buffered,
            result.unit.config.memory_cycle_ratio,
        ): result.ebw
        for result in run_units(compile_scenario(spec), jobs=jobs)
    }
    measured: dict[tuple[str, str], float] = {}
    rows: list[str] = []
    columns = tuple(f"r={r}" for r in paper_data.FIGURE5_R_VALUES)
    for n, m in paper_data.FIGURE5_SYSTEMS:
        for buffered, tag in ((True, "with buffers"), (False, "without buffers")):
            label = f"{n}x{m} {tag}"
            rows.append(label)
            for r in paper_data.FIGURE5_R_VALUES:
                measured[(label, f"r={r}")] = ebw[(n, m, buffered, r)]
        crossbar_label = f"{n}x{m} crossbar"
        rows.append(crossbar_label)
        crossbar = evaluate_config(
            SystemConfig(n, m, 1), EvaluationMethod.CROSSBAR
        ).ebw
        for r in paper_data.FIGURE5_R_VALUES:
            measured[(crossbar_label, f"r={r}")] = crossbar
    return ExperimentResult(
        experiment_id="figure5",
        title="Figure 5 - EBW with and without memory-module buffers (p = 1)",
        row_label="curve",
        column_label="r",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="expected shape: buffered >= unbuffered everywhere; buffered "
        "exceeds the crossbar at moderate r and tends to it as r grows",
    )


@dataclasses.dataclass(frozen=True)
class Figure5Checks:
    """The qualitative claims of Section 6 (used by tests)."""

    buffered_dominates_unbuffered: bool
    buffered_exceeds_crossbar_somewhere: bool


def check_claims(result: ExperimentResult) -> Figure5Checks:
    """Evaluate the paper's Figure 5 claims on a generated result."""
    dominates = True
    exceeds = False
    for n, m in paper_data.FIGURE5_SYSTEMS:
        crossbar = result.measured[(f"{n}x{m} crossbar", "r=24")]
        for r in paper_data.FIGURE5_R_VALUES:
            column = f"r={r}"
            with_buffers = result.measured[(f"{n}x{m} with buffers", column)]
            without = result.measured[(f"{n}x{m} without buffers", column)]
            if with_buffers < without * 0.98:  # simulation noise allowance
                dominates = False
            if with_buffers > crossbar:
                exceeds = True
    return Figure5Checks(
        buffered_dominates_unbuffered=dominates,
        buffered_exceeds_crossbar_somewhere=exceeds,
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="figure5",
        title="Buffered vs unbuffered vs crossbar",
        paper_artifact="Figure 5",
        run=run,
    )
)
