"""Section 6 side claim: the exponential (product-form) characterisation
is heavily pessimistic for the buffered constant-service system.

The paper: "by using simulation techniques we have been able to measure
the numerical differences between the two service times
characterizations.  The results obtained show large discrepancies, which
exceeded 25% difference.  Pessimistic results are obtained when an
exponential distribution is assumed in the model."

This experiment regenerates the comparison three ways per (m, r):

* ``machine`` - the buffered machine with constant service (ground truth);
* ``geom-machine`` - the same machine with geometric (memoryless) access
  times, the discrete analogue of the exponential characterisation;
* ``mva`` - the exact product-form solution (exponential, infinite
  queues); the exponential-service event simulation of
  :mod:`repro.queueing.exponential_sim` converges to this value and is
  cross-checked in the test suite.

Two discrepancy metrics are reported, both with the exponential side
pessimistic:

* ``ebw-pess%`` - EBW shortfall of the exponential model (peaks around
  15-21% on this grid);
* ``delay-disc%`` - discrepancy of the mean queueing delay (response
  time beyond the uncontended ``r + 2``), obtained from Little's law;
  this exceeds 25% over much of the grid and is the reading under which
  the paper's ">25%" figure reproduces (the paper does not name its
  metric).  See EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bus.kernel import run_fast
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.engine import EvaluationMethod, evaluate_config
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register

_M_VALUES = (4, 6, 8, 16)
_R_VALUES = (4, 8, 12, 16)
_PROCESSORS = 8


def _queueing_delay(ebw: float, processors: int, r: int) -> float:
    """Mean queueing delay via Little's law: ``n (r+2) / EBW - (r+2)``."""
    response = processors * (r + 2) / ebw
    return response - (r + 2)


def run(cycles: int = 60_000, seed: int = 1985) -> ExperimentResult:
    """Measure constant-vs-exponential discrepancies on the Section 6 grid."""
    measured: dict[tuple[str, str], float] = {}
    rows = []
    for m in _M_VALUES:
        for r in _R_VALUES:
            config = SystemConfig(
                processors=_PROCESSORS,
                memories=m,
                memory_cycle_ratio=r,
                priority=Priority.PROCESSORS,
                buffered=True,
            )
            row = f"m={m} r={r}"
            rows.append(row)
            machine = evaluate_config(
                config, EvaluationMethod.SIMULATION, cycles=cycles, seed=seed
            ).ebw
            # Geometric access times are outside the engine's
            # declarative surface, so this column runs the kernel
            # directly - on the fast kernel, which draws bit-identically
            # to the reference machine (same "access-times" stream;
            # property-tested), so the column's bytes are unchanged.
            geometric = run_fast(
                config, cycles=cycles, seed=seed, geometric_access_times=True
            ).ebw
            mva = evaluate_config(config, EvaluationMethod.MVA).ebw
            exponential_ebw = min(geometric, mva)
            measured[(row, "machine")] = machine
            measured[(row, "geom-machine")] = geometric
            measured[(row, "mva")] = mva
            measured[(row, "ebw-pess%")] = 100.0 * (machine - exponential_ebw) / machine
            delay_machine = _queueing_delay(machine, _PROCESSORS, r)
            delay_exponential = _queueing_delay(exponential_ebw, _PROCESSORS, r)
            if delay_machine > 0:
                measured[(row, "delay-disc%")] = (
                    100.0 * (delay_exponential - delay_machine) / delay_machine
                )
            else:
                measured[(row, "delay-disc%")] = 0.0
    return ExperimentResult(
        experiment_id="product_form",
        title="Section 6 - constant vs exponential service characterisation "
        "(buffered system, n = 8)",
        row_label="system",
        column_label="metric",
        rows=tuple(rows),
        columns=("machine", "geom-machine", "mva", "ebw-pess%", "delay-disc%"),
        measured=measured,
        notes="exponential characterisation is pessimistic everywhere; the "
        "paper's '>25% discrepancy' reproduces on the queueing-delay "
        "metric (the paper does not name its metric - see EXPERIMENTS.md)",
    )


def max_ebw_pessimism(result: ExperimentResult) -> float:
    """Largest EBW pessimism over the grid (percent)."""
    return max(
        value
        for (row, column), value in result.measured.items()
        if column == "ebw-pess%"
    )


def max_delay_discrepancy(result: ExperimentResult) -> float:
    """Largest queueing-delay discrepancy over the grid (percent)."""
    return max(
        value
        for (row, column), value in result.measured.items()
        if column == "delay-disc%"
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="product_form",
        title="Product-form comparison (Section 6)",
        paper_artifact="Section 6 (>25% claim)",
        run=run,
    )
)
