"""Extension experiment: sensitivity to hypothesis (e) (uniform traffic).

The paper assumes requests are "independent and equally distributed
among the different memory modules" (hypothesis (e), after Baskett &
Smith).  This experiment - a library extension, not a paper artefact -
quantifies how the single-bus EBW (buffered and unbuffered) degrades as
a hot-spot concentrates a fraction of the traffic on one module, the
standard robustness probe for interconnection-network models.
"""

from __future__ import annotations

from repro.bus import MultiplexedBusSystem
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.des.rng import StreamFactory
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.workloads.generators import HotSpotTargets

_HOT_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.5)
_SYSTEMS = ((8, 8, 8), (8, 16, 8), (8, 16, 12))


def run(cycles: int = 50_000, seed: int = 1985) -> ExperimentResult:
    """EBW vs hot-spot fraction for buffered and unbuffered systems."""
    measured: dict[tuple[str, str], float] = {}
    rows = []
    columns = tuple(f"hot={fraction:g}" for fraction in _HOT_FRACTIONS)
    for n, m, r in _SYSTEMS:
        for buffered, tag in ((False, "unbuffered"), (True, "buffered")):
            config = SystemConfig(
                n,
                m,
                r,
                priority=Priority.PROCESSORS,
                buffered=buffered,
            )
            label = f"{n}x{m} r={r} {tag}"
            rows.append(label)
            for fraction in _HOT_FRACTIONS:
                streams = StreamFactory(seed)
                targets = HotSpotTargets(
                    m, streams.get("hot-spot"), hot_fraction=fraction
                )
                system = MultiplexedBusSystem(config, seed=seed, targets=targets)
                result = system.run(cycles)
                measured[(label, f"hot={fraction:g}")] = result.ebw
    return ExperimentResult(
        experiment_id="hot_spot",
        title="Extension - EBW degradation under hot-spot traffic "
        "(violating hypothesis (e))",
        row_label="system",
        column_label="hot fraction",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="library extension (not a paper artefact): hot=0 recovers "
        "the paper's uniform assumption; EBW decreases monotonically "
        "as traffic concentrates",
    )


def degradation_at(result: ExperimentResult, row: str, fraction: float) -> float:
    """Relative EBW loss of ``row`` at the given hot fraction vs uniform."""
    uniform = result.measured[(row, "hot=0")]
    hot = result.measured[(row, f"hot={fraction:g}")]
    return (uniform - hot) / uniform


SPEC = register(
    ExperimentSpec(
        experiment_id="hot_spot",
        title="Hot-spot sensitivity (extension)",
        paper_artifact="Extension",
        run=run,
    )
)
