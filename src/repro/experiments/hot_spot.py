"""Extension experiment: sensitivity to hypothesis (e) (uniform traffic).

The paper assumes requests are "independent and equally distributed
among the different memory modules" (hypothesis (e), after Baskett &
Smith).  This experiment - a library extension, not a paper artefact -
quantifies how the single-bus EBW (buffered and unbuffered) degrades as
a hot-spot concentrates a fraction of the traffic on one module, the
standard robustness probe for interconnection-network models.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.scenarios.builtin import HOT_SPOT_FRACTIONS, HOT_SPOT_SYSTEMS
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ReplicationPlan

_HOT_FRACTIONS = HOT_SPOT_FRACTIONS
_SYSTEMS = HOT_SPOT_SYSTEMS


def run(
    cycles: int = 50_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """EBW vs hot-spot fraction for buffered and unbuffered systems."""
    spec = dataclasses.replace(
        get_scenario("hot_spot"), cycles=cycles, plan=ReplicationPlan(1, seed)
    )
    # Keyed on each unit's own configuration and workload so axis
    # reordering cannot scramble the rows.
    ebw = {
        (
            result.unit.config.processors,
            result.unit.config.memories,
            result.unit.config.memory_cycle_ratio,
            result.unit.config.buffered,
            result.unit.workload.hot_fraction,
        ): result.ebw
        for result in run_units(compile_scenario(spec), jobs=jobs)
    }
    measured: dict[tuple[str, str], float] = {}
    rows = []
    columns = tuple(f"hot={fraction:g}" for fraction in _HOT_FRACTIONS)
    for n, m, r in _SYSTEMS:
        for buffered, tag in ((False, "unbuffered"), (True, "buffered")):
            label = f"{n}x{m} r={r} {tag}"
            rows.append(label)
            for fraction in _HOT_FRACTIONS:
                measured[(label, f"hot={fraction:g}")] = ebw[
                    (n, m, r, buffered, fraction)
                ]
    return ExperimentResult(
        experiment_id="hot_spot",
        title="Extension - EBW degradation under hot-spot traffic "
        "(violating hypothesis (e))",
        row_label="system",
        column_label="hot fraction",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="library extension (not a paper artefact): hot=0 recovers "
        "the paper's uniform assumption; EBW decreases monotonically "
        "as traffic concentrates",
    )


def degradation_at(result: ExperimentResult, row: str, fraction: float) -> float:
    """Relative EBW loss of ``row`` at the given hot fraction vs uniform."""
    uniform = result.measured[(row, "hot=0")]
    hot = result.measured[(row, f"hot={fraction:g}")]
    return (uniform - hot) / uniform


SPEC = register(
    ExperimentSpec(
        experiment_id="hot_spot",
        title="Hot-spot sensitivity (extension)",
        paper_artifact="Extension",
        run=run,
    )
)
