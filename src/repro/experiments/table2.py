"""Table 2: combinational approximation with priority to memories."""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.engine import EvaluationMethod, evaluate_config
from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.models.approx_memory_priority import approximate_memory_priority_ebw

_SIZES = (2, 4, 6, 8)


def run(symmetric: bool = False) -> ExperimentResult:
    """Evaluate the Section 3.2 model over the Table 2 grid.

    ``symmetric=True`` applies the paper's suggested symmetrisation
    (mentioned in Section 5); the printed table is the plain variant.
    """
    measured: dict[tuple[str, str], float] = {}
    reference: dict[tuple[str, str], float] = {}
    for n in _SIZES:
        for m in _SIZES:
            config = SystemConfig(
                processors=n,
                memories=m,
                memory_cycle_ratio=min(n, m) + 7,
                priority=Priority.MEMORIES,
            )
            key = (f"n={n}", f"m={m}")
            if symmetric:
                # The symmetrised variant is a model-level option the
                # declarative ``approx`` method does not expose.
                measured[key] = approximate_memory_priority_ebw(
                    config, symmetric=True
                ).ebw
            else:
                measured[key] = evaluate_config(
                    config, EvaluationMethod.APPROX
                ).ebw
            if not symmetric:
                reference[key] = paper_data.TABLE2_APPROX_MEMORY_PRIORITY[(n, m)]
    variant = "symmetrised" if symmetric else "non-symmetric"
    return ExperimentResult(
        experiment_id="table2",
        title=f"Table 2 - EBW approximate values ({variant}), priority to "
        "memory modules, r = min(n, m) + 7",
        row_label="n",
        column_label="m",
        rows=tuple(f"n={n}" for n in _SIZES),
        columns=tuple(f"m={m}" for m in _SIZES),
        measured=measured,
        reference=reference,
        notes="deterministic model output; the paper prints the "
        "non-symmetric variant",
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="table2",
        title="Combinational approximation, priority to memories",
        paper_artifact="Table 2",
        run=run,
    )
)
