"""Figure 3: processor utilisation EBW/(n p) vs p, n = 8, m = 16 (p < 1).

The figure shows how internal-processing cycles (p < 1) unload the
memory subsystem: utilisation rises toward 1 as p decreases, and larger
``r`` values sustain high utilisation over a wider range of p.
"""

from __future__ import annotations

import dataclasses

from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.execute import run_units
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ReplicationPlan


def run(
    cycles: int = 60_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate the Figure 3 curve family (unbuffered system)."""
    spec = dataclasses.replace(
        get_scenario("figure3"), cycles=cycles, plan=ReplicationPlan(1, seed)
    )
    # Keyed on each unit's own (r, p) so axis reordering cannot scramble
    # the curves.
    utilization = {
        (
            result.unit.config.memory_cycle_ratio,
            result.unit.config.request_probability,
        ): result.processor_utilization
        for result in run_units(compile_scenario(spec), jobs=jobs)
    }
    measured: dict[tuple[str, str], float] = {}
    rows = []
    columns = tuple(f"p={p:g}" for p in paper_data.FIGURE3_P_VALUES)
    for r in paper_data.FIGURE3_R_VALUES:
        label = f"r={r}"
        rows.append(label)
        for p in paper_data.FIGURE3_P_VALUES:
            measured[(label, f"p={p:g}")] = utilization[(r, p)]
    return ExperimentResult(
        experiment_id="figure3",
        title="Figure 3 - Processor utilisation EBW/(n p), unbuffered, "
        "n = 8, m = 16",
        row_label="curve",
        column_label="p",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="expected shape: utilisation decreases with p and increases "
        "with r; all values in (0, 1]",
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="figure3",
        title="Processor utilisation vs p (unbuffered)",
        paper_artifact="Figure 3",
        run=run,
    )
)
