"""Figure 3: processor utilisation EBW/(n p) vs p, n = 8, m = 16 (p < 1).

The figure shows how internal-processing cycles (p < 1) unload the
memory subsystem: utilisation rises toward 1 as p decreases, and larger
``r`` values sustain high utilisation over a wider range of p.
"""

from __future__ import annotations

from repro.analysis.sweeps import sweep_p
from repro.core.config import SystemConfig
from repro.core.policy import Priority
from repro.experiments import paper_data
from repro.experiments.registry import ExperimentResult, ExperimentSpec, register


def run(
    cycles: int = 60_000, seed: int = 1985, jobs: int | None = 1
) -> ExperimentResult:
    """Regenerate the Figure 3 curve family (unbuffered system)."""
    measured: dict[tuple[str, str], float] = {}
    rows = []
    columns = tuple(f"p={p:g}" for p in paper_data.FIGURE3_P_VALUES)
    for r in paper_data.FIGURE3_R_VALUES:
        base = SystemConfig(
            processors=paper_data.FIGURE3_PROCESSORS,
            memories=paper_data.FIGURE3_MEMORIES,
            memory_cycle_ratio=r,
            priority=Priority.PROCESSORS,
        )
        label = f"r={r}"
        rows.append(label)
        sweep = sweep_p(
            base,
            paper_data.FIGURE3_P_VALUES,
            label=label,
            cycles=cycles,
            seed=seed,
            max_workers=jobs,
        )
        for p, utilization in zip(
            sweep.axis_values(), sweep.processor_utilization_values()
        ):
            measured[(label, f"p={p:g}")] = utilization
    return ExperimentResult(
        experiment_id="figure3",
        title="Figure 3 - Processor utilisation EBW/(n p), unbuffered, "
        "n = 8, m = 16",
        row_label="curve",
        column_label="p",
        rows=tuple(rows),
        columns=columns,
        measured=measured,
        notes="expected shape: utilisation decreases with p and increases "
        "with r; all values in (0, 1]",
    )


SPEC = register(
    ExperimentSpec(
        experiment_id="figure3",
        title="Processor utilisation vs p (unbuffered)",
        paper_artifact="Figure 3",
        run=run,
    )
)
