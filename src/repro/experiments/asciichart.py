"""ASCII line charts for the figure experiments.

The paper's Figures 2, 3, 5 and 6 are curve families.  This module
renders an :class:`~repro.experiments.registry.ExperimentResult` whose
rows are curves as a fixed-width ASCII chart, so ``python -m
repro.experiments figure5 --chart`` shows the figure's shape directly in
the terminal.

:func:`render_percentile_chart` is the latency-distribution
counterpart: it draws the p50/p90/p99 total-latency columns that
``scenario <name> --metrics latency`` already emits on its unit lines
as three curves over the executed units, so the shape of the tail is
visible without leaving the terminal (``scenario <name> --metrics
latency --chart``).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ExperimentError
from repro.experiments.registry import ExperimentResult

_GLYPHS = "ox+*#@%&sd"


def render_chart(
    result: ExperimentResult,
    height: int = 18,
    width_per_column: int = 6,
) -> str:
    """Render the result's curves as an ASCII chart.

    Each row of the result becomes one curve, marked with its own glyph;
    the columns provide the x axis in their listed order.
    """
    if height < 4:
        raise ExperimentError(f"chart height must be >= 4, got {height}")
    if not result.rows or not result.columns:
        raise ExperimentError("nothing to chart")
    values = [
        value for value in result.measured.values() if value is not None
    ]
    if not values:
        raise ExperimentError("no measured values to chart")
    low = min(values)
    high = max(values)
    if high == low:
        high = low + 1.0
    span = high - low

    def row_of(value: float) -> int:
        scaled = (value - low) / span
        return int(round(scaled * (height - 1)))

    grid = [
        [" "] * (len(result.columns) * width_per_column) for _ in range(height)
    ]
    for curve_index, row_name in enumerate(result.rows):
        glyph = _GLYPHS[curve_index % len(_GLYPHS)]
        for column_index, column in enumerate(result.columns):
            value = result.measured.get((row_name, column))
            if value is None:
                continue
            y = height - 1 - row_of(value)
            x = column_index * width_per_column + width_per_column // 2
            grid[y][x] = glyph

    lines = [result.title, "=" * len(result.title)]
    for i, cells in enumerate(grid):
        level = high - span * i / (height - 1)
        lines.append(f"{level:7.2f} |" + "".join(cells))
    axis_cells = []
    for column in result.columns:
        label = column.split("=", 1)[-1]
        axis_cells.append(label.center(width_per_column))
    lines.append(" " * 8 + "+" + "-" * (len(result.columns) * width_per_column))
    lines.append(" " * 9 + "".join(axis_cells))
    lines.append("")
    legend = [
        f"{_GLYPHS[i % len(_GLYPHS)]} = {row}" for i, row in enumerate(result.rows)
    ]
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


PERCENTILE_ROWS = ("lat_p50", "lat_p90", "lat_p99")
"""The latency percentile curves the chart draws - exactly the
``lat_p50``/``lat_p90``/``lat_p99`` columns a latency-metric unit line
carries (see :func:`repro.scenarios.execute.unit_line`)."""


def render_percentile_chart(
    results: Sequence,
    height: int = 18,
    width_per_column: int = 7,
    title: str = "total latency percentiles (bus cycles) per unit",
) -> str:
    """Chart the p50/p90/p99 total-latency percentiles across units.

    ``results`` are the :class:`~repro.scenarios.execute.UnitResult`
    items of one scenario run executed with the ``latency`` metric;
    units without a latency report (e.g. analytic units) are skipped.
    Each percentile becomes one curve, the executed units (labelled by
    their global index) the x axis - the chart is a terminal rendering
    of columns the unit lines already print, so it adds no new
    randomness and is byte-deterministic for a given run.
    """
    charted = [
        result for result in results if getattr(result, "latency", None)
    ]
    if not charted:
        raise ExperimentError(
            "no latency-metric units to chart; run the scenario with "
            "--metrics latency (simulation method, reference/fast kernel)"
        )
    columns = tuple(f"u{result.unit.index}" for result in charted)
    measured = {}
    for result in charted:
        summary = result.latency.total
        column = f"u{result.unit.index}"
        measured[(PERCENTILE_ROWS[0], column)] = summary.p50_value
        measured[(PERCENTILE_ROWS[1], column)] = summary.p90_value
        measured[(PERCENTILE_ROWS[2], column)] = summary.p99_value
    chart_result = ExperimentResult(
        experiment_id="latency-percentiles",
        title=title,
        row_label="percentile",
        column_label="unit",
        rows=PERCENTILE_ROWS,
        columns=columns,
        measured=measured,
    )
    return render_chart(
        chart_result, height=height, width_per_column=width_per_column
    )
