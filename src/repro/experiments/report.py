"""Markdown report generation from experiment runs.

``python -m repro.experiments all --markdown report.md`` produces a
self-contained paper-vs-measured report; EXPERIMENTS.md in the
repository root is maintained with this generator plus hand-written
commentary.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

from repro.experiments.registry import ExperimentResult


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section with a comparison table."""
    lines = [f"### {result.title}", ""]
    has_reference = bool(result.reference)
    header = [result.row_label + "\\" + result.column_label] + list(result.columns)
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + " --- |" * len(header))
    for row in result.rows:
        cells = [row]
        for column in result.columns:
            measured = result.measured.get((row, column))
            reference = result.reference.get((row, column))
            if measured is None:
                cells.append("-")
            elif has_reference and reference is not None:
                cells.append(f"{measured:.3f} ({reference:.3f})")
            else:
                cells.append(f"{measured:.3f}")
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    if has_reference:
        mean_rel = result.mean_relative_error()
        mean_text = "n/a" if math.isnan(mean_rel) else f"{100 * mean_rel:.1f}%"
        lines.append(
            f"*measured (paper)* — worst |err| "
            f"{result.worst_absolute_error():.3f}, worst rel "
            f"{100 * result.worst_relative_error():.1f}%, mean rel {mean_text}."
        )
        lines.append("")
    if result.notes:
        lines.append(f"> {result.notes}")
        lines.append("")
    return "\n".join(lines)


def results_to_markdown(
    results: Sequence[ExperimentResult], title: str = "Experiment report"
) -> str:
    """A full markdown document for several experiment results."""
    parts = [f"# {title}", ""]
    for result in results:
        parts.append(result_to_markdown(result))
    return "\n".join(parts)


def write_markdown_report(
    results: Sequence[ExperimentResult],
    path: str | Path,
    title: str = "Experiment report",
) -> Path:
    """Write the document to ``path`` and return it."""
    target = Path(path)
    target.write_text(results_to_markdown(results, title), encoding="utf-8")
    return target
