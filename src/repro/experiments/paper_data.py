"""The paper's published numbers, transcribed from the ISCA 1985 text.

Everything the evaluation prints is compared against these values.  Keys
follow the tables' own axes:

* Tables 1 and 2: ``(n, m)`` with ``r = min(n, m) + 7``;
* Table 3 (a: simulation, b: approximate model) and Table 4: ``(m, r)``
  with ``n = 8``, priority to processors;
* figure curve sets: the scanned legends are partly illegible, so the
  reconstruction choices are recorded here once and reused everywhere
  (see DESIGN.md section 4).
"""

from __future__ import annotations

TABLE1_EXACT_MEMORY_PRIORITY: dict[tuple[int, int], float] = {
    (2, 2): 1.417, (2, 4): 1.625, (2, 6): 1.694, (2, 8): 1.729,
    (4, 2): 1.625, (4, 4): 2.308, (4, 6): 2.603, (4, 8): 2.761,
    (6, 2): 1.694, (6, 4): 2.603, (6, 6): 3.164, (6, 8): 3.469,
    (8, 2): 1.729, (8, 4): 2.761, (8, 6): 3.469, (8, 8): 3.988,
}
"""Table 1: exact EBW, priority to memories, ``r = min(n, m) + 7``."""

TABLE2_APPROX_MEMORY_PRIORITY: dict[tuple[int, int], float] = {
    (2, 2): 1.417, (2, 4): 1.625, (2, 6): 1.694, (2, 8): 1.729,
    (4, 2): 1.729, (4, 4): 2.392, (4, 6): 2.653, (4, 8): 2.792,
    (6, 2): 1.807, (6, 4): 2.778, (6, 6): 3.305, (6, 8): 3.570,
    (8, 2): 1.827, (8, 4): 2.987, (8, 6): 3.692, (8, 8): 4.178,
}
"""Table 2: combinational approximation (non-symmetric), same grid."""

TABLE3_PROCESSORS = 8
TABLE3_M_VALUES = (4, 6, 8, 10, 12, 14, 16)
TABLE3_R_VALUES = (2, 4, 6, 8, 10, 12)

TABLE3A_SIMULATION: dict[tuple[int, int], float] = {
    (4, 2): 1.998, (4, 4): 2.867, (4, 6): 3.155, (4, 8): 3.287,
    (4, 10): 3.205, (4, 12): 3.220,
    (6, 2): 2.000, (6, 4): 2.986, (6, 6): 3.766, (6, 8): 4.033,
    (6, 10): 4.083, (6, 12): 4.117,
    (8, 2): 2.000, (8, 4): 2.999, (8, 6): 3.934, (8, 8): 4.523,
    (8, 10): 4.650, (8, 12): 4.722,
    (10, 2): 2.000, (10, 4): 3.000, (10, 6): 3.983, (10, 8): 4.766,
    (10, 10): 5.102, (10, 12): 5.144,
    (12, 2): 2.000, (12, 4): 3.000, (12, 6): 3.996, (12, 8): 4.878,
    (12, 10): 5.367, (12, 12): 5.464,
    (14, 2): 2.000, (14, 4): 3.000, (14, 6): 4.000, (14, 8): 4.947,
    (14, 10): 5.569, (14, 12): 5.732,
    (16, 2): 2.000, (16, 4): 3.000, (16, 6): 4.000, (16, 8): 4.977,
    (16, 10): 5.698, (16, 12): 5.959,
}
"""Table 3(a): the authors' simulation, priority to processors, n = 8.

Note the (4, 8) entry (3.287): it exceeds both its r-neighbours (3.155,
3.205) while every other row is monotone in r; our simulation and both
approximate models indicate it is a statistical outlier of the 1985
runs (see EXPERIMENTS.md).
"""

TABLE3B_APPROX_MODEL: dict[tuple[int, int], float] = {
    (4, 2): 1.994, (4, 4): 2.727, (4, 6): 2.992, (4, 8): 3.089,
    (4, 10): 3.133, (4, 12): 3.156,
    (6, 2): 1.999, (6, 4): 2.956, (6, 6): 3.582, (6, 8): 3.854,
    (6, 10): 3.973, (6, 12): 4.033,
    (8, 2): 2.000, (8, 4): 2.994, (8, 6): 3.848, (8, 8): 4.344,
    (8, 10): 4.577, (8, 12): 4.692,
    (10, 2): 2.000, (10, 4): 2.999, (10, 6): 3.947, (10, 8): 4.633,
    (10, 10): 5.000, (10, 12): 5.184,
    (12, 2): 2.000, (12, 4): 2.999, (12, 6): 3.981, (12, 8): 4.794,
    (12, 10): 5.288, (12, 12): 5.546,
    (14, 2): 2.000, (14, 4): 3.000, (14, 6): 3.992, (14, 8): 4.880,
    (14, 10): 5.480, (14, 12): 5.810,
    (16, 2): 2.000, (16, 4): 3.000, (16, 6): 3.997, (16, 8): 4.927,
    (16, 10): 5.608, (16, 12): 6.000,
}
"""Table 3(b): the paper's reduced Markov chain, priority to processors.

The (6, 8) entry is printed as 2.854 in the scan, surrounded by 3.582
and 3.973; it is transcribed here as 3.854 (an evident typography slip:
the same column position in neighbouring rows reads 4.344/4.633).
"""

TABLE4_PROCESSORS = 8
TABLE4_M_VALUES = (4, 6, 8, 10, 12, 14, 16)
TABLE4_R_VALUES = (6, 8, 10, 12, 14, 16, 18, 20, 22, 24)

TABLE4_BUFFERED_SIMULATION: dict[tuple[int, int], float] = {
    (4, 6): 3.915, (4, 8): 3.938, (4, 10): 3.815, (4, 12): 3.731,
    (4, 14): 3.661, (4, 16): 3.617, (4, 18): 3.575, (4, 20): 3.541,
    (4, 22): 3.523, (4, 24): 3.499,
    (6, 6): 3.997, (6, 8): 4.747, (6, 10): 4.795, (6, 12): 4.734,
    (6, 14): 4.674, (6, 16): 4.630, (6, 18): 4.588, (6, 20): 4.560,
    (6, 22): 4.529, (6, 24): 4.506,
    (8, 6): 4.000, (8, 8): 4.943, (8, 10): 5.312, (8, 12): 5.312,
    (8, 14): 5.275, (8, 16): 5.239, (8, 18): 5.206, (8, 20): 5.180,
    (8, 22): 5.155, (8, 24): 5.136,
    (10, 6): 4.000, (10, 8): 4.984, (10, 10): 5.608, (10, 12): 5.724,
    (10, 14): 5.725, (10, 16): 5.709, (10, 18): 5.685, (10, 20): 5.666,
    (10, 22): 5.647, (10, 24): 5.633,
    (12, 6): 4.000, (12, 8): 4.994, (12, 10): 5.778, (12, 12): 5.987,
    (12, 14): 6.020, (12, 16): 6.019, (12, 18): 6.010, (12, 20): 5.997,
    (12, 22): 5.983, (12, 24): 5.970,
    (14, 6): 4.000, (14, 8): 4.998, (14, 10): 5.867, (14, 12): 6.178,
    (14, 14): 6.237, (14, 16): 6.246, (14, 18): 6.245, (14, 20): 6.232,
    (14, 22): 6.223, (14, 24): 6.217,
    (16, 6): 4.000, (16, 8): 4.999, (16, 10): 5.912, (16, 12): 6.325,
    (16, 14): 6.405, (16, 16): 6.428, (16, 18): 6.429, (16, 20): 6.421,
    (16, 22): 6.414, (16, 24): 6.410,
}
"""Table 4: buffered-system simulation, priority to processors, n = 8.

The (14, 10) entry is printed as "I867" in the scan, transcribed as
5.867 by column continuity (5.778 above, 5.912 below).
"""

# ----------------------------------------------------------------------
# Figure reconstructions (scanned legends are partially illegible; these
# choices are documented in DESIGN.md section 4).
# ----------------------------------------------------------------------
FIGURE2_SYSTEMS: tuple[tuple[int, int], ...] = ((4, 4), (8, 8), (16, 16))
FIGURE2_R_VALUES: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 16, 20, 24)

FIGURE3_PROCESSORS = 8
FIGURE3_MEMORIES = 16
FIGURE3_R_VALUES: tuple[int, ...] = (4, 8, 12, 16)
FIGURE3_P_VALUES: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)

FIGURE5_SYSTEMS: tuple[tuple[int, int], ...] = ((8, 8), (8, 16), (16, 16))
FIGURE5_R_VALUES: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 16, 20, 24)

FIGURE6_PROCESSORS = 8
FIGURE6_MEMORIES = 16
FIGURE6_R_VALUES: tuple[int, ...] = (4, 8, 12, 16)
FIGURE6_P_VALUES: tuple[float, ...] = FIGURE3_P_VALUES
