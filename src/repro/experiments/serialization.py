"""Lossless JSON round-tripping of :class:`ExperimentResult`.

The result cache (:mod:`repro.parallel.cache`) stores plain JSON, while
experiments traffic in :class:`~repro.experiments.registry.ExperimentResult`
objects whose cell mappings are keyed by ``(row, column)`` tuples.  The
two functions here convert between the representations exactly: floats
survive unchanged (JSON carries Python's shortest round-trip ``repr``),
cell order is canonicalised, and a version field guards against stale
payload shapes after future schema changes.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.errors import ExperimentError
from repro.experiments.registry import ExperimentResult

PAYLOAD_VERSION = 1


def _cells(mapping: Mapping[tuple[str, str], float]) -> list[list[Any]]:
    return [
        [row, column, value]
        for (row, column), value in sorted(mapping.items())
    ]


def result_to_payload(result: ExperimentResult) -> dict[str, Any]:
    """A JSON-able dict capturing every field of ``result``."""
    return {
        "payload_version": PAYLOAD_VERSION,
        "experiment_id": result.experiment_id,
        "title": result.title,
        "row_label": result.row_label,
        "column_label": result.column_label,
        "rows": list(result.rows),
        "columns": list(result.columns),
        "measured": _cells(result.measured),
        "reference": _cells(result.reference),
        "notes": result.notes,
    }


def result_from_payload(payload: Mapping[str, Any]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_payload`.

    Raises :class:`ExperimentError` on malformed or version-mismatched
    payloads, so cache corruption surfaces as a clean miss upstream.
    """
    try:
        if payload["payload_version"] != PAYLOAD_VERSION:
            raise ExperimentError(
                "experiment payload version mismatch: "
                f"{payload['payload_version']!r} != {PAYLOAD_VERSION}"
            )
        return ExperimentResult(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            row_label=payload["row_label"],
            column_label=payload["column_label"],
            rows=tuple(payload["rows"]),
            columns=tuple(payload["columns"]),
            measured={
                (row, column): value
                for row, column, value in payload["measured"]
            },
            reference={
                (row, column): value
                for row, column, value in payload["reference"]
            },
            notes=payload["notes"],
        )
    except ExperimentError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(
            f"malformed experiment payload: {exc!r}"
        ) from exc
