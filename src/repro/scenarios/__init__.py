"""Declarative scenario subsystem with a shardable sweep compiler.

Every evaluation in this library - each paper figure and table, and
every exploration beyond them - is a sweep over ``(n, m, r, p, policy,
buffering)`` axes under some workload and evaluation method.  This
package makes that sweep a *value*:

* :class:`ScenarioSpec` (:mod:`repro.scenarios.spec`) declares the
  sweep: base configuration, grid axes (including joint axes and
  ``workload.*`` fields), workload spec, evaluation method, and a
  replication plan.  Specs load from TOML/JSON files or come from the
  built-in registry (:mod:`repro.scenarios.registry`).
* :func:`compile_scenario` (:mod:`repro.scenarios.compiler`) lowers a
  spec into a deterministic, stably-ordered tuple of :class:`WorkUnit`
  items with content-addressed cache keys; :func:`shard_units` splits
  that list for multi-machine execution.
* :func:`run_units` / :func:`run_scenario`
  (:mod:`repro.scenarios.execute`) execute units through the
  :mod:`repro.parallel` pool and cache, and render mergeable reports
  whose sharded outputs recombine byte-identically
  (:func:`merge_reports`).

The paper experiments (:mod:`repro.experiments`) run through this
subsystem; ``repro-experiments scenario`` exposes it on the command
line.
"""

from repro.scenarios.compiler import (
    WorkUnit,
    compile_scenario,
    merge_units,
    parse_shard,
    shard_units,
)
from repro.scenarios.execute import (
    UnitResult,
    evaluate_unit,
    merge_reports,
    render_report,
    run_scenario,
    run_units,
    unit_line,
)
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    load_scenario,
    load_scenario_file,
    register_scenario,
)
from repro.scenarios.spec import (
    EvaluationMethod,
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
    spec_from_mapping,
)

__all__ = [
    "ScenarioSpec",
    "GridAxis",
    "ReplicationPlan",
    "EvaluationMethod",
    "spec_from_mapping",
    "WorkUnit",
    "compile_scenario",
    "shard_units",
    "merge_units",
    "parse_shard",
    "UnitResult",
    "evaluate_unit",
    "run_units",
    "run_scenario",
    "unit_line",
    "render_report",
    "merge_reports",
    "register_scenario",
    "get_scenario",
    "all_scenarios",
    "load_scenario",
    "load_scenario_file",
]
