"""Built-in scenario specifications.

Two families register here:

* **Paper scenarios** - the exact sweep grids behind the paper's
  figures 2/3/5/6 and tables 3/4 (plus the hot-spot extension that
  shipped with the seed).  The experiment modules under
  :mod:`repro.experiments` run *through* these specs, so the registry is
  the single source of truth for every published grid.
* **Exploration scenarios** - non-paper studies opened up by the
  declarative layer: hot-spot severity, buffer-depth scaling,
  heterogeneous per-processor ``p``, and a saturation stress sweep.

Every spec here is reachable from the command line::

    repro-experiments scenario                      # list them
    repro-experiments scenario figure2 --jobs 8
    repro-experiments scenario buffer-depth-scaling --shard 1/4
"""

from __future__ import annotations

import dataclasses

from repro.core.policy import Priority
from repro.experiments import paper_data
from repro.experiments.grids import mr_grid_scenario
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import (
    EvaluationMethod,
    GridAxis,
    ReplicationPlan,
    ScenarioSpec,
)
from repro.workloads.spec import HotSpotWorkload, RequestMixWorkload

PAPER_SEED = 1985
"""The seed every paper experiment runs under (one replication)."""

HOT_SPOT_FRACTIONS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.5)
"""Hot fractions of the seed hot-spot extension experiment."""

HOT_SPOT_SYSTEMS: tuple[tuple[int, int, int], ...] = (
    (8, 8, 8),
    (8, 16, 8),
    (8, 16, 12),
)
"""``(n, m, r)`` systems of the seed hot-spot extension experiment."""

HETEROGENEOUS_P_MIX: tuple[float, ...] = (
    1.0, 1.0, 0.8, 0.8, 0.5, 0.5, 0.2, 0.2,
)
"""Per-processor request probabilities of the heterogeneous-p scenario."""


# ----------------------------------------------------------------------
# Paper scenarios (grids identical to the hand-coded experiment loops).
# ----------------------------------------------------------------------
FIGURE2 = register_scenario(
    ScenarioSpec(
        name="figure2",
        description="Figure 2: EBW vs r, both priorities, p = 1",
        grid=(
            GridAxis(("processors", "memories"), paper_data.FIGURE2_SYSTEMS),
            GridAxis("priority", (Priority.PROCESSORS, Priority.MEMORIES)),
            GridAxis("memory_cycle_ratio", paper_data.FIGURE2_R_VALUES),
        ),
        cycles=50_000,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

FIGURE3 = register_scenario(
    ScenarioSpec(
        name="figure3",
        description="Figure 3: processor utilisation vs p, unbuffered",
        base={
            "processors": paper_data.FIGURE3_PROCESSORS,
            "memories": paper_data.FIGURE3_MEMORIES,
            "priority": Priority.PROCESSORS,
        },
        grid=(
            GridAxis("memory_cycle_ratio", paper_data.FIGURE3_R_VALUES),
            GridAxis("request_probability", paper_data.FIGURE3_P_VALUES),
        ),
        cycles=60_000,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

FIGURE5 = register_scenario(
    ScenarioSpec(
        name="figure5",
        description="Figure 5: EBW with and without buffers, p = 1",
        base={"priority": Priority.PROCESSORS},
        grid=(
            GridAxis(("processors", "memories"), paper_data.FIGURE5_SYSTEMS),
            GridAxis("buffered", (True, False)),
            GridAxis("memory_cycle_ratio", paper_data.FIGURE5_R_VALUES),
        ),
        cycles=50_000,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

FIGURE6 = register_scenario(
    ScenarioSpec(
        name="figure6",
        description="Figure 6: processor utilisation vs p, buffered",
        base={
            "processors": paper_data.FIGURE6_PROCESSORS,
            "memories": paper_data.FIGURE6_MEMORIES,
            "priority": Priority.PROCESSORS,
            "buffered": True,
        },
        grid=(
            GridAxis("memory_cycle_ratio", paper_data.FIGURE6_R_VALUES),
            GridAxis("request_probability", paper_data.FIGURE6_P_VALUES),
        ),
        cycles=60_000,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

TABLE3A = register_scenario(
    dataclasses.replace(
        mr_grid_scenario(
            "table3a",
            paper_data.TABLE3_M_VALUES,
            paper_data.TABLE3_R_VALUES,
            {
                "processors": paper_data.TABLE3_PROCESSORS,
                "priority": Priority.PROCESSORS,
            },
            cycles=100_000,
            seed=PAPER_SEED,
        ),
        description="Table 3(a): simulated EBW grid, priority to "
        "processors, n = 8",
    )
)

TABLE3B = register_scenario(
    dataclasses.replace(
        mr_grid_scenario(
            "table3b",
            paper_data.TABLE3_M_VALUES,
            paper_data.TABLE3_R_VALUES,
            {
                "processors": paper_data.TABLE3_PROCESSORS,
                "priority": Priority.PROCESSORS,
            },
            cycles=100_000,
            seed=PAPER_SEED,
        ),
        method=EvaluationMethod.MARKOV,
        description="Table 3(b): Section 4 reduced Markov chain over the "
        "Table 3 grid",
    )
)

TABLE4 = register_scenario(
    dataclasses.replace(
        mr_grid_scenario(
            "table4",
            paper_data.TABLE4_M_VALUES,
            paper_data.TABLE4_R_VALUES,
            {
                "processors": paper_data.TABLE4_PROCESSORS,
                "priority": Priority.PROCESSORS,
                "buffered": True,
            },
            cycles=100_000,
            seed=PAPER_SEED,
        ),
        description="Table 4: simulated EBW grid, buffered system, n = 8",
    )
)

HOT_SPOT = register_scenario(
    ScenarioSpec(
        name="hot_spot",
        description="Seed extension: EBW degradation under hot-spot "
        "traffic (hypothesis (e) violated)",
        base={"priority": Priority.PROCESSORS},
        grid=(
            GridAxis(
                ("processors", "memories", "memory_cycle_ratio"),
                HOT_SPOT_SYSTEMS,
            ),
            GridAxis("buffered", (False, True)),
            GridAxis("workload.hot_fraction", HOT_SPOT_FRACTIONS),
        ),
        workload=HotSpotWorkload(hot_fraction=0.0),
        cycles=50_000,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)


# ----------------------------------------------------------------------
# Exploration scenarios (non-paper axes opened by the scenario layer).
# ----------------------------------------------------------------------
HOT_SPOT_SEVERITY = register_scenario(
    ScenarioSpec(
        name="hot-spot-severity",
        description="Fine-grained hot-spot severity sweep on the paper's "
        "running 8x16 system, buffered and unbuffered",
        base={
            "processors": 8,
            "memories": 16,
            "memory_cycle_ratio": 8,
            "priority": Priority.PROCESSORS,
        },
        grid=(
            GridAxis("buffered", (False, True)),
            GridAxis(
                "workload.hot_fraction",
                (0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9),
            ),
        ),
        workload=HotSpotWorkload(hot_fraction=0.0),
        cycles=30_000,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

BUFFER_DEPTH_SCALING = register_scenario(
    ScenarioSpec(
        name="buffer-depth-scaling",
        description="Does deepening the Section 6 buffers beyond the "
        "paper's depth 1 keep paying off?",
        base={
            "processors": 8,
            "memories": 8,
            "priority": Priority.PROCESSORS,
            "buffered": True,
        },
        grid=(
            GridAxis("memory_cycle_ratio", (4, 8, 16)),
            GridAxis("buffer_depth", (1, 2, 4, 8)),
        ),
        cycles=30_000,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

HETEROGENEOUS_P = register_scenario(
    ScenarioSpec(
        name="heterogeneous-p",
        description="Per-processor request-probability mix vs the "
        "homogeneous p of hypothesis (f) at equal offered load",
        base={
            "processors": 8,
            "memories": 16,
            "priority": Priority.PROCESSORS,
            "request_probability": sum(HETEROGENEOUS_P_MIX)
            / len(HETEROGENEOUS_P_MIX),
        },
        grid=(
            GridAxis("buffered", (False, True)),
            GridAxis("memory_cycle_ratio", (4, 8, 12, 16)),
        ),
        workload=RequestMixWorkload(HETEROGENEOUS_P_MIX),
        cycles=30_000,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

SATURATION_STRESS = register_scenario(
    ScenarioSpec(
        name="saturation-stress",
        description="Bus saturation stress: many processors on few "
        "modules at p = 1, replicated across seeds",
        base={"priority": Priority.PROCESSORS},
        grid=(
            GridAxis(
                ("processors", "memories"),
                ((8, 4), (16, 4), (16, 8), (32, 8)),
            ),
            GridAxis("memory_cycle_ratio", (2, 8)),
            GridAxis("buffered", (False, True)),
        ),
        cycles=20_000,
        plan=ReplicationPlan(3, PAPER_SEED),
    )
)

LATENCY_TAIL = register_scenario(
    ScenarioSpec(
        name="latency-tail",
        description="Wait/service/total latency percentiles (p50/p90/p99) "
        "with and without Section 6 buffers: the tail-latency view of "
        "the buffering decision",
        base={
            "processors": 8,
            "memories": 8,
            "priority": Priority.PROCESSORS,
        },
        grid=(
            GridAxis("buffered", (False, True)),
            GridAxis("memory_cycle_ratio", (2, 4, 8, 16)),
            GridAxis("request_probability", (0.5, 1.0)),
        ),
        metrics=("latency",),
        cycles=30_000,
        plan=ReplicationPlan(3, PAPER_SEED),
    )
)

BANDWIDTH_VS_SIMULATION = register_scenario(
    ScenarioSpec(
        name="bandwidth-vs-simulation",
        description="Section 3.2 combinational bandwidth model over the "
        "Table 3 (m, r) grid - diff against 'table3a' to see the "
        "memoryless profile's error",
        base={
            "processors": paper_data.TABLE3_PROCESSORS,
            "priority": Priority.PROCESSORS,
        },
        grid=(
            GridAxis("memories", paper_data.TABLE3_M_VALUES),
            GridAxis("memory_cycle_ratio", paper_data.TABLE3_R_VALUES),
        ),
        method=EvaluationMethod.BANDWIDTH,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

PRODUCT_FORM_MVA = register_scenario(
    ScenarioSpec(
        name="product-form-mva",
        description="Product-form MVA EBW over the Table 4 buffered grid "
        "(the model the paper rejects as >25% pessimistic)",
        base={
            "processors": paper_data.TABLE4_PROCESSORS,
            "priority": Priority.PROCESSORS,
            "buffered": True,
        },
        grid=(
            GridAxis("memories", (4, 8, 16)),
            GridAxis("memory_cycle_ratio", (6, 12, 24)),
        ),
        method=EvaluationMethod.MVA,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

BOUNDS_ENVELOPE = register_scenario(
    ScenarioSpec(
        name="bounds-envelope",
        description="Balanced-job bound midpoints over the product-form "
        "grid - the zero-cost envelope a designer checks before "
        "simulating anything",
        base={
            "processors": paper_data.TABLE4_PROCESSORS,
            "priority": Priority.PROCESSORS,
            "buffered": True,
        },
        grid=(
            GridAxis("memories", (4, 8, 16)),
            GridAxis("memory_cycle_ratio", (6, 12, 24)),
        ),
        method=EvaluationMethod.BOUNDS,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)

APPROX_VS_EXACT = register_scenario(
    ScenarioSpec(
        name="approx-vs-exact",
        description="Section 3.2/4 approximations over the Table 1 grid, "
        "priority to memories - diff against the markov method to see "
        "the combinational profile's error",
        base={
            "memory_cycle_ratio": 9,
            "priority": Priority.MEMORIES,
        },
        grid=(
            GridAxis("processors", (2, 4, 6, 8)),
            GridAxis("memories", (2, 4, 6, 8)),
        ),
        method=EvaluationMethod.APPROX,
        plan=ReplicationPlan(1, PAPER_SEED),
    )
)
