"""Cache- and fleet-aware sweep planning.

A compiled scenario is a list of independent work units; *how* that
list is cut into leases is a pure wall-clock lever (results merge by
position, and fleet rows are independent), so the service is free to
plan.  This module turns a unit list into an execution plan in two
steps:

1. **Batched cache probe** (:func:`probe_cached`): one
   :meth:`~repro.parallel.cache.ResultCache.get_many` call resolves
   every already-cached position before any dispatch, so warm or
   resumed sweeps never ship cached work to workers.
2. **Fleet-affine lease carving** (:func:`carve_leases`): the
   remaining positions are grouped by
   :func:`~repro.parallel.fleet.pack_key` - batch-kernel units that
   can share one shape-packed super-fleet travel together, so a whole
   fragmented sweep can land in one lease and run as one padded batch
   call - and packed into leases sized by **estimated cost** (cycles +
   warmup per simulation unit, an explicit floor for analytic units)
   rather than unit count, so a lease of heavy 100k-cycle units is
   shorter than a lease of analytic one-liners.

Neither step can change bytes: the probe only substitutes values the
worker would have fetched from the same shared store, and lease
composition only changes which worker computes a position, never the
position's deterministic result (property-tested in
``tests/properties/test_service_merge.py``).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.engine.base import EvaluationMethod
from repro.scenarios.compiler import WorkUnit

ANALYTIC_UNIT_COST = 1.0
"""Explicit floor cost of any unit.

Closed-form (non-simulation) units cost exactly this much, and no unit
ever costs less: an all-analytic or mixed ``simulation``+``mva`` sweep
therefore always produces strictly positive lease costs, so cost-target
carving degrades to even count-based splitting instead of degenerating
to one giant lease."""

MAX_LEASE_UNITS = 256
"""Hard cap on positions per lease, matching ``default_lease_size``'s
ceiling: one lost worker can never strand more than this many units."""


def unit_cost(unit: WorkUnit) -> float:
    """Estimated relative cost of evaluating one unit.

    Simulation units cost their simulated cycle count (collection plus
    warmup) - wall-clock per cycle is roughly constant within a sweep -
    while closed-form analytic units cost a nominal constant.  Every
    unit costs at least :data:`ANALYTIC_UNIT_COST`, so no unit mix can
    yield a zero or degenerate total.  The estimate only shapes lease
    sizes; being wrong is a performance bug, never a correctness bug.
    """
    if unit.method is EvaluationMethod.SIMULATION:
        return max(
            float(unit.cycles + (unit.warmup or 0)), ANALYTIC_UNIT_COST
        )
    return ANALYTIC_UNIT_COST


def probe_cached(
    units: Sequence[WorkUnit], positions: Sequence[int], cache
) -> dict[int, Any]:
    """Resolve already-cached positions in one batched probe.

    Returns ``{position: metrics_payload}`` for every position of
    ``positions`` whose unit payload hits in ``cache``.  Payload
    validation is the caller's job (a malformed entry must trigger a
    recompute, not a crash).
    """
    keys = {
        position: cache.key(units[position].payload())
        for position in positions
    }
    found = cache.get_many(keys.values())
    return {
        position: found[key]
        for position, key in keys.items()
        if key in found
    }


def _affine_groups(
    units: Sequence[WorkUnit], positions: Sequence[int]
) -> list[list[int]]:
    """Group positions by super-fleet pack key, first-appearance ordered.

    Batch-kernel simulation positions that can share one shape-packed
    super-fleet form one group (they run as a single padded vectorized
    call on the worker, regardless of per-row shape); every other
    position is its own singleton group.  Grouping mirrors
    :func:`repro.scenarios.execute._evaluation_tasks`' packed mode, so
    a lease built from whole groups turns into exactly one batch call
    per group.
    """
    from repro.parallel.fleet import pack_key
    from repro.scenarios.execute import _batchable

    fleets: dict[tuple, list[int]] = {}
    order: list[list[int]] = []
    for position in positions:
        unit = units[position]
        if _batchable(unit):
            key = pack_key(unit.case())
            if key not in fleets:
                fleets[key] = []
                order.append(fleets[key])
            fleets[key].append(position)
        else:
            order.append([position])
    return order


def carve_leases(
    units: Sequence[WorkUnit],
    positions: Sequence[int],
    workers: int,
    lease_size: int | None = None,
    affine: bool = True,
) -> list[list[int]]:
    """Cut ``positions`` into lease position-lists.

    With ``affine=True`` (the default) positions are first grouped by
    pack key so batch units that can share one super-fleet stay
    together; ``affine=False`` keeps the legacy contiguous order (the
    benchmark's control arm).

    An explicit ``lease_size`` packs by **unit count**, exactly like
    the historical contiguous carving - the operator's knob for chaos
    tests and retry granularity.  Otherwise leases are packed by
    **estimated cost**: the target is ``total_cost / (workers * 4)``
    (four waves per worker, amortizing stragglers), with every lease
    capped at :data:`MAX_LEASE_UNITS` positions and oversized fleet
    groups split at target boundaries.  Every input position appears in
    exactly one lease.
    """
    positions = list(positions)
    if not positions:
        return []
    workers = max(1, int(workers))
    if affine:
        groups = _affine_groups(units, positions)
    else:
        groups = [[position] for position in positions]
    if lease_size is not None:
        capacity = max(1, int(lease_size))
        cost_target = None
    else:
        capacity = MAX_LEASE_UNITS
        total = sum(unit_cost(units[position]) for position in positions)
        cost_target = max(total / (workers * 4), 1.0)
    leases: list[list[int]] = []
    current: list[int] = []
    current_cost = 0.0
    for group in groups:
        for position in group:
            cost = unit_cost(units[position])
            full = len(current) >= capacity or (
                cost_target is not None
                and current
                and current_cost + cost > cost_target
            )
            if full:
                leases.append(current)
                current = []
                current_cost = 0.0
            current.append(position)
            current_cost += cost
    if current:
        leases.append(current)
    return leases
