"""Lower a :class:`~repro.scenarios.spec.ScenarioSpec` into work units.

The compiler is the bridge between the declarative scenario layer and
the :mod:`repro.parallel` execution substrate.  It produces a
*deterministic, stably-ordered* tuple of :class:`WorkUnit` items:

* ordering is row-major over the grid axes in declaration order, with
  replication seeds varying fastest - i.e. exactly the nested loop a
  hand-written experiment would contain;
* each unit owns a dense ``index`` (its position in the unsharded
  order) and a content-addressed :meth:`WorkUnit.payload` that covers
  every byte-relevant field (configuration, workload, method, cycles,
  warmup, seed) and deliberately excludes the index and scenario name,
  so identical computations share cache entries across scenarios;
* :func:`shard_units` partitions the list round-robin so ``k`` shards
  run on ``k`` machines and merge - by sorting on ``index`` - into the
  byte-identical unsharded result (property-tested in
  ``tests/properties/test_scenario_sharding.py``).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Iterable, Sequence

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.parallel.cache import case_payload, config_payload
from repro.parallel.workers import SimulationCase
from repro.scenarios.spec import EvaluationMethod, ScenarioSpec
from repro.workloads.spec import WorkloadSpec, workload_payload

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One fully-specified evaluation of one grid point under one seed."""

    index: int
    scenario: str
    config: SystemConfig
    workload: WorkloadSpec | None
    method: EvaluationMethod
    cycles: int
    warmup: int | None
    seed: int
    replication: int
    metrics: tuple[str, ...] = ()
    """Extra metric families this unit collects (e.g. ``("latency",)``)."""

    @property
    def collects_latency(self) -> bool:
        """Whether this unit records per-request latency distributions."""
        return "latency" in self.metrics

    def case(self) -> SimulationCase:
        """The :class:`SimulationCase` a simulation unit executes."""
        return SimulationCase(
            config=self.config,
            cycles=self.cycles,
            seed=self.seed,
            warmup=self.warmup,
            workload=self.workload,
            collect_latency=self.collects_latency,
        )

    def payload(self) -> dict[str, Any]:
        """Content-addressed identity of the computation.

        Excludes ``index``, ``scenario`` and ``replication``: two units
        that perform the same computation hash identically wherever they
        appear, which is what lets shards and unrelated scenarios share
        cache entries.  Simulation units share the library-wide
        :func:`~repro.parallel.cache.case_payload` encoding - which adds
        a **versioned metrics field** for latency-collecting units, so a
        metric-bearing cache entry (whose value carries latency
        payloads) can never collide with a metric-less one, nor with
        entries written under an older metrics format.  Analytic
        methods are deterministic functions of the configuration alone,
        so their keys exclude seed/cycles/warmup - replications and
        ``--cycles`` overrides then hit the same entry instead of
        recomputing the identical closed-form value.
        """
        if self.method is EvaluationMethod.SIMULATION:
            payload = case_payload(self.case())
        else:
            payload = {
                "config": config_payload(self.config),
                "workload": workload_payload(self.workload),
            }
        payload["method"] = str(self.method)
        return payload


def compile_scenario(spec: ScenarioSpec) -> tuple[WorkUnit, ...]:
    """Lower ``spec`` into its canonical ordered work-unit tuple.

    The order is total and reproducible: grid points in the spec's
    row-major axis order, and within each point the replication seeds in
    plan order.  Compiling the same spec twice yields equal tuples.
    """
    units: list[WorkUnit] = []
    seeds = spec.plan.seeds
    index = 0
    for config, workload in spec.points():
        for replication, seed in enumerate(seeds):
            units.append(
                WorkUnit(
                    index=index,
                    scenario=spec.name,
                    config=config,
                    workload=workload,
                    method=spec.method,
                    cycles=spec.cycles,
                    warmup=spec.warmup,
                    seed=seed,
                    replication=replication,
                    metrics=spec.metrics,
                )
            )
            index += 1
    if not units:
        raise ConfigurationError(
            f"scenario {spec.name!r} compiles to zero work units"
        )
    return tuple(units)


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``--shard i/k`` designator (1-based, ``1 <= i <= k``)."""
    match = _SHARD_RE.match(text.strip())
    if not match:
        raise ConfigurationError(
            f"shard designator must look like 'i/k' (e.g. '2/4'), got {text!r}"
        )
    shard_index, shard_count = int(match.group(1)), int(match.group(2))
    if shard_count < 1:
        raise ConfigurationError(
            f"shard count must be >= 1, got {shard_count}"
        )
    if not 1 <= shard_index <= shard_count:
        raise ConfigurationError(
            f"shard index must lie in 1..{shard_count}, got {shard_index}"
        )
    return shard_index, shard_count


def shard_units(
    units: Sequence[WorkUnit], shard_index: int, shard_count: int
) -> tuple[WorkUnit, ...]:
    """The subsequence of ``units`` owned by shard ``shard_index`` of
    ``shard_count`` (1-based).

    Units are dealt round-robin on their compiled index, so adjacent
    (similar-cost) units spread across shards and every shard's length
    differs by at most one.  The union of all ``shard_count`` shards is
    exactly ``units``, each appearing once.
    """
    if not 1 <= shard_index <= shard_count:
        raise ConfigurationError(
            f"shard index must lie in 1..{shard_count}, got {shard_index}"
        )
    return tuple(
        unit for unit in units if unit.index % shard_count == shard_index - 1
    )


def merge_by_index(entries: Iterable[tuple[int, Any]], what: str) -> list[Any]:
    """Reassemble ``(unit index, item)`` pairs into canonical order.

    The one validation used by every shard-merging surface (work-unit
    lists, report lines): indices must neither collide nor leave holes -
    merging half a sweep must fail loudly, not silently produce a
    shorter result.  Raises :class:`ConfigurationError` otherwise.
    """
    merged: dict[int, Any] = {}
    for index, item in entries:
        if index in merged:
            raise ConfigurationError(
                f"duplicate {what} for unit index {index} across shards"
            )
        merged[index] = item
    missing = [i for i in range(len(merged)) if i not in merged]
    if missing:
        raise ConfigurationError(
            f"merged shards leave missing unit indices: {missing[:10]}"
        )
    return [merged[i] for i in sorted(merged)]


def merge_units(shards: Iterable[Sequence[WorkUnit]]) -> tuple[WorkUnit, ...]:
    """Reassemble shard outputs into the canonical unsharded order."""
    return tuple(
        merge_by_index(
            ((unit.index, unit) for shard in shards for unit in shard),
            "work unit",
        )
    )
