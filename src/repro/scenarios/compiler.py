"""Lower a :class:`~repro.scenarios.spec.ScenarioSpec` into work units.

The compiler is the bridge between the declarative scenario layer and
the :mod:`repro.parallel` execution substrate.  It produces a
*deterministic, stably-ordered* tuple of :class:`WorkUnit` items:

* ordering is row-major over the grid axes in declaration order, with
  replication seeds varying fastest - i.e. exactly the nested loop a
  hand-written experiment would contain;
* each unit owns a dense ``index`` (its position in the unsharded
  order) and a content-addressed :meth:`WorkUnit.payload` that covers
  every byte-relevant field (configuration, workload, method, cycles,
  warmup, seed) and deliberately excludes the index and scenario name,
  so identical computations share cache entries across scenarios;
* :func:`shard_units` partitions the list round-robin so ``k`` shards
  run on ``k`` machines and merge - by sorting on ``index`` - into the
  byte-identical unsharded result (property-tested in
  ``tests/properties/test_scenario_sharding.py``).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Iterable, Sequence

from repro.bus.backends import DEFAULT_BACKEND, KNOWN_BACKENDS
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.engine.base import EvalRequest
from repro.engine.registry import get_evaluator
from repro.parallel.workers import SimulationCase
from repro.scenarios.spec import EvaluationMethod, ScenarioSpec
from repro.workloads.spec import WorkloadSpec

_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")

DEFAULT_KERNEL = "reference"
"""Simulation-loop implementation units run under by default."""

KNOWN_KERNELS = ("reference", "fast", "batch")
"""Every simulation-loop implementation the library ships.

:func:`compile_scenario` validates its ``kernel`` argument against this
tuple so a typo fails at scenario load time, not mid-sweep.  The batch
kernel's array substrate is validated the same way against
:data:`repro.bus.backends.KNOWN_BACKENDS`."""


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One fully-specified evaluation of one grid point under one seed."""

    index: int
    scenario: str
    config: SystemConfig
    workload: WorkloadSpec | None
    method: EvaluationMethod
    cycles: int
    warmup: int | None
    seed: int
    replication: int
    metrics: tuple[str, ...] = ()
    """Extra metric families this unit collects (e.g. ``("latency",)``)."""
    kernel: str = DEFAULT_KERNEL
    """Simulation-loop implementation (``"reference"``, ``"fast"`` or
    ``"batch"``).  Reference and fast are property-tested bit-identical,
    so for them the kernel is an execution lever like ``--jobs`` and
    never enters :meth:`payload`.  Batch results are reproducible in
    themselves but not bit-identical, so their payloads carry the
    ``simulation-batch@1`` engine token instead of ``simulation@1``."""
    backend: str = DEFAULT_BACKEND
    """Array substrate of the batch kernel (:mod:`repro.bus.backends`).
    Like ``kernel`` it is an execution lever and stays out of
    :meth:`payload` *except* through the engine token: bit-identical
    backends (numpy/numba) share ``simulation-batch@1``, while
    statistically-equivalent backends (cupy) carry their own token."""

    @property
    def collects_latency(self) -> bool:
        """Whether this unit records per-request latency distributions."""
        return "latency" in self.metrics

    def request(self) -> EvalRequest:
        """The engine-layer request this unit evaluates."""
        return EvalRequest(
            config=self.config,
            workload=self.workload,
            cycles=self.cycles,
            warmup=self.warmup,
            seed=self.seed,
            metrics=self.metrics,
            kernel=self.kernel,
            backend=self.backend,
        )

    def case(self) -> SimulationCase:
        """The :class:`SimulationCase` a simulation unit executes."""
        return self.request().case()

    def payload(self) -> dict[str, Any]:
        """Content-addressed identity of the computation.

        Excludes ``index``, ``scenario``, ``replication`` and
        ``kernel``: two units that perform the same computation hash
        identically wherever they appear, which is what lets shards and
        unrelated scenarios share cache entries.  The encoding is
        delegated to the unit's evaluator
        (:meth:`repro.engine.base.Evaluator.cache_payload`), which adds
        its versioned engine token: simulation units cover the full case
        (config, workload, seed, cycles, warmup, versioned metrics
        field); analytic methods are deterministic functions of the
        configuration alone, so their keys exclude seed/cycles/warmup -
        replications and ``--cycles`` overrides then hit the same entry
        instead of recomputing the identical closed-form value.
        """
        return get_evaluator(self.method).cache_payload(self.request())


def compile_scenario(
    spec: ScenarioSpec,
    kernel: str = DEFAULT_KERNEL,
    backend: str = DEFAULT_BACKEND,
) -> tuple[WorkUnit, ...]:
    """Lower ``spec`` into its canonical ordered work-unit tuple.

    The order is total and reproducible: grid points in the spec's
    row-major axis order, and within each point the replication seeds in
    plan order.  Compiling the same spec twice yields equal tuples.

    Every grid point is validated against the method's evaluator
    capabilities (:class:`~repro.engine.base.EvaluatorCapabilities`), so
    a sweep that would fail mid-run - e.g. the combinational bandwidth
    model over a buffered configuration - is rejected here, at scenario
    load time, with a message naming the offending point.

    ``kernel`` selects the simulation-loop implementation for every
    compiled unit: ``"reference"`` and ``"fast"`` are bit-identical, so
    that choice affects wall-clock only; ``"batch"`` (vectorized
    lockstep fleets) changes bytes within statistical equivalence and
    is validated here against its capability set
    (:func:`repro.bus.batch.check_batch_features`) - e.g. latency
    metrics compile (sketch-based percentiles).  ``backend`` selects
    the batch kernel's array substrate (:mod:`repro.bus.backends`); a
    non-default backend requires ``kernel="batch"``.  Unknown kernel or
    backend names are rejected here too, so a typo fails at scenario
    load time instead of mid-sweep - never a silent fallback.
    """
    if kernel not in KNOWN_KERNELS:
        raise ConfigurationError(
            f"unknown simulation kernel {kernel!r}; "
            f"known kernels: {', '.join(KNOWN_KERNELS)}"
        )
    if backend not in KNOWN_BACKENDS:
        raise ConfigurationError(
            f"unknown batch backend {backend!r}; "
            f"known backends: {', '.join(KNOWN_BACKENDS)}"
        )
    if backend != DEFAULT_BACKEND:
        from repro.bus.backends import check_backend

        try:
            check_backend(kernel, backend, metrics=spec.metrics)
        except ConfigurationError as exc:
            raise ConfigurationError(
                f"scenario {spec.name!r} cannot run under "
                f"backend={backend!r}: {exc}"
            ) from exc
    capabilities = get_evaluator(spec.method).capabilities
    if kernel == "batch" and spec.method is EvaluationMethod.SIMULATION:
        from repro.bus.batch import check_batch_features

        try:
            check_batch_features(metrics=spec.metrics, backend=backend)
        except ConfigurationError as exc:
            raise ConfigurationError(
                f"scenario {spec.name!r} cannot run under "
                f"kernel='batch': {exc}"
            ) from exc
    units: list[WorkUnit] = []
    seeds = spec.plan.seeds
    index = 0
    for config, workload in spec.points():
        try:
            capabilities.check_workload_kind(workload.kind)
            capabilities.check_config(config)
        except ConfigurationError as exc:
            raise ConfigurationError(
                f"scenario {spec.name!r} grid point {config.describe()} "
                f"is not evaluable: {exc}"
            ) from exc
        for replication, seed in enumerate(seeds):
            units.append(
                WorkUnit(
                    index=index,
                    scenario=spec.name,
                    config=config,
                    workload=workload,
                    method=spec.method,
                    cycles=spec.cycles,
                    warmup=spec.warmup,
                    seed=seed,
                    replication=replication,
                    metrics=spec.metrics,
                    kernel=kernel,
                    backend=backend,
                )
            )
            index += 1
    if not units:
        raise ConfigurationError(
            f"scenario {spec.name!r} compiles to zero work units"
        )
    return tuple(units)


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``--shard i/k`` designator (1-based, ``1 <= i <= k``)."""
    match = _SHARD_RE.match(text.strip())
    if not match:
        raise ConfigurationError(
            f"shard designator must look like 'i/k' (e.g. '2/4'), got {text!r}"
        )
    shard_index, shard_count = int(match.group(1)), int(match.group(2))
    if shard_count < 1:
        raise ConfigurationError(
            f"shard count must be >= 1, got {shard_count}"
        )
    if not 1 <= shard_index <= shard_count:
        raise ConfigurationError(
            f"shard index must lie in 1..{shard_count}, got {shard_index}"
        )
    return shard_index, shard_count


def shard_units(
    units: Sequence[WorkUnit], shard_index: int, shard_count: int
) -> tuple[WorkUnit, ...]:
    """The subsequence of ``units`` owned by shard ``shard_index`` of
    ``shard_count`` (1-based).

    Units are dealt round-robin on their compiled index, so adjacent
    (similar-cost) units spread across shards and every shard's length
    differs by at most one.  The union of all ``shard_count`` shards is
    exactly ``units``, each appearing once.
    """
    if not 1 <= shard_index <= shard_count:
        raise ConfigurationError(
            f"shard index must lie in 1..{shard_count}, got {shard_index}"
        )
    return tuple(
        unit for unit in units if unit.index % shard_count == shard_index - 1
    )


def merge_by_index(entries: Iterable[tuple[int, Any]], what: str) -> list[Any]:
    """Reassemble ``(unit index, item)`` pairs into canonical order.

    The one validation used by every shard-merging surface (work-unit
    lists, report lines): indices must neither collide nor leave holes -
    merging half a sweep must fail loudly, not silently produce a
    shorter result.  Raises :class:`ConfigurationError` otherwise.
    """
    merged: dict[int, Any] = {}
    for index, item in entries:
        if index in merged:
            raise ConfigurationError(
                f"duplicate {what} for unit index {index} across shards"
            )
        merged[index] = item
    missing = [i for i in range(len(merged)) if i not in merged]
    if missing:
        raise ConfigurationError(
            f"merged shards leave missing unit indices: {missing[:10]}"
        )
    return [merged[i] for i in sorted(merged)]


def merge_units(shards: Iterable[Sequence[WorkUnit]]) -> tuple[WorkUnit, ...]:
    """Reassemble shard outputs into the canonical unsharded order."""
    return tuple(
        merge_by_index(
            ((unit.index, unit) for shard in shards for unit in shard),
            "work unit",
        )
    )
