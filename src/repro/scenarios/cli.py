"""The ``repro-experiments scenario`` subcommand.

Usage::

    repro-experiments scenario                          # list scenarios
    repro-experiments scenario figure2 --jobs 8
    repro-experiments scenario my-sweep.toml --shard 2/4
    repro-experiments scenario table3a --shard 1/3 > shard1.out

Sharding contract: stdout carries exactly one self-contained line per
executed work unit, each prefixed with its global (unsharded) index.
Run the same scenario as ``k`` shards on ``k`` machines, concatenate
the shard outputs, and ``sort`` them (or pass them through
:func:`repro.scenarios.execute.merge_reports`): the result is
byte-identical to the unsharded run.  Headers, timings and summaries go
to stderr so stdout stays mergeable and reproducible.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Sequence

from repro.core.errors import ConfigurationError, ReproError
from repro.scenarios.compiler import compile_scenario, parse_shard, shard_units
from repro.scenarios.execute import run_units, unit_line
from repro.scenarios.registry import all_scenarios, load_scenario
from repro.scenarios.spec import ReplicationPlan


def apply_spec_overrides(
    spec,
    cycles: int | None = None,
    seed: int | None = None,
    metrics: Sequence[str] | None = None,
):
    """Apply the CLI's ``--cycles``/``--seed``/``--metrics`` overrides.

    Shared by the ``scenario`` and ``sweep-serve`` subcommands so both
    spell the identical spec - which is what licenses their outputs to
    be byte-compared.
    """
    if cycles is not None:
        spec = dataclasses.replace(spec, cycles=cycles)
    if metrics is not None:
        spec = dataclasses.replace(spec, metrics=spec.metrics + tuple(metrics))
    if seed is not None:
        spec = dataclasses.replace(
            spec, plan=ReplicationPlan(spec.plan.replications, seed)
        )
    return spec


def list_scenarios() -> str:
    """Human-readable table of every registered scenario."""
    lines = ["available scenarios:"]
    for spec in all_scenarios():
        units = spec.grid_size() * spec.plan.replications
        lines.append(
            f"  {spec.name:<22} {units:>5} units  {str(spec.method):<10} "
            f"{spec.description}"
        )
    lines.append(
        "\nrun one with: repro-experiments scenario <name|file.toml> "
        "[--shard i/k] [--jobs N]"
    )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro-experiments scenario ...``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments scenario",
        description="Compile a declarative scenario into work units and "
        "run them (optionally one shard of a multi-machine sweep).",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help="registered scenario name or a .toml/.json spec file; "
        "omit to list registered scenarios",
    )
    parser.add_argument(
        "--shard",
        metavar="I/K",
        help="run only shard I of K (1-based); merging all K shard "
        "outputs reproduces the unsharded output byte-for-byte",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for unit execution (default 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run through the distributed sweep service with N "
        "subprocess workers leasing planned position lists from a "
        "coordinator (see 'sweep-serve'); stdout stays byte-identical "
        "to the serial run",
    )
    parser.add_argument(
        "--lease-size",
        type=int,
        default=None,
        metavar="N",
        help="units per service lease (requires --workers; default: "
        "cost-weighted planner sizing)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        metavar="N",
        help="override the spec's simulated cycles per unit",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help="override the spec's replication base seed",
    )
    parser.add_argument(
        "--metrics",
        metavar="NAME",
        action="append",
        default=None,
        help="collect an extra per-unit metric family (repeatable); "
        "'latency' adds streaming wait/service/total percentile columns "
        "to every unit line (simulation scenarios only)",
    )
    parser.add_argument(
        "--kernel",
        choices=("reference", "fast", "batch"),
        default="reference",
        help="simulation-loop implementation; 'fast' runs the flattened "
        "bit-identical kernel (repro.bus.kernel) - same bytes, less "
        "time; 'batch' runs whole replication fleets in one vectorized "
        "lockstep call (repro.bus.batch; needs the numpy extra) - "
        "reproducible in itself, statistically equivalent, own cache "
        "namespace",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shorthand for --kernel fast",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "numba", "numba-parallel", "cupy"),
        default="numpy",
        help="array substrate for the batch kernel (requires --kernel "
        "batch): 'numpy' (default), 'numba' (JIT-compiled cycle loop, "
        "bit-identical to numpy, [batch-jit] extra), 'numba-parallel' "
        "(same loop under prange over fleet rows, bit-identical, "
        "[batch-jit] extra) or 'cupy' (GPU, statistically equivalent, "
        "own cache namespace, [batch-gpu] extra); a missing backend "
        "fails loudly naming its extra",
    )
    parser.add_argument(
        "--pack",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="pack shape-heterogeneous batch-kernel units into padded "
        "super-fleets, one vectorized call per arbitration/window/"
        "backend combination (default on; bytes are identical either "
        "way, packing only changes wall clock); --no-pack restores "
        "one fleet per shape for A/B timing",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="after the unit lines, draw the p50/p90/p99 total-latency "
        "percentile curves across units as an ASCII chart on stderr "
        "(requires --metrics latency); stdout stays byte-reproducible",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached unit results (default on; --no-cache disables)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro-single-bus)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="after the run, print the cache's hit/miss/store counters "
        "on stderr (for --workers runs: the coordinator's pre-lease "
        "probe counters plus units dispatched), so planner skip-rates "
        "are observable",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer")
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be a positive integer")
        if args.jobs != 1:
            # Two parallelism levers at once would obscure which one
            # ran; the service's workers already parallelise the sweep.
            parser.error(
                "--jobs and --workers conflict: --workers delegates "
                "parallelism to the sweep service's worker fleet"
            )
    if args.lease_size is not None:
        if args.workers is None:
            parser.error("--lease-size requires --workers")
        if args.lease_size < 1:
            parser.error("--lease-size must be a positive integer")
    if not args.pack and args.workers is not None:
        # The sweep service's planner already groups leases by pack
        # key; an unpacked service run would misreport what executed.
        parser.error("--no-pack requires the serial path (no --workers)")
    if args.fast and args.kernel == "batch":
        # fast and batch produce deliberately different bytes, so a
        # silent precedence pick would hand back the wrong tier.
        parser.error("--fast conflicts with --kernel batch; pick one")
    kernel = "fast" if args.fast else args.kernel
    if args.backend != "numpy" and kernel != "batch":
        # Backends are the batch kernel's array substrate; silently
        # ignoring --backend on another kernel would misreport what ran.
        parser.error("--backend requires --kernel batch")
    if args.scenario is None:
        print(list_scenarios())
        return 0
    shard = None
    try:
        spec = load_scenario(args.scenario)
        spec = apply_spec_overrides(
            spec, cycles=args.cycles, seed=args.seed, metrics=args.metrics
        )
        units = compile_scenario(spec, kernel=kernel, backend=args.backend)
        total = len(units)
        if args.shard is not None:
            shard = parse_shard(args.shard)
            units = shard_units(units, shard[0], shard[1])
            print(
                f"[scenario {spec.name}: shard {shard[0]}/{shard[1]}, "
                f"{len(units)} of {total} units]",
                file=sys.stderr,
            )
        else:
            print(
                f"[scenario {spec.name}: {total} units]",
                file=sys.stderr,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = None
    if args.cache and args.workers is None:
        from repro.parallel.cache import ResultCache

        try:
            cache = ResultCache(cache_dir=args.cache_dir)
        except (ConfigurationError, OSError) as exc:
            # A broken cache location must never block the science run.
            print(f"warning: caching disabled: {exc}", file=sys.stderr)
    started = time.time()
    telemetry: dict = {}
    try:
        if args.workers is not None:
            # The distributed sweep service: a coordinator probing the
            # shared store, then leasing planned position lists to
            # subprocess workers.  Byte-identical to the serial path
            # below, property- and golden-tested.
            from repro.service.coordinator import run_service

            results = run_service(
                spec,
                workers=args.workers,
                kernel=kernel,
                backend=args.backend,
                shard=shard,
                lease_size=args.lease_size,
                cache_enabled=args.cache,
                cache_dir=args.cache_dir,
                telemetry=telemetry,
            )
        else:
            results = run_units(
                units, jobs=args.jobs, cache=cache, pack=args.pack
            )
    except ReproError as exc:
        # Covers simulation and model failures too - any library error
        # surfaces as the CLI's curated one-line diagnostic.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for result in results:
        print(unit_line(result), flush=True)
    if args.chart:
        from repro.experiments.asciichart import render_percentile_chart

        try:
            print(render_percentile_chart(results), file=sys.stderr)
        except ReproError as exc:
            print(f"warning: no chart: {exc}", file=sys.stderr)
    elapsed = time.time() - started
    served = sum(1 for result in results if result.cached)
    print(
        f"[{len(results)} units in {elapsed:.1f}s, {served} from cache]",
        file=sys.stderr,
    )
    if args.cache_stats:
        print(render_cache_stats(cache, telemetry), file=sys.stderr)
    return 0


def render_cache_stats(cache, telemetry: dict) -> str:
    """The ``--cache-stats`` stderr line.

    Serial runs report the run cache's own
    :class:`~repro.parallel.cache.CacheStats`; service runs report the
    coordinator's pre-lease probe counters plus how many units were
    actually dispatched to workers (zero on a fully-warm sweep).
    """
    if telemetry:
        stats = telemetry.get("probe_stats")
        line = (
            f"[cache-stats probe_hits={telemetry.get('probe_hits', 0)} "
            f"dispatched={telemetry.get('dispatched', 0)} "
            f"of {telemetry.get('units', 0)} units"
        )
        if stats is not None:
            line += (
                f" hits={stats.hits} misses={stats.misses} "
                f"transient_errors={stats.transient_errors}"
            )
        return line + "]"
    if cache is None:
        return "[cache-stats disabled]"
    stats = cache.stats
    return (
        f"[cache-stats hits={stats.hits} misses={stats.misses} "
        f"stores={stats.stores} evictions={stats.evictions} "
        f"transient_errors={stats.transient_errors}]"
    )
