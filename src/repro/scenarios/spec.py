"""Frozen, validated scenario specifications.

A :class:`ScenarioSpec` is the declarative unit of this library's
design-space exploration: it composes

* a *base* configuration (fixed :class:`~repro.core.config.SystemConfig`
  field values),
* a *grid* of axes over configuration - and workload - fields
  (:class:`GridAxis`),
* a *workload* spec (:mod:`repro.workloads.spec`),
* an *evaluation method* (:class:`EvaluationMethod`: cycle-accurate bus
  simulation, reduced Markov chain, product-form MVA, the closed-form
  crossbar model, or the Section 3.2 combinational bandwidth model),
* a *replication plan* (:class:`ReplicationPlan`: how many seeds), and
* optional extra *metrics* (currently ``latency``: streaming
  wait/service/total percentile summaries per work unit).

Every figure and table of the paper is one such sweep; so are the
non-paper studies (hot-spot severity, buffer-depth scaling, ...).  The
compiler (:mod:`repro.scenarios.compiler`) lowers a spec into a
deterministic, stably-ordered work-unit list;
:func:`repro.scenarios.registry.load_scenario_file` loads specs from
TOML/JSON files with the same field names used here.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Iterator, Mapping, Sequence

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority, TieBreak
from repro.engine.base import ALL_WORKLOAD_KINDS, EvaluationMethod
from repro.workloads.spec import (
    UniformWorkload,
    WorkloadSpec,
    workload_payload,
)

CONFIG_FIELDS: tuple[str, ...] = tuple(
    field.name for field in dataclasses.fields(SystemConfig)
)
"""The :class:`SystemConfig` field names a grid axis or base may set."""

WORKLOAD_FIELD_PREFIX = "workload."
"""Axis fields starting with this prefix override workload-spec fields."""

KNOWN_METRICS: frozenset[str] = frozenset({"latency"})
"""Metric families a scenario may request (currently only latency)."""


def _coerce_config_value(field: str, value: Any) -> Any:
    """Convert TOML-friendly strings to the enum types config expects."""
    if field == "priority" and isinstance(value, str):
        try:
            return Priority(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown priority {value!r}; known: "
                f"{', '.join(p.value for p in Priority)}"
            ) from None
    if field == "tie_break" and isinstance(value, str):
        try:
            return TieBreak(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown tie_break {value!r}; known: "
                f"{', '.join(t.value for t in TieBreak)}"
            ) from None
    return value


def _json_value(value: Any) -> Any:
    """Canonical JSON form of an axis/base value (enums become strings)."""
    if isinstance(value, enum.Enum):
        return str(value.value)
    if isinstance(value, tuple):
        return [_json_value(item) for item in value]
    return value


@dataclasses.dataclass(frozen=True)
class GridAxis:
    """One axis of a scenario grid.

    ``fields`` names one or more :class:`SystemConfig` fields (or
    ``workload.<field>`` entries); ``values`` lists the points of the
    axis, each a tuple with one entry per field.  Joint multi-field axes
    express paired sweeps such as the paper's ``(n, m)`` system list
    without producing the unwanted full cross product.

    Single-field axes accept the obvious shorthand::

        GridAxis("memory_cycle_ratio", (2, 4, 8))
        GridAxis(("processors", "memories"), ((4, 4), (8, 8)))
    """

    fields: tuple[str, ...]
    values: tuple[tuple[Any, ...], ...]

    def __post_init__(self) -> None:
        fields = self.fields
        if isinstance(fields, str):
            fields = (fields,)
        fields = tuple(fields)
        if not fields:
            raise ConfigurationError("a grid axis needs at least one field")
        if len(set(fields)) != len(fields):
            raise ConfigurationError(
                f"grid axis repeats a field: {', '.join(fields)}"
            )
        for field in fields:
            if field.startswith(WORKLOAD_FIELD_PREFIX):
                continue
            if field not in CONFIG_FIELDS:
                raise ConfigurationError(
                    f"unknown grid field {field!r}; config fields: "
                    f"{', '.join(CONFIG_FIELDS)} (or workload.<field>)"
                )
        raw_values = tuple(self.values)
        if not raw_values:
            raise ConfigurationError(
                f"grid axis over {', '.join(fields)} needs at least one value"
            )
        values = []
        for value in raw_values:
            if len(fields) == 1 and not isinstance(value, (tuple, list)):
                value = (value,)
            value = tuple(value)
            if len(value) != len(fields):
                raise ConfigurationError(
                    f"axis value {value!r} does not match fields "
                    f"({', '.join(fields)})"
                )
            values.append(
                tuple(
                    _coerce_config_value(field, item)
                    for field, item in zip(fields, value)
                )
            )
        object.__setattr__(self, "fields", fields)
        object.__setattr__(self, "values", tuple(values))

    def payload(self) -> dict[str, Any]:
        """Canonical JSON-able description of this axis."""
        return {
            "fields": list(self.fields),
            "values": [_json_value(value) for value in self.values],
        }


@dataclasses.dataclass(frozen=True)
class ReplicationPlan:
    """How many independent replications each grid point runs.

    Seeds follow the library-wide convention ``base_seed + i`` (see
    :func:`repro.des.replications.replication_seeds`), so scenario
    replications land on the same seeds the replication machinery uses.
    """

    replications: int = 1
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.replications, int) or self.replications < 1:
            raise ConfigurationError(
                f"replications must be a positive integer, got "
                f"{self.replications!r}"
            )
        if not isinstance(self.base_seed, int) or isinstance(
            self.base_seed, bool
        ):
            raise ConfigurationError(
                f"base_seed must be an integer, got {self.base_seed!r}"
            )

    @property
    def seeds(self) -> tuple[int, ...]:
        """The seed of each replication, in replication order."""
        return tuple(self.base_seed + i for i in range(self.replications))

    def payload(self) -> dict[str, Any]:
        """Canonical JSON-able description of this plan."""
        return {"replications": self.replications, "base_seed": self.base_seed}


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative description of one design-space sweep."""

    name: str
    base: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    grid: tuple[GridAxis, ...] = ()
    workload: WorkloadSpec = UniformWorkload()
    method: EvaluationMethod = EvaluationMethod.SIMULATION
    cycles: int = 50_000
    warmup: int | None = None
    plan: ReplicationPlan = ReplicationPlan()
    description: str = ""
    metrics: tuple[str, ...] = ()
    """Extra per-unit metric families (:data:`KNOWN_METRICS`), e.g.
    ``("latency",)`` for streaming wait/service/total percentiles.
    Stored sorted and deduplicated so equal requests hash equally."""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ConfigurationError(
                f"scenario name must be a non-empty string, got {self.name!r}"
            )
        base = dict(self.base)
        for field in base:
            if field not in CONFIG_FIELDS:
                raise ConfigurationError(
                    f"unknown base field {field!r}; config fields: "
                    f"{', '.join(CONFIG_FIELDS)}"
                )
        base = {
            field: _coerce_config_value(field, value)
            for field, value in base.items()
        }
        object.__setattr__(self, "base", base)
        grid = tuple(self.grid)
        seen: set[str] = set()
        for axis in grid:
            if not isinstance(axis, GridAxis):
                raise ConfigurationError(
                    f"grid entries must be GridAxis instances, got {axis!r}"
                )
            duplicate = seen.intersection(axis.fields)
            if duplicate:
                raise ConfigurationError(
                    f"field(s) {', '.join(sorted(duplicate))} appear on "
                    "more than one grid axis"
                )
            seen.update(axis.fields)
        object.__setattr__(self, "grid", grid)
        if not isinstance(self.method, EvaluationMethod):
            raise ConfigurationError(
                f"method must be an EvaluationMethod, got {self.method!r}"
            )
        if not isinstance(self.cycles, int) or self.cycles < 1:
            raise ConfigurationError(
                f"cycles must be a positive integer, got {self.cycles!r}"
            )
        if self.warmup is not None and (
            not isinstance(self.warmup, int) or self.warmup < 0
        ):
            raise ConfigurationError(
                f"warmup must be None or a non-negative integer, got "
                f"{self.warmup!r}"
            )
        if not isinstance(self.plan, ReplicationPlan):
            raise ConfigurationError(
                f"plan must be a ReplicationPlan, got {self.plan!r}"
            )
        if isinstance(self.metrics, str):
            raise ConfigurationError(
                "metrics must be a sequence of metric names, not a string"
            )
        if isinstance(self.metrics, Mapping):
            # A TOML inline table like `metrics = {latency = false}`
            # would otherwise iterate into its keys and silently ENABLE
            # the metric the user tried to toggle off.
            raise ConfigurationError(
                f"metrics must be a sequence of metric names, got the "
                f"table {dict(self.metrics)!r}"
            )
        try:
            raw_metrics = tuple(self.metrics)
        except TypeError:
            raise ConfigurationError(
                f"metrics must be a sequence of metric names, got "
                f"{self.metrics!r}"
            ) from None
        for metric in raw_metrics:
            if not isinstance(metric, str) or metric not in KNOWN_METRICS:
                raise ConfigurationError(
                    f"unknown metric {metric!r}; known: "
                    f"{', '.join(sorted(KNOWN_METRICS))}"
                )
        metrics = tuple(sorted(set(raw_metrics)))
        object.__setattr__(self, "metrics", metrics)
        # Capability validation: the evaluator registry declares what
        # each method can evaluate, so unsupported metric families and
        # workload kinds are rejected here - at spec-construction (hence
        # scenario-load) time - with a message naming the constraint.
        from repro.engine.registry import get_evaluator

        capabilities = get_evaluator(self.method).capabilities
        capabilities.check_metrics(metrics)
        workload_fields = [
            field
            for axis in grid
            for field in axis.fields
            if field.startswith(WORKLOAD_FIELD_PREFIX)
        ]
        capabilities.check_workload_kind(self.workload.kind)
        if workload_fields and capabilities.workloads != ALL_WORKLOAD_KINDS:
            raise ConfigurationError(
                f"method {self.method} is analytic and supports only the "
                "uniform workload (hypothesis (e)); it cannot sweep "
                f"workload field(s) {', '.join(workload_fields)}"
            )

    # ------------------------------------------------------------------
    def points(self) -> Iterator[tuple[SystemConfig, WorkloadSpec]]:
        """Enumerate grid points in canonical (row-major) order.

        Axes vary like a nested loop written in declaration order: the
        last axis fastest.  Each point yields the fully-built
        configuration and workload with every axis override applied.
        """
        import itertools

        for combo in itertools.product(*(axis.values for axis in self.grid)):
            config_overrides: dict[str, Any] = {}
            workload_overrides: dict[str, Any] = {}
            for axis, values in zip(self.grid, combo):
                for field, value in zip(axis.fields, values):
                    if field.startswith(WORKLOAD_FIELD_PREFIX):
                        workload_overrides[
                            field[len(WORKLOAD_FIELD_PREFIX):]
                        ] = value
                    else:
                        config_overrides[field] = value
            try:
                config = SystemConfig(**{**self.base, **config_overrides})
            except TypeError as exc:
                raise ConfigurationError(
                    f"scenario {self.name!r} does not fully specify a "
                    f"system configuration: {exc}"
                ) from exc
            workload = self.workload
            if workload_overrides:
                try:
                    workload = dataclasses.replace(
                        workload, **workload_overrides
                    )
                except TypeError as exc:
                    raise ConfigurationError(
                        f"workload kind {workload.kind!r} does not accept "
                        f"override(s) {sorted(workload_overrides)}: {exc}"
                    ) from exc
            workload.validate(config)
            yield config, workload

    def grid_size(self) -> int:
        """Number of grid points (excluding replications)."""
        size = 1
        for axis in self.grid:
            size *= len(axis.values)
        return size

    def payload(self) -> dict[str, Any]:
        """Canonical JSON-able description of the whole spec."""
        return {
            "name": self.name,
            "base": {
                field: _json_value(value)
                for field, value in sorted(self.base.items())
            },
            "grid": [axis.payload() for axis in self.grid],
            "workload": workload_payload(self.workload),
            "method": str(self.method),
            "cycles": self.cycles,
            "warmup": self.warmup,
            "plan": self.plan.payload(),
            "metrics": list(self.metrics),
        }


def _parse_axis(entry: Mapping[str, Any]) -> GridAxis:
    if not isinstance(entry, Mapping):
        raise ConfigurationError(f"grid entries must be tables, got {entry!r}")
    data = dict(entry)
    fields: Sequence[str] | str
    if "field" in data and "fields" in data:
        raise ConfigurationError("a grid axis takes 'field' or 'fields', not both")
    if "field" in data:
        fields = data.pop("field")
    elif "fields" in data:
        fields = data.pop("fields")
    else:
        raise ConfigurationError("a grid axis needs a 'field' or 'fields' key")
    values = data.pop("values", None)
    if values is None:
        raise ConfigurationError("a grid axis needs a 'values' list")
    if data:
        raise ConfigurationError(
            f"unknown grid axis key(s): {', '.join(sorted(data))}"
        )
    if isinstance(fields, str):
        fields = (fields,)
    return GridAxis(tuple(fields), tuple(values))


def spec_from_mapping(data: Mapping[str, Any]) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a plain mapping.

    The mapping uses exactly the TOML/JSON file schema (see
    ``SCENARIOS.md``): ``name``, ``description``, ``method``, ``cycles``,
    ``warmup``, a ``base`` table, a ``grid`` list of axis tables, a
    ``workload`` table, and a ``replications`` table.
    """
    from repro.workloads.spec import workload_from_payload

    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"a scenario definition must be a mapping, got {data!r}"
        )
    data = dict(data)
    known = {
        "name",
        "description",
        "method",
        "cycles",
        "warmup",
        "base",
        "grid",
        "workload",
        "replications",
        "metrics",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown scenario key(s): {', '.join(unknown)}"
        )
    if "name" not in data:
        raise ConfigurationError("a scenario definition needs a 'name'")
    method = data.get("method", "simulation")
    if isinstance(method, str):
        try:
            method = EvaluationMethod(method)
        except ValueError:
            known_methods = ", ".join(m.value for m in EvaluationMethod)
            raise ConfigurationError(
                f"unknown method {method!r}; known: {known_methods}"
            ) from None
    grid = tuple(_parse_axis(entry) for entry in data.get("grid", ()))
    workload: WorkloadSpec = UniformWorkload()
    if "workload" in data:
        workload = workload_from_payload(data["workload"])
    plan = ReplicationPlan()
    if "replications" in data:
        plan_data = dict(data["replications"])
        unknown = sorted(set(plan_data) - {"count", "base_seed"})
        if unknown:
            raise ConfigurationError(
                f"unknown replications key(s): {', '.join(unknown)}"
            )
        plan = ReplicationPlan(
            replications=plan_data.get("count", 1),
            base_seed=plan_data.get("base_seed", 0),
        )
    metrics = data.get("metrics", ())
    if isinstance(metrics, str):
        raise ConfigurationError(
            "the 'metrics' key takes a list of metric names, "
            f"got the string {metrics!r}"
        )
    kwargs: dict[str, Any] = {
        "name": data["name"],
        "base": data.get("base", {}),
        "grid": grid,
        "workload": workload,
        "method": method,
        "plan": plan,
        "description": data.get("description", ""),
        # Validated (shape and names) by ScenarioSpec itself.
        "metrics": metrics,
    }
    if "cycles" in data:
        kwargs["cycles"] = data["cycles"]
    if "warmup" in data:
        kwargs["warmup"] = data["warmup"]
    return ScenarioSpec(**kwargs)
