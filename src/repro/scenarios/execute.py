"""Execute compiled work units and render mergeable reports.

:func:`evaluate_unit` is the single module-level (hence pool- and
spawn-safe) dispatcher from a :class:`~repro.scenarios.compiler.WorkUnit`
to its metrics; :func:`run_units` fans uncached units over the
:mod:`repro.parallel` pool map and serves repeats from a
:class:`~repro.parallel.cache.ResultCache` keyed on each unit's
content-addressed payload (which covers the workload spec, so hot-spot
and trace results can never collide with uniform entries).

Report format and sharding
--------------------------
:func:`unit_line` renders one unit result as one self-contained line
starting with ``unit <zero-padded index>``.  A sharded run prints only
its own units' lines; because every line carries the unsharded index,
sorting the concatenation of all shards' lines (:func:`merge_reports`)
reproduces the unsharded report byte-for-byte.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

from repro.core.errors import ConfigurationError, ExperimentError
from repro.engine.base import EvalResult, EvaluationMethod, LittlesLawLatency
from repro.engine.registry import get_evaluator
from repro.metrics import LatencyReport
from repro.parallel.pool import map_ordered
from repro.scenarios.compiler import WorkUnit, compile_scenario, shard_units
from repro.scenarios.spec import ScenarioSpec


@dataclasses.dataclass(frozen=True)
class UnitResult:
    """The measured metrics of one executed work unit."""

    unit: WorkUnit
    ebw: float
    processor_utilization: float
    bus_utilization: float
    cached: bool = False
    latency: LatencyReport | None = None
    """Wait/service/total latency summaries (latency-metric units only)."""
    littles: LittlesLawLatency | None = None
    """Analytic Little's-law means (``mva`` units with the latency
    metric)."""


def evaluate_unit(unit: WorkUnit) -> dict[str, Any]:
    """Evaluate one work unit (module-level, hence pool-safe).

    Resolves the unit's method in the evaluator registry
    (:mod:`repro.engine.registry`) and returns the evaluation's plain
    JSON-able metrics mapping so the value can be cached verbatim;
    floats round-trip exactly through JSON, so cached and
    freshly-computed runs are byte-identical.  Latency-metric units add
    a ``"latency"`` entry holding the exact (rational-encoded)
    wait/service/total summaries (or, for the ``mva`` method, a
    ``"littles_law"`` entry with the analytic means), which also
    round-trip exactly.
    """
    return get_evaluator(unit.method).evaluate(unit.request()).payload()


def evaluate_fleet(
    units: Sequence[WorkUnit], pack: bool = True
) -> list[dict[str, Any]]:
    """Evaluate batch-kernel simulation units as one lockstep fleet.

    The fleet-aggregation fast path of :func:`run_units`: instead of
    one evaluator dispatch per unit, the whole block of units runs
    through a single :func:`repro.parallel.fleet.run_fleet` call.
    Fleet rows are independent, so each unit's payload is byte-identical
    to the payload :func:`evaluate_unit` would produce for it alone
    (property-tested); the aggregation is purely a wall-clock lever.
    ``pack`` selects shape-packed super-fleets versus homogeneous
    grouping inside the call - identical bytes either way.
    """
    from repro.parallel.fleet import run_fleet

    results = run_fleet([unit.case() for unit in units], pack=pack)
    return [
        EvalResult(
            ebw=result.ebw,
            processor_utilization=result.processor_utilization,
            bus_utilization=result.bus_utilization,
            latency=result.latency,
        ).payload()
        for result in results
    ]


def _evaluate_task(task) -> list[dict[str, Any]]:
    """Pool task: one single unit or one batch fleet (module-level).

    Returns a list of payloads aligned with the task's units, so single
    units and fleets flow through one :func:`map_ordered` call.
    """
    kind, payload = task
    if kind == "unit":
        return [evaluate_unit(payload)]
    fleet_units, pack = payload
    return evaluate_fleet(fleet_units, pack=pack)


def _batchable(unit: WorkUnit) -> bool:
    """Whether a unit can join a lockstep fleet.

    Latency-metric units qualify: the batch kernel collects wait/total
    distributions through per-row quantile sketches, and the fleet key
    (:func:`repro.parallel.fleet.fleet_key`) separates latency fleets
    from plain ones.
    """
    return (
        unit.method is EvaluationMethod.SIMULATION
        and unit.kernel == "batch"
    )


def _evaluation_tasks(
    units: Sequence[WorkUnit],
    pack: bool = True,
) -> tuple[list[tuple], list[list[int]]]:
    """Group units into pool tasks, fleets first-appearance ordered.

    Batch-kernel simulation units sharing a grouping key travel as one
    ``("fleet", ((...units...), pack))`` task; everything else stays a
    ``("unit", unit)`` task.  ``pack=True`` (the default) keys fleets
    on :func:`repro.parallel.fleet.pack_key`, so shape-heterogeneous
    sweeps land in one padded super-fleet per batch call;
    ``pack=False`` keeps the homogeneous
    :func:`~repro.parallel.fleet.fleet_key` grouping.  Returns the
    tasks plus, aligned with them, each task's member positions in
    ``units``.  The grouping is a deterministic function of the unit
    list, and - because fleet rows are independent - it can never
    change any unit's bytes.
    """
    from repro.parallel.fleet import fleet_key, pack_key

    grouping_key = pack_key if pack else fleet_key
    fleets: dict[tuple, list[int]] = {}
    order: list[tuple[str, Any]] = []
    for position, unit in enumerate(units):
        if _batchable(unit):
            key = grouping_key(unit.case())
            if key not in fleets:
                fleets[key] = []
                order.append(("fleet", key))
            fleets[key].append(position)
        else:
            order.append(("unit", position))
    tasks: list[tuple] = []
    groups: list[list[int]] = []
    for kind, content in order:
        if kind == "unit":
            tasks.append(("unit", units[content]))
            groups.append([content])
        else:
            members = fleets[content]
            tasks.append(
                ("fleet", (tuple(units[i] for i in members), pack))
            )
            groups.append(members)
    return tasks, groups


def _expectations(unit: WorkUnit) -> tuple[bool, bool]:
    """Which latency payload flavours this unit's metrics must carry."""
    if not unit.collects_latency:
        return False, False
    if unit.method is EvaluationMethod.SIMULATION:
        return True, False
    return False, True


def result_from_metrics(
    unit: WorkUnit, metrics: Any, cached: bool
) -> UnitResult:
    expect_latency, expect_littles = _expectations(unit)
    try:
        # A cached entry without the latency payload (or with a stale
        # format) is malformed for this unit and triggers a recompute,
        # exactly like a missing ebw would.
        value = EvalResult.from_payload(
            metrics,
            expect_latency=expect_latency,
            expect_littles=expect_littles,
        )
        return UnitResult(
            unit=unit,
            ebw=value.ebw,
            processor_utilization=value.processor_utilization,
            bus_utilization=value.bus_utilization,
            cached=cached,
            latency=value.latency,
            littles=value.littles,
        )
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        raise ExperimentError(
            f"malformed metrics payload for unit {unit.index}: {exc!r}"
        ) from exc


def run_units(
    units: Sequence[WorkUnit],
    jobs: int | None = 1,
    cache=None,
    pack: bool = True,
) -> list[UnitResult]:
    """Execute ``units`` in order, via pool and cache when available.

    The returned list preserves input order, and its values are
    independent of ``jobs``, cache state and ``pack`` - these levers
    change wall-clock time, never bytes.  Units whose content-addressed
    payloads coincide (e.g. analytic-method replications, whose keys
    ignore the seed) are computed once and fanned out.  ``pack``
    selects shape-packed super-fleets for batch-kernel units (the
    default) versus one fleet per homogeneous shape.
    """
    from repro.parallel.cache import fingerprint

    units = list(units)
    keys: list[str] = []
    results: dict[int, UnitResult] = {}
    for unit in units:
        keys.append(
            cache.key(unit.payload())
            if cache is not None
            else fingerprint(unit.payload())
        )
    if cache is not None:
        # One batched probe resolves every cached unit up front
        # (repeated keys are probed once), so a warm sweep never reaches
        # the pool at all.
        cached_values = cache.get_many(keys)
        for position, unit in enumerate(units):
            value = cached_values.get(keys[position])
            if value is not None:
                try:
                    results[position] = result_from_metrics(unit, value, True)
                except ExperimentError:
                    # Malformed entry: recompute below.
                    results.pop(position, None)
    pending = [
        position for position in range(len(units)) if position not in results
    ]
    if pending:
        representatives: list[int] = []
        seen: set[str] = set()
        for position in pending:
            if keys[position] not in seen:
                seen.add(keys[position])
                representatives.append(position)
        # Batch-kernel units aggregate into lockstep fleets (one
        # vectorized call per fleet) while everything else dispatches
        # per unit; both travel through the same ordered pool map.
        tasks, groups = _evaluation_tasks(
            [units[position] for position in representatives], pack=pack
        )
        computed_lists = map_ordered(_evaluate_task, tasks, max_workers=jobs)
        metrics_by_key: dict[str, Any] = {}
        for members, payloads in zip(groups, computed_lists):
            for member, metrics in zip(members, payloads):
                metrics_by_key[keys[representatives[member]]] = metrics
        for position in pending:
            results[position] = result_from_metrics(
                units[position], metrics_by_key[keys[position]], False
            )
        if cache is not None:
            for position in representatives:
                try:
                    cache.put(keys[position], metrics_by_key[keys[position]])
                except (OSError, ConfigurationError):
                    # A full disk must not block the science run.
                    pass
    return [results[position] for position in range(len(units))]


def run_scenario(
    spec: ScenarioSpec,
    shard: tuple[int, int] | None = None,
    jobs: int | None = 1,
    cache=None,
    kernel: str = "reference",
    backend: str = "numpy",
    pack: bool = True,
) -> list[UnitResult]:
    """Compile ``spec``, optionally take one shard, and execute it.

    ``kernel`` selects the simulation loop: ``"reference"`` and
    ``"fast"`` are bit-identical, so that choice changes wall-clock
    only - exactly like ``jobs`` and ``cache``.  ``"batch"`` runs
    lockstep fleets whose bytes are reproducible in themselves (across
    shards, jobs and grouping) but deliberately different from the
    exact kernels' - never mix batch and exact shards of one sweep.
    ``backend`` selects the batch kernel's array substrate
    (:mod:`repro.bus.backends`); the numpy/numba pair is bit-identical,
    so that choice too changes wall-clock only.  ``pack`` toggles
    shape-packed super-fleets for batch units (on by default; also a
    pure wall-clock lever).
    """
    units = compile_scenario(spec, kernel=kernel, backend=backend)
    if shard is not None:
        shard_index, shard_count = shard
        units = shard_units(units, shard_index, shard_count)
    return run_units(units, jobs=jobs, cache=cache, pack=pack)


# ----------------------------------------------------------------------
# Report rendering.
# ----------------------------------------------------------------------
def _describe_config(unit: WorkUnit) -> str:
    config = unit.config
    buffering = (
        f"buffered(depth={config.buffer_depth})"
        if config.buffered
        else "unbuffered"
    )
    return (
        f"n={config.processors} m={config.memories} "
        f"r={config.memory_cycle_ratio} p={config.request_probability:g} "
        f"priority={config.priority} {buffering} tie={config.tie_break}"
    )


def _summary_columns(prefix: str, summary) -> str:
    """Fixed-format percentile columns for one latency population."""
    return (
        f"{prefix}_mean={summary.mean:.6f} "
        f"{prefix}_p50={summary.p50_value:.6f} "
        f"{prefix}_p90={summary.p90_value:.6f} "
        f"{prefix}_p99={summary.p99_value:.6f} "
        f"{prefix}_max={summary.max_value:.6f}"
    )


def unit_line(result: UnitResult) -> str:
    """One deterministic, self-contained report line for one unit.

    The leading ``unit <index:06d>`` token gives the line its global
    position, which is the whole sharding contract: shard outputs sorted
    on that token equal the unsharded output.  Latency-metric units
    append the percentile columns (``lat_count`` plus
    mean/p50/p90/p99/max for each of wait/service/total); units without
    metrics render the exact pre-metrics bytes.
    """
    unit = result.unit
    workload = unit.workload.describe() if unit.workload is not None else "uniform"
    line = (
        f"unit {unit.index:06d} {_describe_config(unit)} "
        f"workload={workload} method={unit.method} seed={unit.seed} "
        f"cycles={unit.cycles} ebw={result.ebw:.6f} "
        f"putil={result.processor_utilization:.6f} "
        f"butil={result.bus_utilization:.6f}"
    )
    if result.latency is not None:
        report = result.latency
        line += (
            f" lat_count={report.total.count} "
            f"{_summary_columns('wait', report.wait)} "
            f"{_summary_columns('serv', report.service)} "
            f"{_summary_columns('lat', report.total)}"
        )
    if result.littles is not None:
        littles = result.littles
        line += (
            f" wait_mean={littles.wait_mean:.6f} "
            f"total_mean={littles.total_mean:.6f} "
            f"qlen_bus={littles.queue_bus:.6f} "
            f"qlen_mem={littles.queue_memory:.6f}"
        )
    return line


def render_report(results: Iterable[UnitResult]) -> str:
    """The unit lines of ``results``, one per line, in input order."""
    return "\n".join(unit_line(result) for result in results)


def _line_index(line: str) -> int:
    parts = line.split()
    if len(parts) < 2 or parts[0] != "unit":
        raise ConfigurationError(f"not a scenario unit line: {line!r}")
    try:
        return int(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"not a scenario unit line: {line!r}"
        ) from None


def merge_reports(reports: Iterable[str]) -> str:
    """Merge shard reports into the canonical unsharded report.

    Accepts each shard's stdout (possibly empty), validates that unit
    indices neither collide nor leave holes
    (:func:`~repro.scenarios.compiler.merge_by_index`), and returns the
    lines sorted by unit index - byte-identical to the unsharded run.
    """
    from repro.scenarios.compiler import merge_by_index

    entries = (
        (_line_index(line), line)
        for report in reports
        for line in report.splitlines()
        if line.strip()
    )
    return "\n".join(merge_by_index(entries, "report line"))
