"""Named scenario registry and file loading.

Built-in scenarios live in :mod:`repro.scenarios.builtin` (imported
lazily, mirroring the experiment registry); user scenarios load from
TOML or JSON files with :func:`load_scenario`, which accepts either a
registered name or a path.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec, spec_from_mapping

_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the registry (module import side effect)."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(f"duplicate scenario name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one registered scenario; raises on unknown names."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


def all_scenarios() -> Sequence[ScenarioSpec]:
    """All registered scenarios, sorted by name."""
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda spec: spec.name)


def load_scenario_file(path: str | pathlib.Path) -> ScenarioSpec:
    """Load one scenario spec from a ``.toml`` or ``.json`` file."""
    path = pathlib.Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario file {path}: {exc}") from exc
    suffix = path.suffix.lower()
    if suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
            raise ConfigurationError(
                "TOML scenario files need Python >= 3.11 (tomllib); "
                "use the JSON format instead"
            ) from None
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"malformed TOML scenario file {path}: {exc}"
            ) from exc
    elif suffix == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"malformed JSON scenario file {path}: {exc}"
            ) from exc
    else:
        raise ConfigurationError(
            f"scenario files must end in .toml or .json, got {path.name!r}"
        )
    return spec_from_mapping(data)


def load_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve a CLI scenario argument: registered name or spec file."""
    text = str(name_or_path)
    if text.endswith((".toml", ".json")) or "/" in text:
        return load_scenario_file(text)
    return get_scenario(text)


def _ensure_loaded() -> None:
    """Import the built-in scenario definitions so they register."""
    from repro.scenarios import builtin  # noqa: F401
