"""Reachability-driven construction of Markov chains.

The paper's chains are most naturally written as a *transition function*
(state -> successor distribution) plus one initial state; the full state
space is whatever that function reaches.  :func:`build_chain` performs the
breadth-first enumeration and returns a
:class:`~repro.markov.chain.DiscreteTimeMarkovChain` over exactly the
reachable states - which is how we reproduce the paper's state-count
formula ``S = (3v^2 + 3v - 2) / 2`` including its implicit exclusion of
unreachable states.
"""

from __future__ import annotations

import collections
from typing import Callable, Hashable, Iterable, Mapping, TypeVar

from repro.core.errors import ModelError
from repro.markov.chain import DiscreteTimeMarkovChain

State = TypeVar("State", bound=Hashable)

TransitionFunction = Callable[[State], Mapping[State, float]]

_DEFAULT_MAX_STATES = 2_000_000


def build_chain(
    initial: State | Iterable[State],
    transition: TransitionFunction,
    max_states: int = _DEFAULT_MAX_STATES,
) -> DiscreteTimeMarkovChain[State]:
    """Enumerate all states reachable from ``initial`` and build the DTMC.

    Parameters
    ----------
    initial:
        One state or an iterable of seed states.
    transition:
        Maps a state to its successor distribution.  Probabilities of one
        state must sum to 1; zero-probability successors may be included
        and are dropped.
    max_states:
        Safety bound on the enumeration (the paper's chains have at most
        a few hundred states; hitting this bound indicates a bug in the
        transition function).
    """
    seeds = [initial] if isinstance(initial, Hashable) and not _is_iterable_of_states(
        initial
    ) else list(initial)  # type: ignore[arg-type]
    if not seeds:
        raise ModelError("at least one initial state is required")

    order: list[State] = []
    index: dict[State, int] = {}
    queue: collections.deque[State] = collections.deque()
    for seed in seeds:
        if seed not in index:
            index[seed] = len(order)
            order.append(seed)
            queue.append(seed)

    rows_by_state: dict[State, Mapping[State, float]] = {}
    while queue:
        state = queue.popleft()
        successors = transition(state)
        rows_by_state[state] = successors
        for successor, probability in successors.items():
            if probability <= 0.0:
                continue
            if successor not in index:
                if len(order) >= max_states:
                    raise ModelError(
                        f"state enumeration exceeded max_states={max_states}"
                    )
                index[successor] = len(order)
                order.append(successor)
                queue.append(successor)

    rows: list[dict[int, float]] = []
    for state in order:
        row: dict[int, float] = {}
        for successor, probability in rows_by_state[state].items():
            if probability <= 0.0:
                continue
            row[index[successor]] = row.get(index[successor], 0.0) + probability
        rows.append(row)
    return DiscreteTimeMarkovChain(order, rows)


def _is_iterable_of_states(value: object) -> bool:
    """Treat lists/sets/generators as seed collections, not single states.

    Tuples are *states* in this library (occupancy vectors and the
    ``(i, c, e, b)`` states are tuples), so they count as single states.
    """
    return isinstance(value, (list, set, frozenset)) or (
        hasattr(value, "__iter__") and not isinstance(value, (str, bytes, tuple))
    )
