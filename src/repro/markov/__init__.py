"""Finite Markov-chain substrate.

Generic DTMC machinery (:mod:`repro.markov.chain`), reachability-driven
chain construction (:mod:`repro.markov.builder`) and the shared sorted
occupancy-vector chain (:mod:`repro.markov.occupancy`) that underlies the
crossbar, multiple-bus and Section 3.1.1 exact models.
"""

from repro.markov.builder import build_chain
from repro.markov.chain import DiscreteTimeMarkovChain
from repro.markov.occupancy import OccupancyChain, OccupancyState, canonical
from repro.markov.transient import (
    expected_hitting_steps,
    mixing_steps,
    step_distribution,
    total_variation_distance,
)

__all__ = [
    "DiscreteTimeMarkovChain",
    "build_chain",
    "OccupancyChain",
    "OccupancyState",
    "canonical",
    "step_distribution",
    "total_variation_distance",
    "mixing_steps",
    "expected_hitting_steps",
]
