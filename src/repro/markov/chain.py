"""Finite discrete-time Markov chains.

The analytical models of the paper (Sections 3 and 4) all reduce to
computing the stationary distribution of a finite, irreducible DTMC.
:class:`DiscreteTimeMarkovChain` stores sparse transition rows over
arbitrary hashable state objects and solves for the stationary vector
either directly (dense linear solve - exact up to floating point, used by
all the paper models, whose state spaces are tiny) or by power iteration
(for larger chains and for cross-checking).
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Mapping, Sequence, TypeVar

import numpy as np

from repro.core.errors import ModelError

State = TypeVar("State", bound=Hashable)

_ROW_SUM_TOLERANCE = 1e-9


class DiscreteTimeMarkovChain(Generic[State]):
    """A finite DTMC with sparse rows.

    Parameters
    ----------
    states:
        The state objects, in index order.
    rows:
        ``rows[i]`` maps successor state *indices* to probabilities; each
        row must sum to 1 within a small tolerance.
    """

    def __init__(
        self,
        states: Sequence[State],
        rows: Sequence[Mapping[int, float]],
    ) -> None:
        if len(states) != len(rows):
            raise ModelError(
                f"{len(states)} states but {len(rows)} transition rows"
            )
        if not states:
            raise ModelError("a Markov chain needs at least one state")
        self._states = list(states)
        self._index = {state: i for i, state in enumerate(self._states)}
        if len(self._index) != len(self._states):
            raise ModelError("duplicate states supplied")
        self._rows: list[dict[int, float]] = []
        for i, row in enumerate(rows):
            total = 0.0
            clean: dict[int, float] = {}
            for j, probability in row.items():
                if not 0 <= j < len(self._states):
                    raise ModelError(f"row {i} references unknown state index {j}")
                if probability < -_ROW_SUM_TOLERANCE:
                    raise ModelError(
                        f"negative transition probability {probability} in row {i}"
                    )
                if probability <= 0.0:
                    continue
                clean[j] = clean.get(j, 0.0) + probability
                total += probability
            if abs(total - 1.0) > _ROW_SUM_TOLERANCE:
                raise ModelError(
                    f"row {i} ({self._states[i]!r}) sums to {total!r}, expected 1"
                )
            self._rows.append(clean)

    # ------------------------------------------------------------------
    @property
    def states(self) -> tuple[State, ...]:
        """The state objects in index order."""
        return tuple(self._states)

    @property
    def size(self) -> int:
        """Number of states."""
        return len(self._states)

    def index_of(self, state: State) -> int:
        """The index of ``state`` (raises :class:`ModelError` if absent)."""
        try:
            return self._index[state]
        except KeyError:
            raise ModelError(f"unknown state {state!r}") from None

    def row(self, state: State) -> dict[State, float]:
        """Successor distribution of ``state`` keyed by state object."""
        i = self.index_of(state)
        return {self._states[j]: p for j, p in self._rows[i].items()}

    def transition_matrix(self) -> np.ndarray:
        """The dense row-stochastic transition matrix."""
        matrix = np.zeros((self.size, self.size))
        for i, row in enumerate(self._rows):
            for j, probability in row.items():
                matrix[i, j] = probability
        return matrix

    # ------------------------------------------------------------------
    def is_irreducible(self) -> bool:
        """True when every state reaches every other state.

        Uses Tarjan-free double BFS on the adjacency structure: the chain
        is irreducible iff some state reaches all states in both the
        forward and the reversed graph.
        """
        forward = [set(row.keys()) for row in self._rows]
        backward: list[set[int]] = [set() for _ in range(self.size)]
        for i, row in enumerate(self._rows):
            for j in row:
                backward[j].add(i)
        return (
            len(_reachable_from(0, forward)) == self.size
            and len(_reachable_from(0, backward)) == self.size
        )

    def stationary_distribution(self, method: str = "direct") -> np.ndarray:
        """The stationary probability vector ``pi`` with ``pi P = pi``.

        ``method="direct"`` solves the linear system with the
        normalisation constraint substituted for one balance equation;
        ``method="power"`` iterates ``pi <- pi P`` from uniform until
        convergence.  Both require an irreducible chain.
        """
        if not self.is_irreducible():
            raise ModelError(
                "stationary distribution requested for a reducible chain"
            )
        if method == "direct":
            return self._stationary_direct()
        if method == "power":
            return self._stationary_power()
        raise ModelError(f"unknown stationary method {method!r}")

    def _stationary_direct(self) -> np.ndarray:
        matrix = self.transition_matrix()
        # Solve pi (P - I) = 0 subject to sum(pi) = 1 by replacing the
        # last column of (P - I)^T with ones.
        system = (matrix - np.eye(self.size)).T
        system[-1, :] = 1.0
        rhs = np.zeros(self.size)
        rhs[-1] = 1.0
        try:
            pi = np.linalg.solve(system, rhs)
        except np.linalg.LinAlgError as error:  # pragma: no cover - guarded by irreducibility
            raise ModelError(f"stationary solve failed: {error}") from error
        pi = np.where(np.abs(pi) < 1e-14, 0.0, pi)
        if np.any(pi < -1e-9):
            raise ModelError("stationary solve produced negative probabilities")
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def _stationary_power(
        self, tolerance: float = 1e-13, max_iterations: int = 1_000_000
    ) -> np.ndarray:
        matrix = self.transition_matrix()
        # Damp with a half step of the identity so periodic chains converge.
        matrix = 0.5 * (matrix + np.eye(self.size))
        pi = np.full(self.size, 1.0 / self.size)
        for _ in range(max_iterations):
            nxt = pi @ matrix
            if np.abs(nxt - pi).max() < tolerance:
                return nxt / nxt.sum()
            pi = nxt
        raise ModelError("power iteration did not converge")

    # ------------------------------------------------------------------
    def expected_value(self, weights: Mapping[State, float]) -> float:
        """Stationary expectation of a per-state weight function."""
        pi = self.stationary_distribution()
        return float(
            sum(pi[self.index_of(state)] * w for state, w in weights.items())
        )


def _reachable_from(start: int, adjacency: Sequence[Iterable[int]]) -> set[int]:
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for successor in adjacency[node]:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen
