"""Transient behaviour of finite Markov chains.

The stationary solutions in :mod:`repro.markov.chain` answer the paper's
steady-state questions; this module answers *how fast* the chains get
there, which backs the simulator's warm-up choices with model evidence:

* :func:`step_distribution` - the distribution after ``k`` steps from an
  initial condition;
* :func:`total_variation_distance` - the standard distance to
  stationarity;
* :func:`mixing_steps` - the first step count whose distribution is
  within ``epsilon`` of stationary (a mixing-time estimate);
* :func:`expected_hitting_steps` - mean first-passage time into a target
  set, via the standard linear system.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence, TypeVar

import numpy as np

from repro.core.errors import ModelError
from repro.markov.chain import DiscreteTimeMarkovChain

State = TypeVar("State", bound=Hashable)


def step_distribution(
    chain: DiscreteTimeMarkovChain[State],
    initial: State,
    steps: int,
) -> np.ndarray:
    """Distribution over states after ``steps`` transitions from ``initial``."""
    if steps < 0:
        raise ModelError(f"steps must be >= 0, got {steps}")
    distribution = np.zeros(chain.size)
    distribution[chain.index_of(initial)] = 1.0
    matrix = chain.transition_matrix()
    for _ in range(steps):
        distribution = distribution @ matrix
    return distribution


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``TV(p, q) = 0.5 * sum |p_i - q_i|``."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ModelError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def mixing_steps(
    chain: DiscreteTimeMarkovChain[State],
    initial: State,
    epsilon: float = 0.01,
    max_steps: int = 10_000,
) -> int:
    """Steps needed for the chain to be ``epsilon``-close to stationary.

    Returns the smallest ``k`` with ``TV(P^k(initial), pi) <= epsilon``;
    raises :class:`ModelError` if ``max_steps`` is insufficient (possible
    for periodic chains, which never mix pointwise).
    """
    if not 0.0 < epsilon < 1.0:
        raise ModelError(f"epsilon must lie in (0, 1), got {epsilon}")
    pi = chain.stationary_distribution()
    distribution = np.zeros(chain.size)
    distribution[chain.index_of(initial)] = 1.0
    matrix = chain.transition_matrix()
    for step in range(max_steps + 1):
        if total_variation_distance(distribution, pi) <= epsilon:
            return step
        distribution = distribution @ matrix
    raise ModelError(
        f"chain did not mix to epsilon={epsilon} within {max_steps} steps"
    )


def expected_hitting_steps(
    chain: DiscreteTimeMarkovChain[State],
    start: State,
    targets: Sequence[State] | Callable[[State], bool],
) -> float:
    """Mean number of steps to first reach any target state from ``start``.

    Solves the classic first-passage system ``h = 1 + P h`` restricted to
    non-target states.  Returns 0 when ``start`` is itself a target.
    """
    if callable(targets):
        target_indices = {
            i for i, state in enumerate(chain.states) if targets(state)
        }
    else:
        target_indices = {chain.index_of(state) for state in targets}
    if not target_indices:
        raise ModelError("at least one target state is required")
    start_index = chain.index_of(start)
    if start_index in target_indices:
        return 0.0
    others = [i for i in range(chain.size) if i not in target_indices]
    position = {i: k for k, i in enumerate(others)}
    matrix = chain.transition_matrix()
    reduced = matrix[np.ix_(others, others)]
    system = np.eye(len(others)) - reduced
    rhs = np.ones(len(others))
    try:
        hitting = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as error:
        raise ModelError(
            f"hitting-time system is singular (targets unreachable?): {error}"
        ) from error
    if np.any(hitting < -1e-9):
        raise ModelError("hitting-time solve produced negative times")
    return float(hitting[position[start_index]])
