"""The sorted occupancy-vector Markov chain (Section 3.1.1 substrate).

The exact models of Bhandarkar (crossbar, ref [1] of the paper), of the
authors' multiple-bus work (ref [5]) and of Section 3.1.1 of this paper
all share one chain:

* the state is the vector ``(n1, ..., nm)`` of processors requesting each
  module, with ``sum(ni) = n`` (all processors always have exactly one
  outstanding request - the ``p = 1`` hypothesis); permutation-equivalent
  vectors are lumped by keeping the vector sorted in non-increasing order;
* during one processor cycle, ``K = min(x, b)`` of the ``x`` busy modules
  complete one request each, where ``b`` is the *service width*:
  ``b = m`` (or infinity) for the crossbar, ``b = number of buses`` for a
  multiple-bus network, and ``b = r + 1`` for the multiplexed single bus
  with priority to memories ("the bus is granted in the next cycle to the
  first accessed memory module");
* which ``K`` of the ``x`` busy modules complete is uniformly random
  (random arbitration, hypothesis (h));
* the ``K`` freed processors immediately re-issue requests, each uniform
  over the ``m`` modules (hypotheses (e), (f) with ``p = 1``).

The transition computation factorises into (i) a hypergeometric choice of
completing modules, grouped by occupancy value so the enumeration stays
tiny, and (ii) ``K`` sequential uniform re-assignments, each a sparse
convolution over lumped states.
"""

from __future__ import annotations

import functools
import itertools
from math import comb
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.markov.builder import build_chain
from repro.markov.chain import DiscreteTimeMarkovChain

OccupancyState = tuple[int, ...]
"""Positive per-module request counts, sorted non-increasing.

Zero-occupancy modules are omitted; the module count ``m`` lives in the
:class:`OccupancyChain`, keeping states compact and hashable.
"""


def canonical(counts: Mapping[int, int] | list[int] | tuple[int, ...]) -> OccupancyState:
    """Sort positive counts non-increasingly and drop zeros."""
    values = list(counts.values()) if isinstance(counts, Mapping) else list(counts)
    if any(v < 0 for v in values):
        raise ConfigurationError(f"negative occupancy in {counts!r}")
    return tuple(sorted((v for v in values if v > 0), reverse=True))


def _value_multiplicities(state: OccupancyState) -> dict[int, int]:
    """Map occupancy value -> number of modules holding that value."""
    multiplicities: dict[int, int] = {}
    for value in state:
        multiplicities[value] = multiplicities.get(value, 0) + 1
    return multiplicities


def _completion_choices(
    state: OccupancyState, completions: int
) -> dict[OccupancyState, float]:
    """Distribution over states after ``completions`` uniformly-chosen
    busy modules each complete one request.

    Grouping modules by their occupancy value turns the subset choice
    into a small product of binomial coefficients (a multivariate
    hypergeometric), avoiding enumeration of individual module subsets.
    """
    busy = len(state)
    if completions > busy:
        raise ConfigurationError(
            f"cannot complete {completions} requests with {busy} busy modules"
        )
    multiplicities = _value_multiplicities(state)
    values = sorted(multiplicities)
    total_ways = comb(busy, completions)
    outcomes: dict[OccupancyState, float] = {}
    ranges = [range(min(multiplicities[v], completions) + 1) for v in values]
    for chosen in itertools.product(*ranges):
        if sum(chosen) != completions:
            continue
        ways = 1
        for value, k in zip(values, chosen):
            ways *= comb(multiplicities[value], k)
        remaining: list[int] = []
        for value, k in zip(values, chosen):
            keep = multiplicities[value] - k
            remaining.extend([value] * keep)
            remaining.extend([value - 1] * k)
        successor = canonical(remaining)
        outcomes[successor] = outcomes.get(successor, 0.0) + ways / total_ways
    return outcomes


def _add_one_request(
    distribution: dict[OccupancyState, float], modules: int
) -> dict[OccupancyState, float]:
    """Convolve with one uniform request over ``modules`` modules.

    From a lumped state the new request lands on a module of occupancy
    value ``v`` with probability ``multiplicity(v) / m`` (value 0 has
    multiplicity ``m - busy``).
    """
    result: dict[OccupancyState, float] = {}
    for state, probability in distribution.items():
        multiplicities = _value_multiplicities(state)
        empty = modules - len(state)
        if empty > 0:
            successor = canonical(state + (1,))
            weight = probability * empty / modules
            result[successor] = result.get(successor, 0.0) + weight
        for value, multiplicity in multiplicities.items():
            bumped = list(state)
            bumped.remove(value)
            bumped.append(value + 1)
            successor = canonical(bumped)
            weight = probability * multiplicity / modules
            result[successor] = result.get(successor, 0.0) + weight
    return result


class OccupancyChain:
    """The lumped occupancy chain for ``n`` processors, ``m`` modules and
    service width ``b``.

    Parameters
    ----------
    processors:
        ``n``, the number of processors (each always holding one request).
    modules:
        ``m``, the number of memory modules.
    service_width:
        ``b``: the maximum number of busy modules that complete in one
        processor cycle.  ``None`` means unlimited (crossbar behaviour).
    """

    def __init__(
        self, processors: int, modules: int, service_width: int | None = None
    ) -> None:
        if processors < 1:
            raise ConfigurationError(f"processors must be >= 1, got {processors}")
        if modules < 1:
            raise ConfigurationError(f"modules must be >= 1, got {modules}")
        if service_width is not None and service_width < 1:
            raise ConfigurationError(
                f"service_width must be >= 1 or None, got {service_width}"
            )
        self.processors = processors
        self.modules = modules
        self.service_width = service_width

    # ------------------------------------------------------------------
    def completions_in(self, state: OccupancyState) -> int:
        """``K = min(x, b)``: services completed from ``state``."""
        busy = len(state)
        if self.service_width is None:
            return busy
        return min(busy, self.service_width)

    def transition(self, state: OccupancyState) -> dict[OccupancyState, float]:
        """Successor distribution over one processor cycle."""
        if sum(state) != self.processors:
            raise ConfigurationError(
                f"state {state!r} does not hold {self.processors} requests"
            )
        if len(state) > self.modules:
            raise ConfigurationError(
                f"state {state!r} uses more than {self.modules} modules"
            )
        completions = self.completions_in(state)
        if completions == 0:
            return {state: 1.0}
        distribution = _completion_choices(state, completions)
        for _ in range(completions):
            distribution = _add_one_request(distribution, self.modules)
        return distribution

    @functools.cached_property
    def chain(self) -> DiscreteTimeMarkovChain[OccupancyState]:
        """The reachable chain from the all-on-one-module state."""
        initial: OccupancyState = (self.processors,)
        return build_chain(initial, self.transition)

    # ------------------------------------------------------------------
    def busy_distribution(self) -> dict[int, float]:
        """Stationary distribution of the number of busy modules ``x``.

        This is the ``P(x)`` appearing in the Section 3 EBW formula.
        """
        pi = self.chain.stationary_distribution()
        result: dict[int, float] = {}
        for state, probability in zip(self.chain.states, pi):
            x = len(state)
            result[x] = result.get(x, 0.0) + float(probability)
        return result

    def expected_busy(self) -> float:
        """Stationary mean of the number of busy modules."""
        return sum(x * p for x, p in self.busy_distribution().items())

    def expected_completions(self) -> float:
        """Stationary mean of ``K = min(x, b)`` - the multiple-bus
        bandwidth in requests per cycle (ref [5])."""
        if self.service_width is None:
            return self.expected_busy()
        b = self.service_width
        return sum(min(x, b) * p for x, p in self.busy_distribution().items())
