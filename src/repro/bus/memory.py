"""Memory-module state machines (unbuffered and buffered).

Unbuffered operation (Section 2): a module accepts a request only when
idle; it accesses for ``r`` bus cycles and then *remains occupied* -
holding its result - until the bus returns that result to the requesting
processor.  The requester effectively owns the module for the whole
request-access-response round trip, which is the source of the extra
memory interference the paper's Section 6 sets out to remove.

Buffered operation (Section 6): the module gains a FIFO input buffer and
a FIFO output buffer (one entry each in the paper; the depth is a
parameter here).  On completing an access the module deposits the result
in the output buffer and immediately starts the next buffered request, so
it can serve different requests in contiguous bus cycles.  If the output
buffer is full the module *stalls* until a response transfer frees a
slot.

Timing convention used throughout :mod:`repro.bus`: a request delivered
during bus cycle ``T`` occupies the module's access stage for cycles
``T+1 .. T+r``; the result is eligible for a response transfer from cycle
``T+r+1``.  This yields the paper's minimum processor cycle of ``r + 2``
bus cycles.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable

from repro.core.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class PendingRequest:
    """A request travelling through a module."""

    processor: int
    issue_cycle: int
    """Cycle at which the processor first made the request eligible."""


@dataclasses.dataclass(frozen=True)
class CompletedAccess:
    """A finished access waiting in (or leaving) the output stage.

    Carries the per-request service timestamps the latency pipeline
    needs: ``service_start``/``service_end`` are the first and last bus
    cycles the access stage worked on the request, so the service time
    is ``service_end - service_start + 1`` and the pre-service wait is
    ``service_start - issue_cycle - 1`` (the ``- 1`` excludes the
    request's own bus-transfer cycle).
    """

    request: PendingRequest
    ready_cycle: int
    """Cycle from which the result is eligible for a response transfer."""
    service_start: int
    service_end: int


class MemoryModule:
    """One memory module.

    The class implements both operating modes; ``input_depth = 0`` (and
    ``output_depth = 0``) select the unbuffered Section 2 behaviour,
    where the "output buffer" degenerates to the module holding its own
    result until the bus picks it up.

    Parameters
    ----------
    index:
        Module number (0-based), used in traces and error messages.
    access_cycles:
        The paper's ``r``: bus cycles one access occupies.
    input_depth / output_depth:
        Buffer depths; 0 means unbuffered.  The paper's Section 6 system
        is ``input_depth = output_depth = 1``.
    access_sampler:
        Optional callable returning the duration (in cycles, >= 1) of
        each individual access.  Default: constant ``access_cycles``
        (hypothesis (c)).  The Section 6 product-form comparison passes
        a geometric sampler with mean ``access_cycles`` - the
        discrete-time analogue of the exponential characterisation.
    """

    def __init__(
        self,
        index: int,
        access_cycles: int,
        input_depth: int = 0,
        output_depth: int = 0,
        access_sampler: Callable[[], int] | None = None,
    ) -> None:
        if access_cycles < 1:
            raise SimulationError(f"access_cycles must be >= 1, got {access_cycles}")
        if input_depth < 0 or output_depth < 0:
            raise SimulationError("buffer depths must be >= 0")
        if (input_depth == 0) != (output_depth == 0):
            raise SimulationError(
                "input and output buffers must be enabled together"
            )
        self.index = index
        self.access_cycles = access_cycles
        self.input_depth = input_depth
        self.output_depth = output_depth
        self._access_sampler = access_sampler
        # Access stage: the request in service and remaining cycles.
        self._in_service: PendingRequest | None = None
        self._remaining = 0
        # First cycle the access stage worked on the in-service request
        # (stamped by the first tick; None until then).
        self._service_start: int | None = None
        # Completed access whose result cannot move to the output stage
        # yet (possible in buffered mode only), with its service span.
        self._stalled: PendingRequest | None = None
        self._stalled_span: tuple[int, int] | None = None
        self._input: collections.deque[PendingRequest] = collections.deque()
        self._output: collections.deque[CompletedAccess] = collections.deque()
        # Instrumentation.
        self.busy_cycles = 0
        self.stall_cycles = 0
        self.services_started = 0

    # ------------------------------------------------------------------
    @property
    def buffered(self) -> bool:
        """Whether this module runs in the Section 6 buffered mode."""
        return self.input_depth > 0

    @property
    def accessing(self) -> bool:
        """True while the access stage is working on a request."""
        return self._in_service is not None

    @property
    def stalled(self) -> bool:
        """True when a finished access waits for output-buffer space."""
        return self._stalled is not None

    @property
    def response_ready(self) -> bool:
        """True when a result is eligible for a response bus transfer."""
        return bool(self._output)

    @property
    def oldest_response_ready_cycle(self) -> int:
        """Cycle at which the oldest ready result became eligible."""
        if not self._output:
            raise SimulationError(f"module {self.index} has no ready response")
        return self._output[0].ready_cycle

    @property
    def input_backlog(self) -> int:
        """Requests waiting in the input buffer."""
        return len(self._input)

    def can_accept(self) -> bool:
        """Whether a processor request to this module is bus-eligible.

        Unbuffered: only when the module is completely idle (hypothesis
        (h) - "only the requests issued ... toward idle memory modules
        are considered").  Buffered: when idle (the request will enter
        service directly) or when the input buffer has room.
        """
        if self.buffered:
            if self._in_service is None and self._stalled is None:
                return True
            return len(self._input) < self.input_depth
        return (
            self._in_service is None
            and self._stalled is None
            and not self._output
        )

    # ------------------------------------------------------------------
    def deliver_request(self, request: PendingRequest) -> None:
        """Accept a request whose bus transfer just completed.

        Called at the end of the transfer cycle; the access stage starts
        on the next cycle.
        """
        if not self.can_accept():
            raise SimulationError(
                f"module {self.index} received a request while ineligible"
            )
        if self._in_service is None and self._stalled is None:
            self._start(request)
        else:
            self._input.append(request)

    def tick(self, cycle: int) -> None:
        """Advance the access stage through bus cycle ``cycle``.

        Must be called exactly once per cycle, before the cycle's bus
        transfer is applied (a request delivered this cycle starts next
        cycle; see module docstring).  A result completed during
        ``cycle`` becomes bus-eligible at ``cycle + 1``.
        """
        if self._stalled is not None:
            # Waiting for output space; a response transfer may have
            # drained the output buffer at the end of the last cycle.
            self.stall_cycles += 1
            assert self._stalled_span is not None
            start, end = self._stalled_span
            self._try_finish(self._stalled, cycle, start, end)
            return
        if self._in_service is None:
            return
        if self._service_start is None:
            self._service_start = cycle
        self.busy_cycles += 1
        self._remaining -= 1
        if self._remaining == 0:
            finished = self._in_service
            start = self._service_start
            self._in_service = None
            self._service_start = None
            self._try_finish(finished, cycle, start, cycle)

    def take_response(self) -> PendingRequest:
        """Remove and return the oldest ready result (FIFO, Section 6
        hypothesis 2) for a response bus transfer."""
        return self.take_response_record().request

    def take_response_record(self) -> CompletedAccess:
        """Like :meth:`take_response`, but keeps the service timestamps.

        The system-level simulator uses this form to decompose each
        completed request's latency into wait/service/total for the
        :mod:`repro.metrics` pipeline.
        """
        if not self._output:
            raise SimulationError(
                f"module {self.index} has no response ready to transfer"
            )
        # Freeing an output slot may unblock a stalled access stage; the
        # unblocking happens on the next tick, keeping cycle accounting
        # explicit.
        return self._output.popleft()

    # ------------------------------------------------------------------
    def _start(self, request: PendingRequest) -> None:
        self._in_service = request
        self._service_start = None  # stamped by the first tick
        if self._access_sampler is None:
            self._remaining = self.access_cycles
        else:
            duration = self._access_sampler()
            if duration < 1:
                raise SimulationError(
                    f"access sampler returned invalid duration {duration}"
                )
            self._remaining = duration
        self.services_started += 1

    def _try_finish(
        self,
        finished: PendingRequest,
        cycle: int,
        service_start: int,
        service_end: int,
    ) -> None:
        """Move a completed access to the output stage if space allows."""
        capacity = self.output_depth if self.buffered else 1
        if len(self._output) < capacity:
            self._output.append(
                CompletedAccess(
                    request=finished,
                    ready_cycle=cycle + 1,
                    service_start=service_start,
                    service_end=service_end,
                )
            )
            self._stalled = None
            self._stalled_span = None
            if self.buffered and self._input:
                self._start(self._input.popleft())
        else:
            self._stalled = finished
            self._stalled_span = (service_start, service_end)

    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        """Requests currently inside this module (for conservation tests)."""
        total = len(self._input) + len(self._output)
        if self._in_service is not None:
            total += 1
        if self._stalled is not None:
            total += 1
        return total
