"""Cycle-accurate simulator of the multiplexed single-bus machine."""

from repro.bus.arbiter import (
    BusArbiter,
    Grant,
    GrantKind,
    RequestCandidate,
    ResponseCandidate,
)
from repro.bus.memory import MemoryModule, PendingRequest
from repro.bus.processor import Processor, ProcessorState
from repro.bus.system import MultiplexedBusSystem
from repro.bus.trace import (
    NullTrace,
    TraceEvent,
    TraceEventKind,
    TraceRecorder,
    TraceSink,
)
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.results import SimulationResult
from repro.workloads.generators import TargetSampler


def simulate(
    config: SystemConfig,
    cycles: int = 100_000,
    seed: int = 0,
    warmup: int | None = None,
    targets: TargetSampler | None = None,
    request_probabilities=None,
    collect_latency: bool = False,
    kernel: str = "reference",
    geometric_access_times: bool = False,
    backend: str = "numpy",
) -> SimulationResult:
    """Build a :class:`MultiplexedBusSystem` and run it once.

    The one-call entry point used by the examples and experiments:

    >>> from repro import SystemConfig
    >>> from repro.bus import simulate
    >>> result = simulate(SystemConfig(2, 2, 2), cycles=2_000, seed=1)
    >>> 0.0 < result.ebw <= result.config.max_ebw
    True

    ``request_probabilities`` optionally gives each processor its own
    request probability (heterogeneous ``p``); ``None`` reproduces the
    paper's homogeneous hypothesis (f) exactly.  ``collect_latency``
    attaches streaming wait/service/total latency summaries
    (:mod:`repro.metrics`) to the result without touching any random
    stream - identical seeds keep producing identical counters.
    ``geometric_access_times`` replaces the constant ``r``-cycle access
    with a geometric duration of mean ``r`` (the Section 6 product-form
    comparison lever); it is supported by the reference and fast
    kernels, which draw bit-identically from the same stream.

    ``kernel`` selects the cycle-loop implementation:

    * ``"reference"`` - the component-object machine above, the
      semantic ground truth;
    * ``"fast"`` - the flattened preallocated-array loop of
      :mod:`repro.bus.kernel`, property-tested bit-identical (counters,
      latency summaries, RNG consumption) and several times faster;
    * ``"batch"`` - the vectorized lockstep kernel of
      :mod:`repro.bus.batch` (requires the optional ``numpy`` extra).
      Batch results are reproducible in themselves but **not**
      bit-identical to the other kernels - they are statistically
      equivalent and live in their own cache namespace.  The batch
      kernel pays off when whole replication fleets run through
      :func:`repro.parallel.fleet.run_fleet`.

    The fast and batch kernels cover the library's own target samplers
    (uniform/hot-spot/trace); a custom :class:`TargetSampler` object
    requires the reference kernel.

    ``backend`` selects the batch kernel's array substrate
    (:mod:`repro.bus.backends`): ``"numpy"`` (default), ``"numba"``
    (JIT, bit-identical to numpy) or ``"cupy"`` (GPU, statistically
    equivalent).  Non-default backends require ``kernel="batch"`` -
    the other kernels have no array substrate to swap - and a missing
    optional backend raises naming its install extra.
    """
    if backend != "numpy" and kernel != "batch":
        from repro.bus.backends import check_backend

        check_backend(kernel, backend)
    if kernel == "fast":
        from repro.bus.kernel import run_fast

        return run_fast(
            config,
            cycles=cycles,
            seed=seed,
            warmup=warmup,
            targets=targets,
            request_probabilities=request_probabilities,
            collect_latency=collect_latency,
            geometric_access_times=geometric_access_times,
        )
    if kernel == "batch":
        from repro.bus.batch import check_batch_features, run_batch

        check_batch_features(
            metrics=("latency",) if collect_latency else (),
            geometric_access_times=geometric_access_times,
            targets=targets,
            backend=backend,
        )
        return run_batch(
            config,
            cycles=cycles,
            seed=seed,
            warmup=warmup,
            targets=targets,
            request_probabilities=request_probabilities,
            collect_latency=collect_latency,
            geometric_access_times=geometric_access_times,
            backend=backend,
        )
    if kernel != "reference":
        raise ConfigurationError(
            f"unknown simulation kernel {kernel!r}; "
            "known kernels: reference, fast, batch"
        )
    system = MultiplexedBusSystem(
        config,
        seed=seed,
        targets=targets,
        request_probabilities=request_probabilities,
        collect_latency=collect_latency,
        geometric_access_times=geometric_access_times,
    )
    return system.run(cycles, warmup=warmup)


__all__ = [
    "MultiplexedBusSystem",
    "simulate",
    "MemoryModule",
    "PendingRequest",
    "Processor",
    "ProcessorState",
    "BusArbiter",
    "Grant",
    "GrantKind",
    "RequestCandidate",
    "ResponseCandidate",
    "TraceSink",
    "TraceRecorder",
    "NullTrace",
    "TraceEvent",
    "TraceEventKind",
]
