"""Cycle-by-cycle trace instrumentation for the bus simulator.

Tracing is optional (and off by default - it costs time and memory); the
simulator accepts any object with the :class:`TraceSink` interface.
:class:`TraceRecorder` stores events in memory for tests and debugging;
:class:`NullTrace` is the default no-op sink.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Protocol


class TraceEventKind(enum.Enum):
    """The observable events of the bus machine."""

    REQUEST_TRANSFER = "request-transfer"
    RESPONSE_TRANSFER = "response-transfer"
    BUS_IDLE = "bus-idle"
    ACCESS_COMPLETE = "access-complete"


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    kind: TraceEventKind
    processor: int | None = None
    module: int | None = None


class TraceSink(Protocol):
    """Anything that can receive trace events."""

    def record(self, event: TraceEvent) -> None:
        """Consume one event."""


class NullTrace:
    """Discards all events (the default sink)."""

    def record(self, event: TraceEvent) -> None:
        """Do nothing."""


class TraceRecorder:
    """Keeps all events in memory.

    >>> recorder = TraceRecorder()
    >>> recorder.record(TraceEvent(0, TraceEventKind.BUS_IDLE))
    >>> len(recorder.events)
    1
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: TraceEventKind) -> list[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [event for event in self.events if event.kind is kind]

    def bus_events(self) -> list[TraceEvent]:
        """The per-cycle bus activity (transfers and idles), in order."""
        bus_kinds = {
            TraceEventKind.REQUEST_TRANSFER,
            TraceEventKind.RESPONSE_TRANSFER,
            TraceEventKind.BUS_IDLE,
        }
        return [event for event in self.events if event.kind in bus_kinds]
