"""Processor state machine.

A processor cycles through three states (Section 2 hypotheses (d), (f)):

* ``THINKING`` - performing internal processing; at its next
  processor-cycle boundary it issues a new request with probability ``p``
  or thinks for one more processor cycle (``r + 2`` bus cycles);
* ``REQUESTING`` - holding a request that has not yet crossed the bus
  (either because the bus was busy or because the target module cannot
  accept it - hypothesis (h));
* ``AWAITING`` - the request was delivered; the processor sleeps until
  the response transfer returns the result.

With ``p = 1`` a processor re-enters ``REQUESTING`` on the bus cycle
right after receiving its response, which is the paper's "immediately
issues a new request" behaviour.
"""

from __future__ import annotations

import enum

from repro.core.errors import SimulationError
from repro.des.rng import RandomStream
from repro.workloads.generators import TargetSampler


class ProcessorState(enum.Enum):
    """The three phases of the processor loop."""

    THINKING = "thinking"
    REQUESTING = "requesting"
    AWAITING = "awaiting"


class Processor:
    """One processor of the multiprocessor under study."""

    def __init__(
        self,
        index: int,
        request_probability: float,
        processor_cycle: int,
        targets: TargetSampler,
        think_stream: RandomStream,
    ) -> None:
        if processor_cycle < 3:
            raise SimulationError(
                f"processor cycle must be >= 3 bus cycles, got {processor_cycle}"
            )
        self.index = index
        self.request_probability = request_probability
        self.processor_cycle = processor_cycle
        self._targets = targets
        self._think_stream = think_stream
        self.state = ProcessorState.THINKING
        self.target: int | None = None
        self.issue_cycle: int | None = None
        self._wake_cycle = 0
        # Instrumentation.
        self.completions = 0
        self.total_latency = 0

    # ------------------------------------------------------------------
    def start(self, cycle: int) -> None:
        """Issue the initial request, eligible from ``cycle``.

        All processors start with a fresh request at simulation start -
        the standard initial condition for the ``p = 1`` model; with
        ``p < 1`` the warm-up period washes the initial state out.
        """
        self._issue(cycle)

    def on_cycle_start(self, cycle: int) -> None:
        """Wake a thinking processor whose boundary has arrived."""
        if self.state is ProcessorState.THINKING and cycle >= self._wake_cycle:
            self._issue(cycle)

    @property
    def has_pending_request(self) -> bool:
        """True when the processor holds an undelivered request."""
        return self.state is ProcessorState.REQUESTING

    def request_delivered(self) -> None:
        """The bus carried this processor's request to its module."""
        if self.state is not ProcessorState.REQUESTING:
            raise SimulationError(
                f"processor {self.index} had no pending request to deliver"
            )
        self.state = ProcessorState.AWAITING

    def response_received(self, cycle: int) -> None:
        """The bus returned the result at the end of ``cycle``.

        Decides the next issue instant: with probability ``p`` the
        processor re-issues at ``cycle + 1``; each failed draw postpones
        the decision by one full processor cycle (hypothesis (f): requests
        are submitted only at processor-cycle beginnings).
        """
        if self.state is not ProcessorState.AWAITING:
            raise SimulationError(
                f"processor {self.index} received an unexpected response"
            )
        if self.issue_cycle is None:
            raise SimulationError(
                f"processor {self.index} completed with no recorded issue cycle"
            )
        self.completions += 1
        self.total_latency += cycle - self.issue_cycle + 1
        thinking_cycles = self._think_stream.geometric_failures(
            self.request_probability
        )
        wake = cycle + 1 + thinking_cycles * self.processor_cycle
        self.state = ProcessorState.THINKING
        self.target = None
        self.issue_cycle = None
        self._wake_cycle = wake

    # ------------------------------------------------------------------
    def _issue(self, cycle: int) -> None:
        self.state = ProcessorState.REQUESTING
        self.target = self._targets.next_target(self.index)
        self.issue_cycle = cycle
