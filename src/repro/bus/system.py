"""The multiplexed single-bus multiprocessor simulator.

:class:`MultiplexedBusSystem` wires processors, memory modules and the
bus arbiter into the synchronous machine of the paper's Figure 1 (plus
the Figure 4 buffers when configured) and advances it one bus cycle at a
time.  The machine is fully synchronous - every component steps on the
common bus clock (hypothesis (d)) - so the simulator is a deterministic
cycle loop rather than an event-heap program; the heap-based kernel in
:mod:`repro.des` is used by the asynchronous exponential-service
simulator of :mod:`repro.queueing`.

One simulated bus cycle ``T`` proceeds as:

1. processor-cycle boundaries: thinking processors whose boundary
   arrived issue new requests (eligible this cycle);
2. arbitration: deliverable requests (target module can accept) and
   ready responses compete under the configured priority (hypotheses
   (g), (h));
3. memory access stages advance through cycle ``T``;
4. the granted transfer completes at the end of ``T``: a request enters
   its module (access starts at ``T+1``) or a response returns to its
   processor (which may re-issue from ``T+1``).

This ordering reproduces the paper's timing: a request transferred in
cycle ``T`` is answered, at the earliest, by a response transfer in
cycle ``T + r + 1``, giving the minimum processor cycle ``r + 2``.
"""

from __future__ import annotations

from typing import Sequence

from repro.bus.arbiter import (
    BusArbiter,
    Grant,
    GrantKind,
    RequestCandidate,
    ResponseCandidate,
)
from repro.bus.memory import MemoryModule, PendingRequest
from repro.bus.processor import Processor, ProcessorState
from repro.bus.trace import NullTrace, TraceEvent, TraceEventKind, TraceSink
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.results import SimulationResult
from repro.des.rng import StreamFactory
from repro.workloads.generators import TargetSampler, UniformTargets

_DEFAULT_WARMUP_FRACTION = 0.25
_DEFAULT_BATCHES = 20


class MultiplexedBusSystem:
    """A runnable instance of the paper's machine.

    Parameters
    ----------
    config:
        The system description (Section 2 / Section 6 hypotheses).
    seed:
        Master seed for the deterministic random streams.
    targets:
        Request-target workload; defaults to the paper's uniform model
        (hypothesis (e)).
    trace:
        Optional cycle-level trace sink (see :mod:`repro.bus.trace`).
    geometric_access_times:
        When true, each memory access lasts a geometric number of cycles
        with mean ``r`` (support >= 1) instead of the constant ``r`` of
        hypothesis (c).  This is the discrete-time analogue of the
        exponential service characterisation discussed in Section 6 and
        exists to regenerate the paper's ">25% discrepancy" comparison;
        all headline experiments use constant times.
    request_probabilities:
        Optional per-processor request probabilities (heterogeneous
        ``p``), one value per processor, overriding the single
        ``config.request_probability`` of hypothesis (f).  ``None``
        keeps the paper's homogeneous behaviour bit-for-bit.
    collect_latency:
        When true, every completed request's wait/service/total latency
        feeds a :class:`repro.metrics.LatencyTracker` (O(1) memory,
        streaming percentiles); :meth:`run` then attaches the resulting
        :class:`~repro.metrics.LatencyReport` to the
        :class:`~repro.core.results.SimulationResult`.  Collection is
        pure bookkeeping - it draws no random numbers - so enabling it
        never changes any simulated counter.
    """

    def __init__(
        self,
        config: SystemConfig,
        seed: int = 0,
        targets: TargetSampler | None = None,
        trace: TraceSink | None = None,
        geometric_access_times: bool = False,
        request_probabilities: Sequence[float] | None = None,
        collect_latency: bool = False,
    ) -> None:
        self.config = config
        self.seed = seed
        self._trace = trace if trace is not None else NullTrace()
        self.latency = None
        if collect_latency:
            from repro.metrics import LatencyTracker

            self.latency = LatencyTracker()
        streams = StreamFactory(seed)
        # Kept for the kernel-equivalence tests, which compare the
        # final state of every consumed stream across implementations.
        self._streams = streams
        if targets is None:
            targets = UniformTargets(config.memories, streams.get("targets"))
        per_processor_p = _resolve_request_probabilities(
            config, request_probabilities
        )
        think_stream = streams.get("think")
        self.processors = [
            Processor(
                index=i,
                request_probability=per_processor_p[i],
                processor_cycle=config.processor_cycle,
                targets=targets,
                think_stream=think_stream,
            )
            for i in range(config.processors)
        ]
        depth = config.buffer_depth if config.buffered else 0
        access_sampler = None
        if geometric_access_times:
            access_stream = streams.get("access-times")
            mean = config.memory_cycle_ratio

            def access_sampler() -> int:
                return 1 + access_stream.geometric_failures(1.0 / mean)

        self.modules = [
            MemoryModule(
                index=k,
                access_cycles=config.memory_cycle_ratio,
                input_depth=depth,
                output_depth=depth,
                access_sampler=access_sampler,
            )
            for k in range(config.memories)
        ]
        self.arbiter = BusArbiter(
            config.priority, config.tie_break, streams.get("arbitration")
        )
        self.cycle = 0
        self.completions = 0
        self.request_transfers = 0
        self.response_transfers = 0
        self.total_latency = 0
        for processor in self.processors:
            processor.start(cycle=0)

    # ------------------------------------------------------------------
    def step(self) -> Grant | None:
        """Advance the machine by one bus cycle; returns the grant."""
        cycle = self.cycle
        for processor in self.processors:
            processor.on_cycle_start(cycle)
        grant = self.arbiter.arbitrate(
            self._request_candidates(), self._response_candidates()
        )
        for module in self.modules:
            module.tick(cycle)
        if grant is None:
            self._trace.record(TraceEvent(cycle, TraceEventKind.BUS_IDLE))
        elif grant.kind is GrantKind.REQUEST:
            self._complete_request_transfer(grant, cycle)
        else:
            self._complete_response_transfer(grant, cycle)
        self.cycle = cycle + 1
        return grant

    def run(
        self,
        cycles: int,
        warmup: int | None = None,
        batches: int = _DEFAULT_BATCHES,
    ) -> SimulationResult:
        """Simulate ``cycles`` measured bus cycles and report.

        Parameters
        ----------
        cycles:
            Length of the measurement window in bus cycles.
        warmup:
            Cycles simulated (and discarded) before measuring; defaults
            to 25% of the measurement window.
        batches:
            Number of equal batches for the batch-means EBW confidence
            interval (0 or 1 disables batching).
        """
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if warmup is None:
            warmup = int(cycles * _DEFAULT_WARMUP_FRACTION)
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        if batches < 0:
            raise ConfigurationError(f"batches must be >= 0, got {batches}")
        collecting = self.latency is not None
        if collecting:
            # Warm-up completions are discarded anyway; don't pay the
            # streaming-estimator cost for them.
            self.latency = None
        for _ in range(warmup):
            self.step()
        if collecting:
            # Fresh collectors: summaries cover the measurement window
            # only, mirroring every other counter's warm-up exclusion.
            from repro.metrics import LatencyTracker

            self.latency = LatencyTracker()
        start_cycle = self.cycle
        start_completions = self.completions
        start_requests = self.request_transfers
        start_responses = self.response_transfers
        start_latency = self.total_latency
        start_memory_busy = sum(module.busy_cycles for module in self.modules)

        batch_ebws: list[float] = []
        if batches > 1:
            batch_length = cycles // batches
            remainder = cycles - batch_length * batches
            previous = self.completions
            for index in range(batches):
                length = batch_length + (1 if index < remainder else 0)
                for _ in range(length):
                    self.step()
                if length > 0:
                    batch_ebws.append(
                        (self.completions - previous)
                        * self.config.processor_cycle
                        / length
                    )
                previous = self.completions
        else:
            for _ in range(cycles):
                self.step()

        memory_busy = (
            sum(module.busy_cycles for module in self.modules) - start_memory_busy
        )
        return SimulationResult(
            config=self.config,
            cycles=self.cycle - start_cycle,
            completions=self.completions - start_completions,
            request_transfers=self.request_transfers - start_requests,
            response_transfers=self.response_transfers - start_responses,
            memory_busy_cycles=memory_busy,
            total_latency=self.total_latency - start_latency,
            seed=self.seed,
            warmup_cycles=warmup,
            batch_ebws=tuple(batch_ebws),
            latency=self.latency.report() if self.latency is not None else None,
        )

    # ------------------------------------------------------------------
    def _request_candidates(self) -> list[RequestCandidate]:
        candidates = []
        for processor in self.processors:
            if not processor.has_pending_request:
                continue
            target = processor.target
            if target is None or processor.issue_cycle is None:
                raise SimulationError(
                    f"processor {processor.index} is requesting without a target"
                )
            if self.modules[target].can_accept():
                candidates.append(
                    RequestCandidate(
                        processor=processor.index,
                        module=target,
                        issue_cycle=processor.issue_cycle,
                    )
                )
        return candidates

    def _response_candidates(self) -> list[ResponseCandidate]:
        return [
            ResponseCandidate(
                module=module.index,
                ready_cycle=module.oldest_response_ready_cycle,
            )
            for module in self.modules
            if module.response_ready
        ]

    def _complete_request_transfer(self, grant: Grant, cycle: int) -> None:
        if grant.processor is None:
            raise SimulationError("request grant without a processor")
        processor = self.processors[grant.processor]
        issue_cycle = processor.issue_cycle
        if issue_cycle is None:
            raise SimulationError(
                f"processor {processor.index} lost its issue cycle mid-transfer"
            )
        processor.request_delivered()
        self.modules[grant.module].deliver_request(
            PendingRequest(processor=grant.processor, issue_cycle=issue_cycle)
        )
        self.request_transfers += 1
        self._trace.record(
            TraceEvent(
                cycle,
                TraceEventKind.REQUEST_TRANSFER,
                processor=grant.processor,
                module=grant.module,
            )
        )

    def _complete_response_transfer(self, grant: Grant, cycle: int) -> None:
        module = self.modules[grant.module]
        record = module.take_response_record()
        request = record.request
        self.processors[request.processor].response_received(cycle)
        self.completions += 1
        self.response_transfers += 1
        total = cycle - request.issue_cycle + 1
        self.total_latency += total
        if self.latency is not None:
            # wait: issue to access start, minus the request transfer
            # cycle itself; service: cycles the access stage worked on
            # the request; total: the paper's issue-to-response latency.
            self.latency.record(
                record.service_start - request.issue_cycle - 1,
                record.service_end - record.service_start + 1,
                total,
            )
        self._trace.record(
            TraceEvent(
                cycle,
                TraceEventKind.RESPONSE_TRANSFER,
                processor=request.processor,
                module=grant.module,
            )
        )

    # ------------------------------------------------------------------
    def audit(self) -> None:
        """Verify conservation invariants; raises on inconsistency.

        Intended for tests: every awaiting processor must have exactly
        one request inside exactly one module, and requesting/thinking
        processors must have none.
        """
        inside: dict[int, int] = {}
        for module in self.modules:
            for request in _module_requests(module):
                if request.processor in inside:
                    raise SimulationError(
                        f"processor {request.processor} present in two modules"
                    )
                inside[request.processor] = module.index
        for processor in self.processors:
            awaiting = processor.state is ProcessorState.AWAITING
            if awaiting and processor.index not in inside:
                raise SimulationError(
                    f"processor {processor.index} awaits a vanished request"
                )
            if not awaiting and processor.index in inside:
                raise SimulationError(
                    f"processor {processor.index} has a stray in-flight request"
                )


def _resolve_request_probabilities(
    config: SystemConfig, request_probabilities: Sequence[float] | None
) -> list[float]:
    """Validate the optional heterogeneous-p vector (one p per processor)."""
    if request_probabilities is None:
        return [config.request_probability] * config.processors
    values = list(request_probabilities)
    if len(values) != config.processors:
        raise ConfigurationError(
            f"request_probabilities lists {len(values)} values but the "
            f"system has {config.processors} processors"
        )
    for index, p in enumerate(values):
        if not isinstance(p, (int, float)) or isinstance(p, bool) or not (
            0.0 < p <= 1.0
        ):
            raise ConfigurationError(
                f"request probability for processor {index} must satisfy "
                f"0 < p <= 1, got {p!r}"
            )
    return values


def _module_requests(module: MemoryModule) -> list[PendingRequest]:
    """All requests currently inside ``module`` (test helper)."""
    requests = list(module._input)
    if module._in_service is not None:
        requests.append(module._in_service)
    if module._stalled is not None:
        requests.append(module._stalled)
    requests.extend(entry.request for entry in module._output)
    return requests
