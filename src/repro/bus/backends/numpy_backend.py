"""The default batch backend: numpy's own vectorized array program."""

from __future__ import annotations

from repro.bus.backends.base import BATCH_ENGINE_TOKEN, BatchBackend


class NumpyBackend(BatchBackend):
    """CPU reference substrate - the batch kernel's native execution.

    Bit-identical by definition (it *is* the kernel's array program) and
    therefore the anchor of the ``simulation-batch@1`` namespace every
    bit-identical backend must reproduce.
    """

    name = "numpy"
    extra = "batch"
    bitwise = True
    engine_token = BATCH_ENGINE_TOKEN
    supports_latency = True

    def available(self) -> bool:
        from repro.bus.batch import numpy_available

        return numpy_available()

    def require(self):
        # Delegates to the kernel's own importer so the error message
        # (naming the [batch] extra and the stdlib fallback) stays the
        # single one every numpy-missing path raises.
        from repro.bus.batch import require_numpy

        return require_numpy()
