"""The GPU batch backend: the same array program on CuPy device arrays.

CuPy is a drop-in for the numpy namespace, so the kernel's vectorized
loop runs unmodified; what changes is *where* the arrays live and which
Philox implementation feeds the per-row streams.  CuPy's counter-based
generator (``Philox4x3210``) is not numpy's bit generator, so cupy
results are **statistically - not bit - equivalent** to the numpy/numba
pair: they are gated by the same Welch machinery that compares the
batch kernel against the exact kernels
(``tests/integration/test_batch_statistics.py``), and their cache
entries live in the separate :data:`CUPY_ENGINE_TOKEN` namespace.

Latency collection is declared unsupported: the per-row quantile
sketches are host-side numpy structures, and streaming every completion
through a device->host copy would forfeit the throughput the backend
exists for.  ``check_features`` rejects the combination loudly.
"""

from __future__ import annotations

from typing import Sequence

from repro.bus.backends.base import CUPY_ENGINE_TOKEN, BatchBackend
from repro.core.errors import ConfigurationError


class CupyBackend(BatchBackend):
    """GPU substrate (optional ``[batch-gpu]`` extra, Welch-gated)."""

    name = "cupy"
    extra = "batch-gpu"
    bitwise = False
    engine_token = CUPY_ENGINE_TOKEN
    supports_latency = False

    def available(self) -> bool:
        try:
            import cupy  # noqa: F401
        except ImportError:
            return False
        return True

    def require(self):
        try:
            import cupy
        except ImportError:
            self._missing("cupy")
        return cupy

    def philox_generators(self, keys: Sequence[int]):
        cupy = self.require()
        philox = getattr(cupy.random, "Philox4x3210", None)
        if philox is None:
            raise ConfigurationError(
                "backend='cupy' needs cupy's counter-based Philox4x3210 "
                "bit generator, which this cupy build does not provide; "
                "use backend='numpy' or backend='numba'"
            )
        return [
            cupy.random.Generator(philox(seed=int(key))) for key in keys
        ]

    def asnumpy(self, array):
        return self.require().asnumpy(array)
